#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <optional>
#include <vector>

#include "graph/partitioner.hpp"
#include "util/thread_pool.hpp"

namespace gridse::graph::detail {

/// splitmix64 finalizer: the per-vertex hash that replaces a shared Rng in
/// the parallel partitioner phases. Consuming a shared Rng would make the
/// result depend on scheduling; hashing (seed, salt, vertex) gives every
/// vertex an independent deterministic priority.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Runs pure index-range maps for the partitioner, optionally across a
/// thread pool. Every parallel phase is a pure map over immutable
/// snapshots writing disjoint output slots, so the output is bit-identical
/// for any shard/thread count — the executor changes wall-clock only.
class Executor {
 public:
  /// `n_hint` is the problem size: small problems stay inline and never
  /// spin up a private pool. When `pool` is null and threads > 1, a
  /// private pool is owned for the executor's lifetime.
  Executor(ThreadPool* pool, int threads, std::size_t n_hint)
      : shards_(std::max(threads, 1)) {
    if (shards_ > 1 && n_hint >= kInlineBelow) {
      if (pool != nullptr) {
        pool_ = pool;
      } else {
        owned_.emplace(static_cast<std::size_t>(shards_));
        pool_ = &*owned_;
      }
    }
    if (pool_ == nullptr) shards_ = 1;
  }

  [[nodiscard]] int shards() const { return shards_; }

  /// Invoke fn(begin, end, shard) over contiguous ascending ranges that
  /// cover [0, n). Shard s always receives the s-th contiguous chunk, so
  /// per-shard result vectors concatenated in shard order are in global
  /// index order regardless of how many threads actually ran.
  void for_ranges(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, int)>& fn) const {
    if (pool_ == nullptr || shards_ <= 1 || n < kInlineBelow) {
      if (n > 0) fn(0, n, 0);
      return;
    }
    const auto shards = static_cast<std::size_t>(shards_);
    const std::size_t chunk = (n + shards - 1) / shards;
    std::vector<std::future<void>> futures;
    futures.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = s * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      futures.push_back(pool_->submit(
          [&fn, begin, end, s] { fn(begin, end, static_cast<int>(s)); }));
    }
    for (auto& f : futures) f.get();
  }

 private:
  // Shard even smallish index ranges: coarse partitioner levels have few
  // vertices but can carry hundreds of thousands of edges, so per-index
  // work is large and task overhead (~µs) is amortized quickly.
  static constexpr std::size_t kInlineBelow = 128;

  std::optional<ThreadPool> owned_;
  ThreadPool* pool_ = nullptr;
  int shards_ = 1;
};

/// fm_refine with an externally owned executor (so the multilevel v-cycle
/// reuses one pool across levels instead of re-creating it per level).
Partition fm_refine_with(const WeightedGraph& g, std::vector<PartId> assignment,
                         const PartitionOptions& options, const Executor& exec);

}  // namespace gridse::graph::detail
