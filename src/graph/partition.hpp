#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace gridse::graph {

using PartId = std::int32_t;

/// A k-way assignment of vertices to parts plus its quality metrics.
struct Partition {
  /// assignment[v] = part of vertex v, in [0, k).
  std::vector<PartId> assignment;
  PartId k = 0;

  /// Sum of weights of edges whose endpoints lie in different parts.
  double edge_cut = 0.0;

  /// METIS-style load-imbalance ratio: max part weight divided by the ideal
  /// (total / k). 1.0 is perfect balance; the paper quotes 1.035 / 1.079
  /// against METIS's suggested 1.05 threshold.
  double load_imbalance = 0.0;

  /// Aggregate vertex weight per part.
  std::vector<double> part_weights;
};

/// Compute edge cut, part weights and imbalance for `assignment` on `g`.
Partition evaluate_partition(const WeightedGraph& g,
                             std::vector<PartId> assignment, PartId k);

/// True if every vertex has a part in [0,k) and no part is empty.
bool is_valid_partition(const WeightedGraph& g,
                        std::span<const PartId> assignment, PartId k);

/// Number of vertices that changed parts between two assignments (the
/// re-mapping migration volume between DSE Step 1 and Step 2).
int migration_count(std::span<const PartId> before,
                    std::span<const PartId> after);

}  // namespace gridse::graph
