#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace gridse::graph {

using PartId = std::int32_t;

/// A k-way assignment of vertices to parts plus its quality metrics.
struct Partition {
  /// assignment[v] = part of vertex v, in [0, k).
  std::vector<PartId> assignment;
  PartId k = 0;

  /// Sum of weights of edges whose endpoints lie in different parts.
  double edge_cut = 0.0;

  /// METIS-style load-imbalance ratio: max part weight divided by the ideal
  /// (total / k). 1.0 is perfect balance; the paper quotes 1.035 / 1.079
  /// against METIS's suggested 1.05 threshold.
  double load_imbalance = 0.0;

  /// Aggregate vertex weight per part.
  std::vector<double> part_weights;

  /// Convergence-aware quality (arXiv 2104.04320: the distributed
  /// Gauss-Newton iteration count of a multi-area estimator grows with the
  /// boundary coupling of the worst area, not with the raw edge cut).
  /// boundary_coupling is max over parts of (cut edge weight incident to
  /// the part) / (all edge weight incident to the part), in [0, 1).
  double boundary_coupling = 0.0;

  /// Expected distributed-GN iteration count implied by boundary_coupling
  /// under a linear-convergence model with contraction factor equal to the
  /// coupling ratio: 1 + ln(eps)/ln(rho). Lower is better; 1.0 when no
  /// edge is cut.
  double expected_gn_iterations = 1.0;

  /// Vertices incident to at least one cut edge (the boundary buses whose
  /// states cross parts as pseudo measurements).
  int boundary_vertices = 0;
};

/// Compute edge cut, part weights, imbalance and the convergence-aware
/// coupling metrics for `assignment` on `g`.
Partition evaluate_partition(const WeightedGraph& g,
                             std::vector<PartId> assignment, PartId k);

/// Expected distributed-GN iteration count for a given boundary-coupling
/// ratio (1 + ln(1e-4)/ln(rho), clamped; 1.0 for rho <= 0).
double expected_gn_iterations(double boundary_coupling);

/// True if every vertex has a part in [0,k) and no part is empty.
bool is_valid_partition(const WeightedGraph& g,
                        std::span<const PartId> assignment, PartId k);

/// Number of vertices that changed parts between two assignments (the
/// re-mapping migration volume between DSE Step 1 and Step 2).
int migration_count(std::span<const PartId> before,
                    std::span<const PartId> after);

}  // namespace gridse::graph
