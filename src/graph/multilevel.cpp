#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "graph/parallel.hpp"
#include "graph/partitioner.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace gridse::graph::detail {
namespace {

struct CoarseLevel {
  WeightedGraph graph;
  /// map[fine_vertex] = coarse_vertex in this level's graph
  std::vector<VertexId> fine_to_coarse;
};

/// Deterministic per-vertex tie-break priority for one coarsening level.
std::uint64_t vertex_priority(std::uint64_t seed, int level, VertexId v) {
  return mix64(seed ^ mix64((static_cast<std::uint64_t>(level) << 32) ^
                            static_cast<std::uint64_t>(v)));
}

/// Union-find with path halving. Roots are chosen by index (smaller index
/// wins) so the forest shape — and therefore every downstream id — is a
/// pure function of the union sequence, which is applied sequentially in
/// vertex order.
VertexId uf_find(std::vector<VertexId>& parent, VertexId v) {
  while (parent[static_cast<std::size_t>(v)] != v) {
    parent[static_cast<std::size_t>(v)] =
        parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
    v = parent[static_cast<std::size_t>(v)];
  }
  return v;
}

/// Handshake heavy-edge matching + union-find absorption of the leftover
/// singletons. Proposal computation is a parallel pure map over a snapshot
/// of the match state; mutual-preference resolution and the union pass are
/// sequential in vertex order, so the clustering is bit-identical for any
/// thread count. Returns fine→coarse map and the coarse vertex count.
std::pair<std::vector<VertexId>, VertexId> cluster_vertices(
    const WeightedGraph& g, std::uint64_t seed, int level, double weight_cap,
    const Executor& exec) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<VertexId> match(n, -1);
  std::vector<VertexId> pref(n, -1);

  constexpr int kHandshakeRounds = 4;
  for (int round = 0; round < kHandshakeRounds; ++round) {
    // Propose: each unmatched vertex prefers its heaviest unmatched
    // neighbor whose combined weight stays under the cluster cap; ties
    // break on hashed priority, then lower index.
    exec.for_ranges(n, [&](std::size_t begin, std::size_t end, int) {
      for (std::size_t vs = begin; vs < end; ++vs) {
        pref[vs] = -1;
        if (match[vs] >= 0) continue;
        const auto v = static_cast<VertexId>(vs);
        const double vw = g.vertex_weight(v);
        VertexId best = -1;
        double best_w = -1.0;
        std::uint64_t best_pri = 0;
        for (const auto& [nbr, w] : g.neighbors(v)) {
          if (match[static_cast<std::size_t>(nbr)] >= 0) continue;
          if (vw + g.vertex_weight(nbr) > weight_cap) continue;
          const std::uint64_t pri = vertex_priority(seed, level, nbr);
          if (w > best_w ||
              (w == best_w &&
               (pri > best_pri || (pri == best_pri && nbr < best)))) {
            best_w = w;
            best_pri = pri;
            best = nbr;
          }
        }
        pref[vs] = best;
      }
    });
    // Handshake: a pair matches when the preference is mutual. Sequential
    // O(n) scan; each pair is committed once via the v < u guard.
    bool matched_any = false;
    for (std::size_t vs = 0; vs < n; ++vs) {
      if (match[vs] >= 0) continue;
      const VertexId u = pref[vs];
      if (u < 0 || static_cast<VertexId>(vs) >= u) continue;
      if (pref[static_cast<std::size_t>(u)] == static_cast<VertexId>(vs)) {
        match[vs] = u;
        match[static_cast<std::size_t>(u)] = static_cast<VertexId>(vs);
        matched_any = true;
      }
    }
    if (!matched_any) break;
  }

  // Absorb leftover singletons into a neighboring cluster: propose the
  // strongest neighbor in parallel (frontier = still-unmatched vertices),
  // then union sequentially under the cluster weight cap so star centers
  // do not collapse whole neighborhoods into one overweight coarse vertex.
  std::vector<VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<double> cluster_weight(n);
  for (std::size_t vs = 0; vs < n; ++vs) {
    cluster_weight[vs] = g.vertex_weight(static_cast<VertexId>(vs));
  }
  for (std::size_t vs = 0; vs < n; ++vs) {
    const VertexId u = match[vs];
    if (u > static_cast<VertexId>(vs)) {
      parent[static_cast<std::size_t>(u)] = static_cast<VertexId>(vs);
      cluster_weight[vs] += cluster_weight[static_cast<std::size_t>(u)];
    }
  }
  std::vector<VertexId> absorb_target(n, -1);
  exec.for_ranges(n, [&](std::size_t begin, std::size_t end, int) {
    for (std::size_t vs = begin; vs < end; ++vs) {
      if (match[vs] >= 0) continue;
      const auto v = static_cast<VertexId>(vs);
      VertexId best = -1;
      double best_w = -1.0;
      std::uint64_t best_pri = 0;
      for (const auto& [nbr, w] : g.neighbors(v)) {
        const std::uint64_t pri = vertex_priority(seed, level, nbr);
        if (w > best_w || (w == best_w && (pri > best_pri ||
                                           (pri == best_pri && nbr < best)))) {
          best_w = w;
          best_pri = pri;
          best = nbr;
        }
      }
      absorb_target[vs] = best;
    }
  });
  for (std::size_t vs = 0; vs < n; ++vs) {
    if (match[vs] >= 0 || absorb_target[vs] < 0) continue;
    const VertexId rv = uf_find(parent, static_cast<VertexId>(vs));
    const VertexId rt = uf_find(parent, absorb_target[vs]);
    if (rv == rt) continue;
    const double merged = cluster_weight[static_cast<std::size_t>(rv)] +
                          cluster_weight[static_cast<std::size_t>(rt)];
    if (merged > weight_cap) continue;
    const auto [lo, hi] = std::minmax(rv, rt);
    parent[static_cast<std::size_t>(hi)] = lo;
    cluster_weight[static_cast<std::size_t>(lo)] = merged;
  }

  // Coarse ids in order of first appearance of each cluster root.
  std::vector<VertexId> fine_to_coarse(n, -1);
  std::vector<VertexId> root_to_coarse(n, -1);
  VertexId coarse_count = 0;
  for (std::size_t vs = 0; vs < n; ++vs) {
    const VertexId r = uf_find(parent, static_cast<VertexId>(vs));
    if (root_to_coarse[static_cast<std::size_t>(r)] < 0) {
      root_to_coarse[static_cast<std::size_t>(r)] = coarse_count++;
    }
    fine_to_coarse[vs] = root_to_coarse[static_cast<std::size_t>(r)];
  }
  return {std::move(fine_to_coarse), coarse_count};
}

/// One coarsening step: cluster, then build the coarse graph in parallel.
/// Each coarse vertex is owned by exactly one task that accumulates its
/// weight and adjacency in fixed (member, adjacency) order, so float sums
/// are reproducible for any thread count.
CoarseLevel coarsen_once(const WeightedGraph& g, std::uint64_t seed, int level,
                         double weight_cap, const Executor& exec) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  CoarseLevel out;
  auto [fine_to_coarse, coarse_count] =
      cluster_vertices(g, seed, level, weight_cap, exec);
  out.fine_to_coarse = std::move(fine_to_coarse);

  // Invert the map with a counting sort: members of coarse vertex c are
  // members[offsets[c] .. offsets[c+1]), ascending by construction.
  const auto cc = static_cast<std::size_t>(coarse_count);
  std::vector<std::size_t> offsets(cc + 1, 0);
  for (std::size_t vs = 0; vs < n; ++vs) {
    ++offsets[static_cast<std::size_t>(out.fine_to_coarse[vs]) + 1];
  }
  for (std::size_t c = 0; c < cc; ++c) offsets[c + 1] += offsets[c];
  std::vector<VertexId> members(n);
  {
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t vs = 0; vs < n; ++vs) {
      members[cursor[static_cast<std::size_t>(out.fine_to_coarse[vs])]++] =
          static_cast<VertexId>(vs);
    }
  }

  out.graph = WeightedGraph(coarse_count);
  std::vector<double> coarse_weight(cc, 0.0);
  std::vector<std::vector<std::pair<VertexId, double>>> coarse_adj(cc);
  exec.for_ranges(cc, [&](std::size_t begin, std::size_t end, int) {
    // Stamped scratch: weight_to[cv] is valid only when stamp[cv] == the
    // coarse vertex currently being built.
    std::vector<double> weight_to(cc, 0.0);
    std::vector<VertexId> stamp(cc, -1);
    std::vector<VertexId> touched;
    for (std::size_t c = begin; c < end; ++c) {
      touched.clear();
      double vw = 0.0;
      for (std::size_t mi = offsets[c]; mi < offsets[c + 1]; ++mi) {
        const VertexId m = members[mi];
        vw += g.vertex_weight(m);
        for (const auto& [nbr, w] : g.neighbors(m)) {
          const VertexId cv = out.fine_to_coarse[static_cast<std::size_t>(nbr)];
          if (cv == static_cast<VertexId>(c)) continue;
          if (stamp[static_cast<std::size_t>(cv)] != static_cast<VertexId>(c)) {
            stamp[static_cast<std::size_t>(cv)] = static_cast<VertexId>(c);
            weight_to[static_cast<std::size_t>(cv)] = 0.0;
            touched.push_back(cv);
          }
          weight_to[static_cast<std::size_t>(cv)] += w;
        }
      }
      coarse_weight[c] = vw;
      std::sort(touched.begin(), touched.end());
      coarse_adj[c].reserve(touched.size());
      for (const VertexId cv : touched) {
        coarse_adj[c].emplace_back(cv, weight_to[static_cast<std::size_t>(cv)]);
      }
    }
  });
  for (VertexId c = 0; c < coarse_count; ++c) {
    out.graph.set_vertex_weight(c, coarse_weight[static_cast<std::size_t>(c)]);
  }
  // The lower-id endpoint owns each coarse edge so its (member, adjacency)
  // accumulation order — and thus the float sum — is the canonical one.
  for (VertexId c = 0; c < coarse_count; ++c) {
    for (const auto& [cv, w] : coarse_adj[static_cast<std::size_t>(c)]) {
      if (cv > c) out.graph.add_edge(c, cv, w);
    }
  }
  return out;
}

bool exhaustive_fits(const WeightedGraph& g, const PartitionOptions& options) {
  return std::pow(static_cast<double>(options.k),
                  static_cast<double>(g.num_vertices())) <=
         options.exhaustive_budget;
}

}  // namespace

Partition multilevel_partition(const WeightedGraph& g,
                               const PartitionOptions& options);

Partition multilevel_partition(const WeightedGraph& g,
                               const PartitionOptions& options) {
  const Executor exec(options.pool, options.threads,
                      static_cast<std::size_t>(g.num_vertices()));
  // --- coarsening phase ----------------------------------------------------
  std::vector<CoarseLevel> levels;
  const WeightedGraph* current = &g;
  const VertexId stop_at =
      std::max<VertexId>(options.coarsen_to, options.k * 4);
  {
    OBS_SPAN("partition.coarsen");
    // METIS-style cluster weight cap: no coarse vertex may outgrow ~1.5x
    // the ideal vertex weight of the coarsest graph, so the initial
    // partition never inherits an unsplittable overweight vertex.
    const double weight_cap = std::max(
        1.5 * g.total_vertex_weight() / static_cast<double>(stop_at), 1e-12);
    int level = 0;
    while (current->num_vertices() > stop_at) {
      CoarseLevel next =
          coarsen_once(*current, options.seed, level++, weight_cap, exec);
      if (next.graph.num_vertices() >
          (current->num_vertices() * 9) / 10) {
        break;  // matching stalled (weight caps / star graphs): diminishing
                // returns, hand the rest to the initial partitioner
      }
      GRIDSE_DEBUG << "partition: level " << level << " coarsened "
                   << current->num_vertices() << " -> "
                   << next.graph.num_vertices() << " vertices, "
                   << next.graph.num_edges() << " edges";
      levels.push_back(std::move(next));
      current = &levels.back().graph;
    }
  }

  // --- initial partition at the coarsest level ------------------------------
  Partition part;
  {
    OBS_SPAN("partition.initial");
    part = exhaustive_fits(*current, options)
               ? exhaustive_partition(*current, options)
               : greedy_partition(*current, options);
  }

  // --- uncoarsening + refinement --------------------------------------------
  OBS_SPAN("partition.refine");
  for (std::size_t li = levels.size(); li > 0; --li) {
    const CoarseLevel& level = levels[li - 1];
    const WeightedGraph& fine = (li - 1 == 0) ? g : levels[li - 2].graph;
    std::vector<PartId> projected(
        static_cast<std::size_t>(fine.num_vertices()));
    for (VertexId v = 0; v < fine.num_vertices(); ++v) {
      projected[static_cast<std::size_t>(v)] =
          part.assignment[static_cast<std::size_t>(
              level.fine_to_coarse[static_cast<std::size_t>(v)])];
    }
    part = fm_refine_with(fine, std::move(projected), options, exec);
  }
  return part;
}

}  // namespace gridse::graph::detail
