#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/partitioner.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gridse::graph::detail {
namespace {

struct CoarseLevel {
  WeightedGraph graph;
  /// map[fine_vertex] = coarse_vertex in this level's graph
  std::vector<VertexId> fine_to_coarse;
};

/// Heavy-edge matching coarsening: visit vertices in random order and merge
/// each unmatched vertex with the unmatched neighbor sharing the heaviest
/// edge. Vertex weights add; parallel coarse edges fold together.
CoarseLevel coarsen_once(const WeightedGraph& g, Rng& rng) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  std::vector<VertexId> fine_to_coarse(static_cast<std::size_t>(n), -1);
  VertexId coarse_count = 0;
  for (const VertexId v : order) {
    if (fine_to_coarse[static_cast<std::size_t>(v)] >= 0) continue;
    VertexId mate = -1;
    double best_w = -1.0;
    for (const auto& [nbr, w] : g.neighbors(v)) {
      if (fine_to_coarse[static_cast<std::size_t>(nbr)] < 0 && w > best_w) {
        best_w = w;
        mate = nbr;
      }
    }
    fine_to_coarse[static_cast<std::size_t>(v)] = coarse_count;
    if (mate >= 0) {
      fine_to_coarse[static_cast<std::size_t>(mate)] = coarse_count;
    }
    ++coarse_count;
  }

  CoarseLevel level;
  level.graph = WeightedGraph(coarse_count);
  level.fine_to_coarse = std::move(fine_to_coarse);
  for (VertexId c = 0; c < coarse_count; ++c) {
    level.graph.set_vertex_weight(c, 0.0);
  }
  for (VertexId v = 0; v < n; ++v) {
    const VertexId c = level.fine_to_coarse[static_cast<std::size_t>(v)];
    level.graph.set_vertex_weight(
        c, level.graph.vertex_weight(c) + g.vertex_weight(v));
  }
  std::vector<std::pair<std::pair<VertexId, VertexId>, double>> agg;
  agg.reserve(g.num_edges());
  for (const Edge& e : g.edges()) {
    const VertexId cu = level.fine_to_coarse[static_cast<std::size_t>(e.u)];
    const VertexId cv = level.fine_to_coarse[static_cast<std::size_t>(e.v)];
    if (cu == cv) continue;
    const auto [lo, hi] = std::minmax(cu, cv);
    agg.push_back({{lo, hi}, e.weight});
  }
  std::sort(agg.begin(), agg.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i < agg.size();) {
    std::size_t j = i;
    double w = 0.0;
    while (j < agg.size() && agg[j].first == agg[i].first) {
      w += agg[j].second;
      ++j;
    }
    level.graph.add_edge(agg[i].first.first, agg[i].first.second, w);
    i = j;
  }
  return level;
}

bool exhaustive_fits(const WeightedGraph& g, const PartitionOptions& options) {
  return std::pow(static_cast<double>(options.k),
                  static_cast<double>(g.num_vertices())) <=
         options.exhaustive_budget;
}

}  // namespace

Partition multilevel_partition(const WeightedGraph& g,
                               const PartitionOptions& options);

Partition multilevel_partition(const WeightedGraph& g,
                               const PartitionOptions& options) {
  Rng rng(options.seed);
  // --- coarsening phase ----------------------------------------------------
  std::vector<CoarseLevel> levels;
  const WeightedGraph* current = &g;
  const VertexId stop_at =
      std::max<VertexId>(options.coarsen_to, options.k * 4);
  while (current->num_vertices() > stop_at) {
    CoarseLevel level = coarsen_once(*current, rng);
    if (level.graph.num_vertices() == current->num_vertices()) {
      break;  // matching stalled (e.g. star graphs); stop coarsening
    }
    levels.push_back(std::move(level));
    current = &levels.back().graph;
  }

  // --- initial partition at the coarsest level ------------------------------
  Partition part = exhaustive_fits(*current, options)
                       ? exhaustive_partition(*current, options)
                       : greedy_partition(*current, options);

  // --- uncoarsening + refinement --------------------------------------------
  for (std::size_t li = levels.size(); li > 0; --li) {
    const CoarseLevel& level = levels[li - 1];
    const WeightedGraph& fine =
        (li - 1 == 0) ? g : levels[li - 2].graph;
    std::vector<PartId> projected(static_cast<std::size_t>(fine.num_vertices()));
    for (VertexId v = 0; v < fine.num_vertices(); ++v) {
      projected[static_cast<std::size_t>(v)] =
          part.assignment[static_cast<std::size_t>(
              level.fine_to_coarse[static_cast<std::size_t>(v)])];
    }
    part = fm_refine(fine, std::move(projected), options);
  }
  return part;
}

}  // namespace gridse::graph::detail
