#pragma once

#include <cstdint>
#include <span>

#include "graph/partition.hpp"

namespace gridse {
class ThreadPool;
}

namespace gridse::graph {

/// What the partitioner minimizes once feasibility (balance) is met.
enum class PartitionObjective {
  /// Classic METIS objective: total weight of cut edges.
  kEdgeCut,
  /// Convergence-aware score per arXiv 2104.04320: minimize the expected
  /// distributed-GN iteration count implied by the worst area's boundary
  /// coupling, breaking ties on edge cut.
  kConvergenceAware,
};

/// Tuning knobs for the k-way partitioner. Defaults mirror METIS: 1.05
/// imbalance tolerance (the "suggested threshold" the paper quotes).
struct PartitionOptions {
  PartId k = 2;
  /// Acceptable load-imbalance ratio (max part / ideal part).
  double imbalance_tolerance = 1.05;
  std::uint64_t seed = 1;
  /// Exhaustive (provably optimal) search is used when k^n is at most this.
  double exhaustive_budget = 2e6;
  /// FM refinement passes per level.
  int refinement_passes = 8;
  /// Stop coarsening once the graph has at most max(this, 4k) vertices.
  VertexId coarsen_to = 24;
  /// Score minimized after feasibility.
  PartitionObjective objective = PartitionObjective::kEdgeCut;
  /// Worker threads for matching/coarsening/refinement. Results are
  /// bit-identical for any thread count; 1 runs inline.
  int threads = 1;
  /// Optional shared pool; when null and threads > 1 the partitioner spins
  /// up (and joins) a private pool per call.
  ThreadPool* pool = nullptr;
};

/// Partition `g` into `options.k` parts, minimizing edge cut subject to the
/// imbalance tolerance (lexicographic objective: feasibility, then cut, then
/// imbalance). Uses exhaustive search for tiny graphs — e.g. the paper's
/// 9-subsystem decomposition graph — and a METIS-style multilevel scheme
/// (heavy-edge matching, greedy initial partition, FM refinement) otherwise.
/// Throws InvalidInput when k exceeds the vertex count or k < 1.
Partition partition(const WeightedGraph& g, const PartitionOptions& options);

/// Adaptive repartitioning: refine `previous` under the (updated) weights of
/// `g`, preferring low migration. This is the paper's "repartitioning routine
/// provided by METIS" invoked before each DSE step as graph weights change.
Partition repartition(const WeightedGraph& g, std::span<const PartId> previous,
                      const PartitionOptions& options);

/// Result of a subsystem-count sweep (see choose_parts).
struct PartsChoice {
  Partition partition;
  PartId k = 0;
  /// expected GN iterations × max part weight — total-work proxy: the
  /// iteration count from the convergence-aware coupling model times the
  /// per-iteration cost of the heaviest (critical-path) part. Without the
  /// weight factor k = 1 always wins (no boundary → 1 iteration).
  double score = 0.0;
};

/// Sweep the subsystem count k over [k_min, k_max] (k_max clamped to the
/// vertex count), partitioning each k under the convergence-aware
/// objective, and return the k with the lowest score; ties break to the
/// smaller k. Deterministic for fixed (g, options, bounds). Throws
/// InvalidInput when k_min < 1 or k_min > k_max.
PartsChoice choose_parts(const WeightedGraph& g, PartitionOptions base,
                         PartId k_min, PartId k_max);

namespace detail {

/// Provably optimal partition by pruned enumeration (internal; exposed for
/// tests). Requires pow(k, n) within budget.
Partition exhaustive_partition(const WeightedGraph& g,
                               const PartitionOptions& options);

/// Greedy region-growing initial partition (internal; exposed for tests).
Partition greedy_partition(const WeightedGraph& g,
                           const PartitionOptions& options);

/// In-place FM-style k-way boundary refinement; returns the refined result.
Partition fm_refine(const WeightedGraph& g, std::vector<PartId> assignment,
                    const PartitionOptions& options);

/// True if candidate is better under the lexicographic edge-cut objective
/// (feasibility, then cut, then imbalance).
bool better_partition(const Partition& candidate, const Partition& incumbent,
                      double tolerance);

/// Objective-aware comparison: kEdgeCut delegates to the overload above;
/// kConvergenceAware orders by feasibility, then expected GN iterations,
/// then cut, then imbalance.
bool better_partition(const Partition& candidate, const Partition& incumbent,
                      double tolerance, PartitionObjective objective);

}  // namespace detail
}  // namespace gridse::graph
