// Ablation bench: validates the paper's empirical cost model (Expressions
// (1)-(4)) against this implementation. The paper calibrated Ni = g1*x + g2
// on a 14-bus subsystem (g1 = 3.7579, g2 = 5.2464) where Ni counts solver
// iterations per SE run. We measure our estimator's total inner (PCG)
// iterations on the IEEE 14-bus system across noise levels, fit a line, and
// compare the shape (monotone linear growth) with the paper's model.
#include "bench_util.hpp"
#include "estimation/wls.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/case14.hpp"
#include "mapping/weight_model.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace gridse;

int run() {
  bench::print_header(
      "Ablation — Expression (2) iteration model vs measured iterations",
      "Ni = g1*x + g2 with the paper's 14-bus calibration vs the measured\n"
      "Gauss-Newton and inner PCG iteration counts of this estimator on the\n"
      "IEEE 14-bus system, averaged over 20 seeded frames per noise level.");

  const io::Case c = io::ieee14();
  const grid::PowerFlowResult pf = grid::solve_power_flow(c.network);
  const mapping::WeightModelParams params;

  TextTable t({"noise x", "paper Ni = g1*x+g2", "measured GN iters",
               "measured inner PCG iters", "predicted Wv (14 buses)"});
  std::vector<double> xs;
  std::vector<double> inner;
  for (const double x : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    grid::MeasurementPlan plan;
    plan.noise_level = x;
    const grid::MeasurementGenerator gen(c.network, plan);
    Rng rng(2024);
    double gn_sum = 0.0;
    double inner_sum = 0.0;
    const int frames = 20;
    estimation::WlsOptions opts;
    opts.tolerance = 1e-7;
    const estimation::WlsEstimator est(c.network, opts);
    for (int f = 0; f < frames; ++f) {
      const grid::MeasurementSet meas = gen.generate(pf.state, rng);
      const estimation::WlsResult r = est.estimate(meas);
      gn_sum += r.iterations;
      inner_sum += r.inner_iterations;
    }
    const double ni_paper = mapping::predicted_iterations(x, params);
    t.add_row({strfmt("%.2f", x), strfmt("%.2f", ni_paper),
               strfmt("%.2f", gn_sum / frames),
               strfmt("%.2f", inner_sum / frames),
               strfmt("%.1f", mapping::vertex_weight(14, x, params))});
    xs.push_back(x);
    inner.push_back(inner_sum / frames);
  }
  bench::print_table(t);

  // Monotonicity check: measured iteration counts grow with noise, the
  // property Expression (2) encodes for the vertex-weight estimate.
  bool monotone = true;
  for (std::size_t i = 1; i < inner.size(); ++i) {
    monotone &= inner[i] >= inner[i - 1] - 1.0;
  }
  std::printf("Measured solver effort grows with the frame noise level: %s\n"
              "(the mapping method's vertex weights track real cost).\n",
              monotone ? "yes" : "NO");
  return monotone ? 0 : 1;
}

}  // namespace

int main() { return run(); }
