// Reproduces Table III of the paper: "Performance Comparison between W/O
// MeDICi and W/ MeDICi for Data Communication Within a Linux Workstation".
//
// Two presentations:
//  1. measured rows — real loopback-TCP transfers on this machine, raw
//     (unshaped) relay: the honest hardware-dependent numbers;
//  2. paper-scale projection — the paper's sizes (100 MB … 2 GB) with the
//     middleware relay calibrated to the paper's measured ~0.4 GB/s relay
//     rate, using our measured direct-TCP rate for T1. This reproduces the
//     paper's *shape*: overhead grows linearly at the relay rate.
#include "bench_util.hpp"
#include "transfer_util.hpp"
#include "util/strings.hpp"

namespace {

using namespace gridse;

int run() {
  bench::print_header(
      "Table III — w/o vs w/ MeDICi, within one workstation",
      "T1 = direct TCP socket transfer; T2 = transfer through a MeDICi\n"
      "pipeline (store-and-forward relay). Overhead = T2 - T1.\n"
      "Paper reference rows (2012 hardware): 100MB: 0.052 vs 0.381 s;\n"
      "2GB: 1.098 vs 6.015 s; relay rate ~0.4 GB/s.");

  const medici::NetModel raw = medici::unshaped_model();

  // --- measured on this machine -------------------------------------------
  TextTable measured({"Data Size", "TCP direct T1 (s)", "w/ MeDICi T2 (s)",
                      "Abs. Overhead (s)"});
  const std::size_t kMiB = 1024 * 1024;
  double direct_rate = 0.0;
  double medici_rate = 0.0;
  for (const std::size_t mb : {16ull, 64ull, 256ull}) {
    const std::size_t size = mb * kMiB;
    const double t1 = bench::measure_direct(size, raw);
    const double t2 = bench::measure_via_medici(size, raw, raw);
    measured.add_row({format_bytes(size), bench::fmt_secs(t1),
                      bench::fmt_secs(t2), bench::fmt_secs(t2 - t1)});
    direct_rate = bench::measured_rate(size, t1);
    medici_rate = bench::measured_rate(size, t2);
  }
  std::printf("Measured on this machine (raw loopback, unshaped relay):\n");
  bench::print_table(measured);
  std::printf("measured direct rate: %.2f GB/s; through-middleware rate: "
              "%.2f GB/s\n\n",
              direct_rate / (1024.0 * 1024.0 * 1024.0),
              medici_rate / (1024.0 * 1024.0 * 1024.0));

  // --- validation of the calibrated model at one size ----------------------
  const medici::NetModel relay_cal = medici::medici_relay_model();
  const std::size_t probe = 100 * kMiB;
  const double t2_cal = bench::measure_via_medici(probe, raw, relay_cal);
  const double t1_probe = bench::measure_direct(probe, raw);
  std::printf("calibration probe (100 MB, relay paced at 0.4 GB/s): "
              "T2=%.3f s, overhead %.3f s (paper: 0.329 s)\n\n",
              t2_cal, t2_cal - t1_probe);

  // --- paper-scale projection ------------------------------------------------
  TextTable projected({"Data Size", "T1 direct (s)", "T2 w/ MeDICi (s)",
                       "Abs. Overhead (s)", "paper T1", "paper T2"});
  struct PaperRow {
    double gb;
    const char* label;
    double t1;
    double t2;
  };
  const PaperRow paper[] = {{100.0 / 1024, "100MB", 0.052123, 0.380771},
                            {200.0 / 1024, "200MB", 0.106736, 0.643337},
                            {500.0 / 1024, "500MB", 0.261842, 1.620076},
                            {1.0, "1GB", 0.523994, 3.124528},
                            {2.0, "2GB", 1.097956, 6.015401}};
  const double relay_rate = relay_cal.bandwidth_bytes_per_sec;
  for (const PaperRow& row : paper) {
    const double bytes = row.gb * 1024.0 * 1024.0 * 1024.0;
    const double t1 = bytes / direct_rate;
    const double t2 = t1 + bytes / relay_rate + relay_cal.latency_sec;
    projected.add_row({row.label, bench::fmt_secs(t1), bench::fmt_secs(t2),
                       bench::fmt_secs(t2 - t1), bench::fmt_secs(row.t1),
                       bench::fmt_secs(row.t2)});
  }
  std::printf("Projection at the paper's sizes (our direct rate + the "
              "paper-calibrated 0.4 GB/s relay):\n");
  bench::print_table(projected);
  std::printf("Shape check: overhead is linear in size at the relay rate, "
              "matching §V-B's conclusion.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
