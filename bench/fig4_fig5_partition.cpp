// Reproduces Figures 4 and 5 of the paper: partitioning the 9-subsystem
// decomposition graph onto 3 HPC clusters before DSE Step 1 (load balance
// only; paper reports imbalance 1.035) and repartitioning before Step 2
// (communication-aware weights; paper reports 1.079, with subsystems 4 and 5
// swapping clusters).
#include <map>

#include "bench_util.hpp"
#include "decomp/sensitivity.hpp"
#include "io/synthetic.hpp"
#include "mapping/mapper.hpp"
#include "mapping/redistribution.hpp"
#include "util/strings.hpp"

namespace {

using namespace gridse;

const char* kClusterNames[] = {"Nwiceb", "Catamount", "Chinook"};

void print_assignment(const decomp::Decomposition& d,
                      const graph::Partition& p, const char* title) {
  TextTable t({"Cluster", "Subsystems", "Buses", "Weight"});
  for (graph::PartId c = 0; c < p.k; ++c) {
    std::string subs;
    int buses = 0;
    for (int s = 0; s < d.num_subsystems(); ++s) {
      if (p.assignment[static_cast<std::size_t>(s)] == c) {
        if (!subs.empty()) subs += ", ";
        subs += std::to_string(s + 1);
        buses += static_cast<int>(d.subsystems[static_cast<std::size_t>(s)]
                                      .buses.size());
      }
    }
    t.add_row({kClusterNames[c], subs, std::to_string(buses),
               strfmt("%.1f", p.part_weights[static_cast<std::size_t>(c)])});
  }
  std::printf("%s\n", title);
  bench::print_table(t);
}

int run() {
  bench::print_header(
      "Figures 4 & 5 — mapping the decomposition onto 3 HPC clusters",
      "Step-1 mapping load-balances computation (uniform edge weights);\n"
      "Step-2 repartitioning minimizes communication while staying balanced.\n"
      "Paper reference: load-imbalance 1.035 before Step 1, 1.079 before\n"
      "Step 2 (METIS, suggested threshold 1.05).");

  const io::GeneratedCase generated = bench::load_case("ieee118");
  decomp::Decomposition d =
      decomp::decompose(generated.kase.network, generated.subsystem_of_bus);
  decomp::analyze_sensitivity(generated.kase.network, d, {});

  mapping::MappingOptions opts;
  opts.num_clusters = 3;
  const mapping::ClusterMapper mapper(d, opts);

  const mapping::MappingResult step1 = mapper.map_before_step1(0.0);
  print_assignment(d, step1.partition, "Before DSE Step 1 (Figure 4):");
  std::printf("load-imbalance ratio: %.3f   (paper: 1.035, threshold 1.05)\n"
              "edge cut: %.1f   noise level x=%.3f   predicted iterations "
              "Ni=%.2f\n\n",
              step1.partition.load_imbalance, step1.partition.edge_cut,
              step1.noise_level, step1.predicted_iterations);

  const mapping::MappingResult step2 =
      mapper.map_before_step2(0.0, step1.partition.assignment);
  print_assignment(d, step2.partition, "Before DSE Step 2 (Figure 5):");
  std::printf("load-imbalance ratio: %.3f   (paper: 1.079)\n"
              "edge cut (pseudo-measurement bytes proxy): %.1f\n\n",
              step2.partition.load_imbalance, step2.partition.edge_cut);

  const int moved = graph::migration_count(step1.partition.assignment,
                                           step2.partition.assignment);
  const mapping::RedistributionPlan plan = mapping::plan_redistribution(
      d, step1.partition.assignment, step2.partition.assignment);
  std::printf("re-mapped subsystems between steps: %d (paper: 2 — "
              "subsystems 4 and 5)\n",
              moved);
  for (const mapping::RedistributionMove& m : plan.moves) {
    std::printf("  subsystem %d: %s -> %s (%s of raw measurements)\n",
                m.subsystem + 1, kClusterNames[m.from_cluster],
                kClusterNames[m.to_cluster],
                format_bytes(m.estimated_bytes).c_str());
  }

  const bool ok = step1.partition.load_imbalance <= 1.035 + 1e-9 &&
                  step2.partition.load_imbalance <= 1.079 + 1e-9;
  std::printf("\nFig. 4/5 reproduction: %s (our exhaustive partitioner is "
              "optimal, so ratios are <= the paper's METIS results)\n",
              ok ? "OK" : "WORSE THAN PAPER — investigate");
  return ok ? 0 : 1;
}

}  // namespace

int main() { return run(); }
