// Reproduces Figure 8 of the paper: "Overheads of Data Communication through
// MeDICi" — the absolute overhead (T_with - T_without) as a function of the
// data size, for both scenarios (within a workstation; workstation to HPC
// cluster). The paper's observation: "the overhead follows a linear trend to
// the data size". We measure the overhead series on real sockets with the
// calibrated relay, fit a line, and report the fit quality and slope.
#include <cmath>

#include "bench_util.hpp"
#include "transfer_util.hpp"
#include "util/strings.hpp"

namespace {

using namespace gridse;

struct Fit {
  double slope = 0.0;      // seconds per byte
  double intercept = 0.0;  // seconds
  double r_squared = 0.0;
};

Fit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  Fit f;
  const double denom = n * sxx - sx * sx;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  const double mean = sy / n;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = f.slope * x[i] + f.intercept;
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean) * (y[i] - mean);
  }
  f.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

int run() {
  bench::print_header(
      "Figure 8 — MeDICi overhead vs data size",
      "Overhead series (T_with_medici - T_without) for both scenarios, with\n"
      "a least-squares linear fit. Paper: the overhead is linear in size,\n"
      "governed by the ~0.4 GB/s relay rate.");

  const medici::NetModel raw = medici::unshaped_model();
  const medici::NetModel gige = medici::gige_network_model();
  const medici::NetModel relay = medici::medici_relay_model();

  const std::size_t kMiB = 1024 * 1024;
  const std::size_t sizes[] = {8 * kMiB, 16 * kMiB, 32 * kMiB,
                               64 * kMiB, 96 * kMiB, 128 * kMiB};

  TextTable t({"Data Size", "Overhead 1: workstation (s)",
               "Overhead 2: cross-network (s)"});
  std::vector<double> xs;
  std::vector<double> o1;
  std::vector<double> o2;
  for (const std::size_t size : sizes) {
    const double t1 = bench::measure_direct(size, raw);
    const double t2 = bench::measure_via_medici(size, raw, relay);
    const double t3 = bench::measure_direct(size, gige);
    const double t4 = bench::measure_via_medici(size, gige, relay);
    xs.push_back(static_cast<double>(size));
    o1.push_back(t2 - t1);
    o2.push_back(t4 - t3);
    t.add_row({format_bytes(size), bench::fmt_secs(t2 - t1),
               bench::fmt_secs(t4 - t3)});
  }
  bench::print_table(t);

  const Fit f1 = linear_fit(xs, o1);
  const Fit f2 = linear_fit(xs, o2);
  const double gb = 1024.0 * 1024.0 * 1024.0;
  std::printf("linear fit, scenario 1 (workstation):   slope %.3f s/GB, "
              "R^2 = %.4f\n",
              f1.slope * gb, f1.r_squared);
  std::printf("linear fit, scenario 2 (cross-network): slope %.3f s/GB, "
              "R^2 = %.4f\n",
              f2.slope * gb, f2.r_squared);
  std::printf("relay-rate implied slope: %.3f s/GB (1 / 0.4 GB/s)\n",
              gb / relay.bandwidth_bytes_per_sec);

  const bool linear = f1.r_squared > 0.98 && f2.r_squared > 0.98;
  std::printf("\nFigure 8 reproduction: overhead %s linear in data size "
              "(paper: linear)\n",
              linear ? "IS" : "IS NOT");
  return linear ? 0 : 1;
}

}  // namespace

int main() { return run(); }
