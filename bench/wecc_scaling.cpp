// Future-work bench: the paper's conclusion announces a DSE test case on
// the WECC system with 37 balancing authorities. This bench builds that
// scenario (37 uneven subsystems, ~600 buses) and measures how the
// architecture scales as HPC clusters are added, against the centralized
// estimator on the same frame.
#include <mutex>

#include "bench_util.hpp"
#include "core/architecture.hpp"
#include "decomp/bus_partition.hpp"
#include "grid/powerflow.hpp"
#include "runtime/inproc_comm.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace {

using namespace gridse;

int run() {
  bench::print_header(
      "Future work — WECC-scale DSE (37 balancing authorities)",
      "The paper's §VI scenario: 37 subsystems of uneven size. DSE cycle\n"
      "time vs the number of HPC clusters, against centralized WLS on the\n"
      "same measurements. Step-1 wall time shrinks as clusters are added;\n"
      "exchange stays small (pseudo measurements only).");

  const io::GeneratedCase generated = io::wecc37();
  std::printf("system: %d buses, %zu branches, %d subsystems\n\n",
              generated.kase.network.num_buses(),
              generated.kase.network.num_branches(),
              generated.num_subsystems());

  // Centralized reference.
  double central_ms = 0.0;
  double central_err = 0.0;
  {
    core::SystemConfig cfg;
    cfg.mapping.num_clusters = 1;
    core::DseSystem sys(io::wecc37(), cfg);
    (void)sys.run_cycle(0.0);
    Timer timer;
    const estimation::WlsResult central = sys.centralized_reference();
    central_ms = timer.millis();
    central_err = grid::max_vm_error(central.state, sys.true_state());
  }

  TextTable t({"clusters", "imbalance", "step1 (ms)", "exchange (ms)",
               "step2 (ms)", "total (ms)", "bytes", "max |V| err"});
  t.add_row({"centralized", "-", "-", "-", "-", strfmt("%.1f", central_ms),
             "0", strfmt("%.2e", central_err)});
  for (const int k : {1, 2, 4, 8}) {
    core::SystemConfig cfg;
    cfg.mapping.num_clusters = k;
    cfg.dse.workers_per_cluster = 4;
    core::DseSystem sys(io::wecc37(), cfg);
    const core::CycleReport rep = sys.run_cycle(0.0);
    t.add_row({std::to_string(k),
               strfmt("%.3f", rep.map_step1.partition.load_imbalance),
               strfmt("%.1f", rep.dse.step1_seconds * 1e3),
               strfmt("%.1f", rep.dse.exchange_seconds * 1e3),
               strfmt("%.1f", rep.dse.step2_seconds * 1e3),
               strfmt("%.1f", rep.dse.total_seconds * 1e3),
               std::to_string(rep.dse.bytes_sent),
               strfmt("%.2e", rep.max_vm_error)});
  }
  bench::print_table(t);

  // Step-2 rounds ablation: the DSE iteration count is bounded by the
  // decomposition diameter (paper §II); more rounds propagate boundary
  // information further.
  {
    const io::GeneratedCase g2 = io::wecc37();
    const decomp::Decomposition d =
        decomp::decompose(g2.kase.network, g2.subsystem_of_bus);
    std::printf("decomposition diameter: %d\n\n",
                d.decomposition_graph().diameter());
  }
  TextTable rounds_table({"step2 rounds", "max |V| err", "max angle err",
                          "bytes", "total (ms)"});
  for (const int rounds : {1, 2, 3}) {
    core::SystemConfig cfg;
    cfg.mapping.num_clusters = 4;
    cfg.dse.step2_rounds = rounds;
    core::DseSystem sys(io::wecc37(), cfg);
    const core::CycleReport rep = sys.run_cycle(0.0);
    rounds_table.add_row({std::to_string(rounds),
                          strfmt("%.2e", rep.max_vm_error),
                          strfmt("%.2e", rep.max_angle_error),
                          std::to_string(rep.dse.bytes_sent),
                          strfmt("%.1f", rep.dse.total_seconds * 1e3)});
  }
  std::printf("Step-2 exchange/re-evaluation rounds (diameter-bounded "
              "iteration, §II):\n");
  bench::print_table(rounds_table);

  // Scale tier: one full estimation cycle on the 10k-bus hierarchical
  // interconnection, decomposed at the bus level by the convergence-aware
  // partitioner and run with the DC-linearized truth (the AC Newton truth
  // is the bottleneck at this size, not the DSE itself).
  {
    bench::print_header(
        "Scale tier — 10k-bus hierarchical interconnection, end to end",
        "partition_buses (k=32, convergence-aware) -> decompose -> one DSE\n"
        "cycle over 4 clusters with DC-linearized truth.");
    io::GeneratedCase gc = bench::load_case("10k");
    graph::PartitionOptions popts;
    popts.k = 32;
    popts.seed = 7;
    popts.objective = graph::PartitionObjective::kConvergenceAware;
    Timer part_timer;
    gc.subsystem_of_bus = decomp::partition_buses(gc.kase.network, popts);
    const double part_ms = part_timer.millis();
    const int buses = gc.kase.network.num_buses();

    core::SystemConfig cfg;
    cfg.truth_mode = core::TruthMode::kDcLinearized;
    cfg.mapping.num_clusters = 4;
    cfg.dse.workers_per_cluster = 4;
    core::DseSystem sys(std::move(gc), cfg);
    Timer cycle_timer;
    const core::CycleReport rep = sys.run_cycle(0.0);
    const double cycle_ms = cycle_timer.millis();
    std::printf("10k tier: %d buses, partition %.1f ms, cycle %.1f ms "
                "(step1 %.1f / exchange %.1f / step2 %.1f), converged=%s, "
                "max |V| err %.2e\n",
                buses, part_ms, cycle_ms, rep.dse.step1_seconds * 1e3,
                rep.dse.exchange_seconds * 1e3, rep.dse.step2_seconds * 1e3,
                rep.dse.all_converged ? "yes" : "NO", rep.max_vm_error);
    if (!rep.dse.all_converged) return 1;
  }

  // 30k tier: same full-cycle pipeline one size up, with a wider partition
  // sweep. This is the largest tier exercised end to end in CI; 100k stays
  // partition-only (partitioner_scaling bench).
  {
    bench::print_header(
        "Scale tier — 30k-bus hierarchical interconnection, end to end",
        "partition_buses (k=48, convergence-aware) -> decompose -> one DSE\n"
        "cycle over 8 clusters with DC-linearized truth.");
    io::GeneratedCase gc = bench::load_case("30k");
    graph::PartitionOptions popts;
    popts.k = 48;
    popts.seed = 7;
    popts.objective = graph::PartitionObjective::kConvergenceAware;
    Timer part_timer;
    gc.subsystem_of_bus = decomp::partition_buses(gc.kase.network, popts);
    const double part_ms = part_timer.millis();
    const int buses = gc.kase.network.num_buses();

    core::SystemConfig cfg;
    cfg.truth_mode = core::TruthMode::kDcLinearized;
    cfg.mapping.num_clusters = 8;
    cfg.dse.workers_per_cluster = 4;
    core::DseSystem sys(std::move(gc), cfg);
    Timer cycle_timer;
    const core::CycleReport rep = sys.run_cycle(0.0);
    const double cycle_ms = cycle_timer.millis();
    std::printf("30k tier: %d buses, partition %.1f ms, cycle %.1f ms "
                "(step1 %.1f / exchange %.1f / step2 %.1f), converged=%s, "
                "max |V| err %.2e\n",
                buses, part_ms, cycle_ms, rep.dse.step1_seconds * 1e3,
                rep.dse.exchange_seconds * 1e3, rep.dse.step2_seconds * 1e3,
                rep.dse.all_converged ? "yes" : "NO", rep.max_vm_error);
    if (!rep.dse.all_converged) return 1;
  }
  return 0;
}

}  // namespace

int main() { return run(); }
