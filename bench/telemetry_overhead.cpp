// Telemetry-sampler overhead bench (google-benchmark): what one cycle
// boundary costs with the per-cycle time-series sampler armed — registry
// snapshot, counter/histogram delta rendering, the JSONL append, and the
// live exposition rewrite (docs/OBSERVABILITY.md). The budget is <1% of a
// cycle: the paper's ieee118 cycles run tens of milliseconds, so the
// sampler must stay well under a few hundred microseconds.
//
// The registry is populated to the size a real ieee118 run produces
// (~30 counters, a few gauges, ~10 histograms, the span taxonomy) so the
// snapshot walk and delta render are measured at representative width.
#include <benchmark/benchmark.h>

#include "obs/metrics.hpp"

#if GRIDSE_OBS

#include <filesystem>
#include <string>

#include "obs/telemetry.hpp"

namespace {

namespace fs = std::filesystem;
using namespace gridse;

/// Simulate one cycle's worth of instrument traffic on `registry`, at the
/// metric count a 3-cluster ieee118 cycle actually touches.
void touch_instruments(obs::MetricsRegistry& registry, int cycle) {
  for (int c = 0; c < 30; ++c) {
    registry.counter("bench.counter_" + std::to_string(c)).add(7);
  }
  for (int g = 0; g < 4; ++g) {
    registry.gauge("bench.gauge_" + std::to_string(g)).set(cycle % 13);
  }
  for (int h = 0; h < 10; ++h) {
    auto& hist = registry.histogram("bench.hist_" + std::to_string(h));
    for (int o = 0; o < 9; ++o) {
      hist.observe(1e-4 * (o + 1));
    }
  }
  for (int s = 0; s < 12; ++s) {
    registry.record_span("bench.span_" + std::to_string(s), "bench.root",
                         2e-3);
  }
}

/// Snapshot cost alone: the lock-held walk over every instrument.
void BM_registry_snapshot(benchmark::State& state) {
  obs::MetricsRegistry registry;
  touch_instruments(registry, 0);
  for (auto _ : state) {
    obs::Snapshot snap = registry.snapshot();
    benchmark::DoNotOptimize(snap.counters.size());
  }
}
BENCHMARK(BM_registry_snapshot);

/// The full cycle-boundary path: instrument traffic for one cycle, then
/// on_cycle_end (snapshot + delta JSONL append + exposition rewrite).
void BM_cycle_telemetry(benchmark::State& state) {
  const fs::path dir = fs::temp_directory_path() / "gridse_telemetry_bench";
  fs::remove_all(dir);
  obs::MetricsRegistry registry;
  obs::TelemetryOptions options;
  options.dir = dir.string();
  obs::TelemetrySampler sampler(options, registry);
  std::int64_t cycle = 0;
  for (auto _ : state) {
    touch_instruments(registry, static_cast<int>(cycle));
    obs::CycleStamp stamp;
    stamp.cycle = cycle++;
    stamp.participants = {0, 1, 2};
    stamp.total_seconds = 0.06;
    sampler.on_cycle_end(stamp);
  }
  state.counters["cycles"] = static_cast<double>(sampler.cycles_recorded());
  fs::remove_all(dir);
}
BENCHMARK(BM_cycle_telemetry);

/// The instrument traffic alone, for subtraction: BM_cycle_telemetry minus
/// this is the sampler's own cost.
void BM_instrument_traffic(benchmark::State& state) {
  obs::MetricsRegistry registry;
  int cycle = 0;
  for (auto _ : state) {
    touch_instruments(registry, cycle++);
  }
}
BENCHMARK(BM_instrument_traffic);

}  // namespace

#endif  // GRIDSE_OBS

BENCHMARK_MAIN();
