// Reproduces Table I of the paper: "The Initial Vertex and Edge Weights for
// the IEEE 118 Bus System Decomposition". Vertex weights are initialized to
// subsystem bus counts; edge weights to the sum of the two neighbouring
// subsystems' bus counts (Expression (5) upper bound).
#include "bench_util.hpp"
#include "decomp/decomposition.hpp"
#include "io/synthetic.hpp"
#include "mapping/mapper.hpp"
#include "util/strings.hpp"

namespace {

using namespace gridse;

int run() {
  bench::print_header(
      "Table I — initial vertex and edge weights",
      "IEEE 118-bus system decomposed into 9 subsystems (Fig. 3); weights\n"
      "initialized from bus counts exactly as the paper's Table I.");

  const io::GeneratedCase generated = io::ieee118_dse();
  const decomp::Decomposition d =
      decomp::decompose(generated.kase.network, generated.subsystem_of_bus);
  mapping::MappingOptions opts;
  opts.num_clusters = 3;
  const mapping::ClusterMapper mapper(d, opts);
  const graph::WeightedGraph g = mapper.initial_graph();

  // Paper's Table I reference values.
  const int paper_vertex[] = {14, 13, 13, 13, 13, 12, 14, 13, 13};
  struct PaperEdge {
    int a;
    int b;
    int weight;
  };
  const PaperEdge paper_edges[] = {{1, 2, 27}, {1, 4, 27}, {1, 5, 27},
                                   {2, 3, 26}, {2, 6, 25}, {3, 6, 25},
                                   {4, 5, 26}, {4, 7, 27}, {5, 6, 25},
                                   {5, 7, 27}, {5, 8, 26}, {7, 9, 27}};

  TextTable vertices({"Vertex", "Weight (ours)", "Weight (paper)", "Match"});
  bool all_match = true;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const double ours = g.vertex_weight(v);
    const int paper = paper_vertex[v];
    const bool match = ours == static_cast<double>(paper);
    all_match &= match;
    vertices.add_row({std::to_string(v + 1), strfmt("%.0f", ours),
                      std::to_string(paper), match ? "yes" : "NO"});
  }
  bench::print_table(vertices);

  TextTable edges({"Edge", "Weight (ours)", "Weight (paper)", "Match"});
  for (const PaperEdge& pe : paper_edges) {
    double ours = -1.0;
    for (const graph::Edge& e : g.edges()) {
      if ((e.u == pe.a - 1 && e.v == pe.b - 1) ||
          (e.u == pe.b - 1 && e.v == pe.a - 1)) {
        ours = e.weight;
      }
    }
    // Paper's Table I has two rows (2,3)=26 and (4,5)=26 that disagree with
    // the plain bus-count sums 13+13=26 and 13+13=26 — both consistent; the
    // rows (2,6)=25 and (5,6)=25 use 13+12; all follow Expression (5).
    const bool match = ours == static_cast<double>(pe.weight);
    all_match &= match;
    edges.add_row({strfmt("(%d, %d)", pe.a, pe.b), strfmt("%.0f", ours),
                   std::to_string(pe.weight), match ? "yes" : "NO"});
  }
  bench::print_table(edges);

  std::printf("Table I reproduction: %s\n",
              all_match ? "EXACT MATCH with the paper" : "MISMATCH — see rows");
  return all_match ? 0 : 1;
}

}  // namespace

int main() { return run(); }
