#pragma once

#include <cstdio>
#include <string>

#include "io/synthetic.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace gridse::bench {

/// The one case-loading path shared by every bench binary, so a tier name
/// means the same network everywhere ("ieee118" in the figure benches is
/// the same case as in the scaling sweeps). Known names: ieee118, wecc37,
/// 10k, 30k, 100k.
inline io::GeneratedCase load_case(const std::string& name) {
  if (name == "ieee118") return io::ieee118_dse();
  if (name == "wecc37") return io::wecc37();
  if (name == "10k") return io::interconnection10k();
  if (name == "30k") return io::interconnection30k();
  if (name == "100k") return io::interconnection100k();
  throw InvalidInput("unknown bench case: " + name);
}

/// Print a section header in the style shared by all bench binaries.
inline void print_header(const std::string& experiment,
                         const std::string& description) {
  std::printf("\n=== %s ===\n%s\n\n", experiment.c_str(), description.c_str());
}

/// Print a table followed by a blank line.
inline void print_table(const TextTable& table) {
  std::fputs(table.to_string().c_str(), stdout);
  std::fputs("\n", stdout);
}

/// Format seconds with microsecond resolution, like the paper's tables.
inline std::string fmt_secs(double seconds) {
  return strfmt("%.6f", seconds);
}

}  // namespace gridse::bench
