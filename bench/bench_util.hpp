#pragma once

#include <cstdio>
#include <string>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace gridse::bench {

/// Print a section header in the style shared by all bench binaries.
inline void print_header(const std::string& experiment,
                         const std::string& description) {
  std::printf("\n=== %s ===\n%s\n\n", experiment.c_str(), description.c_str());
}

/// Print a table followed by a blank line.
inline void print_table(const TextTable& table) {
  std::fputs(table.to_string().c_str(), stdout);
  std::fputs("\n", stdout);
}

/// Format seconds with microsecond resolution, like the paper's tables.
inline std::string fmt_secs(double seconds) {
  return strfmt("%.6f", seconds);
}

}  // namespace gridse::bench
