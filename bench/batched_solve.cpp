// Batched multi-subsystem solver bench (google-benchmark): DSE Step 1 over
// every subsystem of a decomposition, solved the historical way (one
// estimator at a time) vs the batched lockstep sweep (one numeric
// factorization/solve pass over packed lanes, estimation::batched_estimate).
// Both paths run direct LDLt lanes against persistent SolverCaches, so the
// delta isolates the batching itself. The deterministic Gauss-Newton
// iteration counts and lane counts are exported as counters and gated in CI
// (tools/bench_gate.py promotes gn_iters / lanes counters to enforced).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/local_estimator.hpp"
#include "core/plan_registry.hpp"
#include "decomp/decomposition.hpp"
#include "decomp/sensitivity.hpp"
#include "estimation/batched_wls.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/synthetic.hpp"
#include "util/rng.hpp"

namespace {

using namespace gridse;

/// One decomposed case with ready-to-solve measurements: the Step-1 inputs
/// of every subsystem.
struct CaseFixture {
  io::GeneratedCase generated;
  decomp::Decomposition d;
  grid::MeasurementSet meas;
};

CaseFixture make_fixture(io::GeneratedCase generated, std::uint64_t seed) {
  CaseFixture fx{std::move(generated), {}, {}};
  fx.d = decomp::decompose(fx.generated.kase.network,
                           fx.generated.subsystem_of_bus);
  decomp::analyze_sensitivity(fx.generated.kase.network, fx.d, {});
  const grid::PowerFlowResult pf =
      grid::solve_power_flow(fx.generated.kase.network);
  grid::MeasurementPlan plan;
  for (const decomp::Subsystem& s : fx.d.subsystems) {
    plan.pmu_buses.push_back(s.buses.front());
  }
  grid::MeasurementGenerator gen(fx.generated.kase.network, plan);
  Rng rng(seed);
  fx.meas = gen.generate(pf.state, rng);
  return fx;
}

const CaseFixture& fixture118() {
  static const CaseFixture fx = make_fixture(io::ieee118_dse(), 7);
  return fx;
}

const CaseFixture& fixture_wecc() {
  static const CaseFixture fx = make_fixture(io::wecc37(), 7);
  return fx;
}

core::LocalEstimatorOptions ldlt_options() {
  core::LocalEstimatorOptions opts;
  opts.wls.solver = estimation::LinearSolver::kLdlt;
  return opts;
}

/// Historical path: per-subsystem run_step1, one estimator after another.
void bench_sequential(benchmark::State& state, const CaseFixture& fx) {
  const core::LocalEstimatorOptions opts = ldlt_options();
  std::vector<std::unique_ptr<core::LocalEstimator>> ests;
  for (int s = 0; s < fx.d.num_subsystems(); ++s) {
    ests.push_back(std::make_unique<core::LocalEstimator>(
        fx.generated.kase.network, fx.d, s, opts));
  }
  int gn_iters = 0;
  for (auto _ : state) {
    gn_iters = 0;
    for (auto& est : ests) {
      const core::LocalSolveInfo info = est->run_step1(fx.meas);
      gn_iters += info.gauss_newton_iterations;
      benchmark::DoNotOptimize(info.objective);
    }
  }
  state.counters["gn_iters"] = gn_iters;
  state.counters["lanes"] = fx.d.num_subsystems();
}

/// Batched path: every subsystem is a lane of one lockstep sweep.
void bench_batched(benchmark::State& state, const CaseFixture& fx) {
  const core::LocalEstimatorOptions opts = ldlt_options();
  core::PlanRegistry registry;
  std::vector<std::unique_ptr<core::LocalEstimator>> ests;
  std::vector<std::shared_ptr<estimation::SolverCache>> caches;
  for (int s = 0; s < fx.d.num_subsystems(); ++s) {
    core::LocalEstimatorOptions sub_opts = opts;
    sub_opts.wls.cache = registry.cache_for(s);
    ests.push_back(std::make_unique<core::LocalEstimator>(
        fx.generated.kase.network, fx.d, s, sub_opts));
    caches.push_back(registry.cache_for(s));
  }
  int gn_iters = 0;
  for (auto _ : state) {
    std::vector<estimation::BatchedLaneProblem> lanes;
    lanes.reserve(ests.size());
    for (auto& est : ests) {
      lanes.push_back(est->prepare_step1(fx.meas));
    }
    const std::vector<estimation::WlsResult> results =
        estimation::batched_estimate(lanes, opts.wls, caches);
    gn_iters = 0;
    for (std::size_t i = 0; i < ests.size(); ++i) {
      const core::LocalSolveInfo info =
          ests[i]->commit_step1(results[i], 0.0);
      gn_iters += info.gauss_newton_iterations;
      benchmark::DoNotOptimize(info.objective);
    }
  }
  state.counters["gn_iters"] = gn_iters;
  state.counters["lanes"] = static_cast<double>(ests.size());
}

void BM_Step1Sequential118(benchmark::State& s) {
  bench_sequential(s, fixture118());
}
void BM_Step1Batched118(benchmark::State& s) { bench_batched(s, fixture118()); }
void BM_Step1SequentialWecc(benchmark::State& s) {
  bench_sequential(s, fixture_wecc());
}
void BM_Step1BatchedWecc(benchmark::State& s) {
  bench_batched(s, fixture_wecc());
}

BENCHMARK(BM_Step1Sequential118)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Step1Batched118)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Step1SequentialWecc)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Step1BatchedWecc)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
