// Reproduces Table II of the paper: "Decomposition Comparison between W/O
// Mapping and W/ Mapping". Without the mapping method, buses are grouped by
// the pre-existing administrative areas (a contiguous business-policy split:
// 35/46/37 buses); with the mapping method, subsystems are packed onto
// clusters by the weighted partitioner (40/40/38).
#include <algorithm>

#include "bench_util.hpp"
#include "decomp/decomposition.hpp"
#include "io/synthetic.hpp"
#include "mapping/mapper.hpp"
#include "util/strings.hpp"

namespace {

using namespace gridse;

int run() {
  bench::print_header(
      "Table II — bus counts per area, w/o vs w/ the mapping method",
      "The w/o-mapping baseline designates contiguous bus ranges to areas\n"
      "(the kind of business-policy split the paper describes); the mapping\n"
      "method balances subsystem weights across clusters.\n"
      "Paper reference: 35/46/37 w/o mapping vs 40/40/38 w/ mapping.");

  const io::GeneratedCase generated = io::ieee118_dse();
  const decomp::Decomposition d =
      decomp::decompose(generated.kase.network, generated.subsystem_of_bus);

  // --- w/o mapping: administrative ranges sized like the paper's areas -----
  const int kAdministrativeSplit[] = {35, 46, 37};
  std::vector<int> naive_counts(std::begin(kAdministrativeSplit),
                                std::end(kAdministrativeSplit));

  // --- w/ mapping: weighted partitioner over the decomposition graph -------
  mapping::MappingOptions opts;
  opts.num_clusters = 3;
  const mapping::ClusterMapper mapper(d, opts);
  const mapping::MappingResult mapped = mapper.map_before_step1(0.0);
  std::vector<int> mapped_counts = mapping::cluster_bus_counts(
      d, mapped.partition.assignment, opts.num_clusters);
  std::sort(mapped_counts.rbegin(), mapped_counts.rend());

  TextTable t({"Areas", "w/o mapping (# of buses)", "w/ mapping (# of buses)",
               "paper w/o", "paper w/"});
  const int paper_with[] = {40, 40, 38};
  for (int c = 0; c < 3; ++c) {
    t.add_row({"Area " + std::to_string(c + 1),
               std::to_string(naive_counts[static_cast<std::size_t>(c)]),
               std::to_string(mapped_counts[static_cast<std::size_t>(c)]),
               std::to_string(kAdministrativeSplit[c]),
               std::to_string(paper_with[c])});
  }
  bench::print_table(t);

  const auto spread = [](const std::vector<int>& v) {
    return *std::max_element(v.begin(), v.end()) -
           *std::min_element(v.begin(), v.end());
  };
  std::printf("bus-count spread: %d w/o mapping -> %d w/ mapping "
              "(paper: 11 -> 2)\n",
              spread(naive_counts), spread(mapped_counts));

  const std::vector<int> expected{40, 40, 38};
  const bool ok = mapped_counts == expected;
  std::printf("Table II reproduction (w/ mapping column): %s\n",
              ok ? "EXACT MATCH with the paper" : "DIFFERENT PACKING");
  return ok ? 0 : 1;
}

}  // namespace

int main() { return run(); }
