#pragma once

// Shared measurement helpers for the middleware-overhead experiments
// (paper Tables III/IV, Figure 8): time one framed transfer from a source
// estimator to a destination estimator, either directly over a TCP socket
// or through a MeDICi pipeline relay.

#include <vector>

#include "medici/mw_client.hpp"
#include "medici/pipeline.hpp"
#include "util/timer.hpp"

namespace gridse::bench {

/// Time a direct TCP transfer of `size` bytes (paper's "w/o MeDICi" mode).
/// `link` paces the sender's uplink (unshaped = raw loopback).
inline double measure_direct(std::size_t size, const medici::NetModel& link) {
  medici::MwClient source(0);
  medici::MwClient destination(1);
  const std::vector<std::uint8_t> payload(size, 0x5a);
  Timer timer;
  source.send(destination.endpoint(), 1, payload, link);
  (void)destination.recv(0, 1);
  return timer.seconds();
}

/// Time a transfer through one MeDICi pipeline (paper's "w/ MeDICi" mode):
/// source -> pipeline inbound -> store-and-forward relay -> destination.
inline double measure_via_medici(std::size_t size,
                                 const medici::NetModel& link,
                                 const medici::NetModel& relay) {
  medici::MwClient source(0);
  medici::MwClient destination(1);
  medici::MifPipeline pipeline;
  pipeline.add_mif_connector(medici::EndpointProtocol::kTcp);
  medici::MifComponent& se = pipeline.add_mif_component("SESocket");
  se.set_in_name_endpoint("tcp://127.0.0.1:0");
  se.set_out_hal_endpoint(destination.endpoint().to_string());
  pipeline.set_relay_model(relay);
  pipeline.start();

  const std::vector<std::uint8_t> payload(size, 0xa5);
  Timer timer;
  source.send(se.inbound(), 1, payload, link);
  (void)destination.recv(0, 1);
  const double seconds = timer.seconds();
  pipeline.stop();
  return seconds;
}

/// Effective end-to-end rate in bytes/second measured over one transfer.
inline double measured_rate(std::size_t size, double seconds) {
  return seconds > 0.0 ? static_cast<double>(size) / seconds : 0.0;
}

}  // namespace gridse::bench
