// Reproduces Table IV of the paper: "Performance Comparison between W/O
// MeDICi and W/ MeDICi for Data Communication Between a Linux Workstation
// and a HPC Cluster". The lab network segment is emulated by pacing the
// sender's uplink at the paper's measured ~115 MB/s (2 GB / 17.75 s); the
// relay is calibrated at the paper's ~0.4 GB/s (see DESIGN.md §2).
#include "bench_util.hpp"
#include "transfer_util.hpp"
#include "util/strings.hpp"

namespace {

using namespace gridse;

int run() {
  bench::print_header(
      "Table IV — w/o vs w/ MeDICi, workstation to HPC cluster",
      "The workstation-to-cluster network path is emulated at the paper's\n"
      "measured GigE rate (~115 MB/s); the MeDICi relay at ~0.4 GB/s.\n"
      "Paper reference rows: 100MB: 0.873 vs 1.256 s; 2GB: 17.75 vs 24.06 s.");

  const medici::NetModel gige = medici::gige_network_model();
  const medici::NetModel relay = medici::medici_relay_model();

  // --- measured with shaped links, at scaled-down sizes ---------------------
  const std::size_t kMiB = 1024 * 1024;
  TextTable measured({"Data Size", "TCP direct T3 (s)", "w/ MeDICi T4 (s)",
                      "Abs. Overhead (s)", "paper-model T3"});
  for (const std::size_t mb : {16ull, 64ull, 128ull}) {
    const std::size_t size = mb * kMiB;
    const double t3 = bench::measure_direct(size, gige);
    const double t4 = bench::measure_via_medici(size, gige, relay);
    const double model_t3 = static_cast<double>(size) /
                            gige.bandwidth_bytes_per_sec;
    measured.add_row({format_bytes(size), bench::fmt_secs(t3),
                      bench::fmt_secs(t4), bench::fmt_secs(t4 - t3),
                      bench::fmt_secs(model_t3)});
  }
  std::printf("Measured with the emulated network (real sockets + pacing):\n");
  bench::print_table(measured);

  // --- paper-scale projection ------------------------------------------------
  TextTable projected({"Data Size", "T3 direct (s)", "T4 w/ MeDICi (s)",
                       "Abs. Overhead (s)", "paper T3", "paper T4"});
  struct PaperRow {
    double gb;
    const char* label;
    double t3;
    double t4;
  };
  const PaperRow paper[] = {{100.0 / 1024, "100MB", 0.872868, 1.255889},
                            {200.0 / 1024, "200MB", 1.743650, 2.430136},
                            {500.0 / 1024, "500MB", 4.399657, 6.133293},
                            {1.0, "1GB", 8.825293, 11.816114},
                            {2.0, "2GB", 17.754515, 24.058421}};
  for (const PaperRow& row : paper) {
    const double bytes = row.gb * 1024.0 * 1024.0 * 1024.0;
    const double t3 = bytes / gige.bandwidth_bytes_per_sec +
                      gige.latency_sec;
    const double t4 = t3 + bytes / relay.bandwidth_bytes_per_sec +
                      relay.latency_sec;
    projected.add_row({row.label, bench::fmt_secs(t3), bench::fmt_secs(t4),
                       bench::fmt_secs(t4 - t3), bench::fmt_secs(row.t3),
                       bench::fmt_secs(row.t4)});
  }
  std::printf("Projection at the paper's sizes (calibrated rates):\n");
  bench::print_table(projected);
  std::printf("Shape check: direct times are bandwidth-dominated; the "
              "relative MeDICi overhead matches the within-workstation\n"
              "scenario (same relay rate), as §V-B observes.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
