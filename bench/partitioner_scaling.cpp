// Ablation bench: the mapping method vs naive baselines as the power system
// decomposition grows ("the power systems will further expand in size and in
// complexity", §I). Compares the weighted partitioner against contiguous and
// random subsystem-to-cluster designations on edge cut and load balance, and
// reports partitioning wall time (the paper notes "partitioning is typically
// much faster than running state estimation computations").
#include "bench_util.hpp"
#include "decomp/decomposition.hpp"
#include "io/synthetic.hpp"
#include "mapping/mapper.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace {

using namespace gridse;

int run() {
  bench::print_header(
      "Ablation — mapping method vs naive designation at scale",
      "Synthetic interconnections of m subsystems (ring + chords, 12 buses\n"
      "each) mapped onto k clusters. cut = tie-line communication weight\n"
      "crossing clusters; imb = load-imbalance ratio.");

  TextTable t({"m", "k", "mapped cut", "mapped imb", "contig cut",
               "contig imb", "random cut", "random imb", "map time (ms)"});
  Rng rng(99);
  for (const int m : {9, 27, 64, 128, 256}) {
    for (const int k : {3, 8}) {
      if (k >= m) continue;
      const io::SyntheticSpec spec = io::make_ring_spec(m, 12, m / 3);
      const io::GeneratedCase generated = io::generate_synthetic(spec);
      decomp::Decomposition d = decomp::decompose(generated.kase.network,
                                                  generated.subsystem_of_bus);

      mapping::MappingOptions opts;
      opts.num_clusters = k;
      const mapping::ClusterMapper mapper(d, opts);
      Timer timer;
      const mapping::MappingResult mapped = mapper.map_before_step2(
          0.0, mapper.map_before_step1(0.0).partition.assignment);
      const double map_ms = timer.millis();

      const graph::WeightedGraph& g = mapped.weighted_graph;
      const auto contig = mapping::contiguous_mapping(m, k);
      const graph::Partition contigp = graph::evaluate_partition(
          g, std::vector<graph::PartId>(contig.begin(), contig.end()), k);

      std::vector<graph::PartId> random_assign(static_cast<std::size_t>(m));
      for (int s = 0; s < m; ++s) {
        random_assign[static_cast<std::size_t>(s)] =
            static_cast<graph::PartId>(s < k ? s : rng.uniform_int(0, k - 1));
      }
      const graph::Partition randomp =
          graph::evaluate_partition(g, random_assign, k);

      t.add_row({std::to_string(m), std::to_string(k),
                 strfmt("%.0f", mapped.partition.edge_cut),
                 strfmt("%.3f", mapped.partition.load_imbalance),
                 strfmt("%.0f", contigp.edge_cut),
                 strfmt("%.3f", contigp.load_imbalance),
                 strfmt("%.0f", randomp.edge_cut),
                 strfmt("%.3f", randomp.load_imbalance),
                 strfmt("%.2f", map_ms)});
    }
  }
  bench::print_table(t);
  std::printf(
      "Expected shape: mapped cut << random cut with imbalance near 1.0.\n"
      "(Contiguous designation is a strong baseline on ring topologies —\n"
      "arcs are near-optimal cuts — but it carries no balance guarantee\n"
      "once vertex weights vary; the mapping method optimizes both.)\n"
      "Mapping time stays far below a state-estimation cycle (paper §V-A).\n");
  return 0;
}

}  // namespace

int main() { return run(); }
