// Ablation bench: the mapping method vs naive baselines as the power system
// decomposition grows ("the power systems will further expand in size and in
// complexity", §I). Compares the weighted partitioner against contiguous and
// random subsystem-to-cluster designations on edge cut and load balance, and
// reports partitioning wall time (the paper notes "partitioning is typically
// much faster than running state estimation computations").
//
// A second sweep partitions the hierarchical scale tiers (ieee118 / 10k /
// 30k / 100k buses) at the bus level, checks thread-count determinism, and
// writes a gridse-partition-report/1 JSON consumed by tools/bench_gate.py
// as informational partition.<tier>.* keys (argv[1] = output path; no
// argument = report to stdout only).
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "decomp/bus_partition.hpp"
#include "decomp/decomposition.hpp"
#include "io/synthetic.hpp"
#include "mapping/mapper.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace {

using namespace gridse;

struct TierResult {
  std::string tier;
  int buses = 0;
  int k = 0;
  double time_ms = 0.0;
  double cut = 0.0;
  int boundary_buses = 0;
  double boundary_coupling = 0.0;
  double expected_gn = 0.0;
  double imbalance = 0.0;
  double speedup = 1.0;
  bool deterministic = true;
};

/// The 100k tier must finish within this bound — the bench exits nonzero
/// otherwise, which is what makes "completes under bench-gated time" a
/// smoke-testable property rather than a hope.
constexpr double kMaxTierSeconds = 120.0;

int run_tiers(const char* report_path) {
  bench::print_header(
      "Scale tiers — bus-level partitioning of hierarchical interconnections",
      "partition_buses() on the susceptance-coupling graph of each tier:\n"
      "wall time, edge cut, boundary buses, boundary coupling rho and the\n"
      "expected-GN-iteration score (arXiv 2104.04320). speedup = 1-thread\n"
      "time over hardware-thread time; assignments must be bit-identical\n"
      "regardless of thread count.");

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const struct {
    const char* name;
    int k;
  } kTiers[] = {{"ieee118", 3}, {"10k", 32}, {"30k", 32}, {"100k", 64}};

  std::vector<TierResult> results;
  bool ok = true;
  TextTable t({"tier", "buses", "k", "time (ms)", "cut", "bdry buses",
               "coupling", "exp GN", "imb", "speedup", "det"});
  for (const auto& tier : kTiers) {
    const io::GeneratedCase gc = bench::load_case(tier.name);
    graph::PartitionOptions popts;
    popts.k = tier.k;
    popts.seed = 7;
    popts.objective = graph::PartitionObjective::kConvergenceAware;

    popts.threads = 1;
    Timer timer;
    const std::vector<int> seq =
        decomp::partition_buses(gc.kase.network, popts);
    const double t1_ms = timer.millis();

    popts.threads = std::max(hw, 2);
    Timer timer_par;
    const std::vector<int> par =
        decomp::partition_buses(gc.kase.network, popts);
    const double tn_ms = timer_par.millis();

    const graph::WeightedGraph g = decomp::bus_coupling_graph(gc.kase.network);
    const graph::Partition p = graph::evaluate_partition(
        g, std::vector<graph::PartId>(seq.begin(), seq.end()), tier.k);

    TierResult r;
    r.tier = tier.name;
    r.buses = gc.kase.network.num_buses();
    r.k = tier.k;
    r.time_ms = tn_ms;
    r.cut = p.edge_cut;
    r.boundary_buses = p.boundary_vertices;
    r.boundary_coupling = p.boundary_coupling;
    r.expected_gn = p.expected_gn_iterations;
    r.imbalance = p.load_imbalance;
    r.speedup = tn_ms > 0.0 ? t1_ms / tn_ms : 1.0;
    r.deterministic = seq == par;
    results.push_back(r);

    if (!r.deterministic) {
      std::printf("FAIL: %s partition differs between 1 and %d threads\n",
                  tier.name, popts.threads);
      ok = false;
    }
    if (tn_ms > kMaxTierSeconds * 1e3 || t1_ms > kMaxTierSeconds * 1e3) {
      std::printf("FAIL: %s partition exceeded %.0fs\n", tier.name,
                  kMaxTierSeconds);
      ok = false;
    }
    t.add_row({r.tier, std::to_string(r.buses), std::to_string(r.k),
               strfmt("%.1f", r.time_ms), strfmt("%.1f", r.cut),
               std::to_string(r.boundary_buses),
               strfmt("%.4f", r.boundary_coupling),
               strfmt("%.2f", r.expected_gn),
               strfmt("%.3f", r.imbalance), strfmt("%.2f", r.speedup),
               r.deterministic ? "yes" : "NO"});
  }
  bench::print_table(t);
  std::printf("hardware threads: %d (speedup is informational; a 1-core\n"
              "runner legitimately reports ~1.0)\n",
              hw);

  if (report_path != nullptr) {
    FILE* f = std::fopen(report_path, "w");
    if (f == nullptr) {
      std::printf("FAIL: cannot write %s\n", report_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"gridse-partition-report/1\",\n"
                    "  \"tiers\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const TierResult& r = results[i];
      std::fprintf(
          f,
          "    {\"tier\": \"%s\", \"buses\": %d, \"k\": %d, "
          "\"time_ms\": %.3f, \"cut\": %.3f, \"boundary_buses\": %d, "
          "\"boundary_coupling\": %.6f, \"expected_gn_iterations\": %.3f, "
          "\"imbalance\": %.4f, \"speedup\": %.3f, \"deterministic\": %s}%s\n",
          r.tier.c_str(), r.buses, r.k, r.time_ms, r.cut, r.boundary_buses,
          r.boundary_coupling, r.expected_gn, r.imbalance, r.speedup,
          r.deterministic ? "true" : "false",
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", report_path);
  }
  return ok ? 0 : 1;
}

int run() {
  bench::print_header(
      "Ablation — mapping method vs naive designation at scale",
      "Synthetic interconnections of m subsystems (ring + chords, 12 buses\n"
      "each) mapped onto k clusters. cut = tie-line communication weight\n"
      "crossing clusters; imb = load-imbalance ratio.");

  TextTable t({"m", "k", "mapped cut", "mapped imb", "contig cut",
               "contig imb", "random cut", "random imb", "map time (ms)"});
  Rng rng(99);
  for (const int m : {9, 27, 64, 128, 256}) {
    for (const int k : {3, 8}) {
      if (k >= m) continue;
      const io::SyntheticSpec spec = io::make_ring_spec(m, 12, m / 3);
      const io::GeneratedCase generated = io::generate_synthetic(spec);
      decomp::Decomposition d = decomp::decompose(generated.kase.network,
                                                  generated.subsystem_of_bus);

      mapping::MappingOptions opts;
      opts.num_clusters = k;
      const mapping::ClusterMapper mapper(d, opts);
      Timer timer;
      const mapping::MappingResult mapped = mapper.map_before_step2(
          0.0, mapper.map_before_step1(0.0).partition.assignment);
      const double map_ms = timer.millis();

      const graph::WeightedGraph& g = mapped.weighted_graph;
      const auto contig = mapping::contiguous_mapping(m, k);
      const graph::Partition contigp = graph::evaluate_partition(
          g, std::vector<graph::PartId>(contig.begin(), contig.end()), k);

      std::vector<graph::PartId> random_assign(static_cast<std::size_t>(m));
      for (int s = 0; s < m; ++s) {
        random_assign[static_cast<std::size_t>(s)] =
            static_cast<graph::PartId>(s < k ? s : rng.uniform_int(0, k - 1));
      }
      const graph::Partition randomp =
          graph::evaluate_partition(g, random_assign, k);

      t.add_row({std::to_string(m), std::to_string(k),
                 strfmt("%.0f", mapped.partition.edge_cut),
                 strfmt("%.3f", mapped.partition.load_imbalance),
                 strfmt("%.0f", contigp.edge_cut),
                 strfmt("%.3f", contigp.load_imbalance),
                 strfmt("%.0f", randomp.edge_cut),
                 strfmt("%.3f", randomp.load_imbalance),
                 strfmt("%.2f", map_ms)});
    }
  }
  bench::print_table(t);
  std::printf(
      "Expected shape: mapped cut << random cut with imbalance near 1.0.\n"
      "(Contiguous designation is a strong baseline on ring topologies —\n"
      "arcs are near-optimal cuts — but it carries no balance guarantee\n"
      "once vertex weights vary; the mapping method optimizes both.)\n"
      "Mapping time stays far below a state-estimation cycle (paper §V-A).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int ablation = run();
  const int tiers = run_tiers(argc > 1 ? argv[1] : nullptr);
  return ablation != 0 ? ablation : tiers;
}
