// Ablation bench: distributed state estimation (the paper's architecture)
// vs a centralized WLS on the same measurements — accuracy, wall time and
// communication volume, across transports and noise levels. Quantifies the
// paper's claim that distribution has low overhead because only pseudo
// measurements are exchanged.
#include "analysis/debug_sync.hpp"
#include "bench_util.hpp"
#include "core/architecture.hpp"
#include "runtime/inproc_comm.hpp"
#include "grid/powerflow.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace {

using namespace gridse;

const char* transport_name(core::Transport t) {
  switch (t) {
    case core::Transport::kInproc:
      return "inproc";
    case core::Transport::kTcp:
      return "tcp";
    case core::Transport::kMedici:
      return "medici";
    case core::Transport::kMediciDirect:
      return "direct-tcp";
  }
  return "?";
}

int run() {
  bench::print_header(
      "Ablation — DSE vs centralized state estimation (IEEE 118, 9 "
      "subsystems, 3 clusters)",
      "Accuracy against the true operating state, end-to-end wall time and\n"
      "bytes exchanged, for each transport; centralized WLS as reference.");

  TextTable t({"mode", "transport", "max |V| err (pu)", "max angle err (rad)",
               "time (ms)", "bytes exchanged"});

  // centralized reference (uses the same measurement frame as cycle 0)
  core::SystemConfig base_cfg;
  base_cfg.mapping.num_clusters = 3;
  {
    core::DseSystem sys(io::ieee118_dse(), base_cfg);
    (void)sys.run_cycle(0.0);
    Timer timer;
    const estimation::WlsResult central = sys.centralized_reference();
    const double ms = timer.millis();
    t.add_row({"centralized", "-",
               strfmt("%.2e", grid::max_vm_error(central.state, sys.true_state())),
               strfmt("%.2e",
                      grid::max_angle_error(central.state, sys.true_state())),
               strfmt("%.1f", ms), "0"});
  }

  for (const core::Transport transport :
       {core::Transport::kInproc, core::Transport::kTcp,
        core::Transport::kMediciDirect, core::Transport::kMedici}) {
    core::SystemConfig cfg = base_cfg;
    cfg.transport = transport;
    core::DseSystem sys(io::ieee118_dse(), cfg);
    const core::CycleReport rep = sys.run_cycle(0.0);
    t.add_row({"DSE", transport_name(transport),
               strfmt("%.2e", rep.max_vm_error),
               strfmt("%.2e", rep.max_angle_error),
               strfmt("%.1f", rep.dse.total_seconds * 1e3),
               std::to_string(rep.dse.bytes_sent)});
  }
  bench::print_table(t);

  // --- phase breakdown over the in-process transport -------------------------
  {
    core::DseSystem sys(io::ieee118_dse(), base_cfg);
    const core::CycleReport rep = sys.run_cycle(0.0);
    TextTable phases({"phase", "time (ms)"});
    phases.add_row({"DSE Step 1 (local WLS x9, 3 workers/cluster)",
                    strfmt("%.1f", rep.dse.step1_seconds * 1e3)});
    phases.add_row({"exchange (pseudo measurements + redistribution)",
                    strfmt("%.1f", rep.dse.exchange_seconds * 1e3)});
    phases.add_row({"DSE Step 2 (re-evaluation)",
                    strfmt("%.1f", rep.dse.step2_seconds * 1e3)});
    phases.add_row({"final combine",
                    strfmt("%.1f", rep.dse.combine_seconds * 1e3)});
    std::printf("Phase breakdown (inproc):\n");
    bench::print_table(phases);
  }

  // --- accuracy across noise levels ------------------------------------------
  TextTable noise({"noise level", "DSE max |V| err", "centralized max |V| err",
                   "ratio"});
  for (const double lvl : {0.5, 1.0, 2.0, 4.0}) {
    core::SystemConfig cfg = base_cfg;
    cfg.plan.noise_level = lvl;
    core::DseSystem sys(io::ieee118_dse(), cfg);
    const core::CycleReport rep = sys.run_cycle(0.0);
    const estimation::WlsResult central = sys.centralized_reference();
    const double dse_err = rep.max_vm_error;
    const double cen_err = grid::max_vm_error(central.state, sys.true_state());
    noise.add_row({strfmt("%.1f", lvl), strfmt("%.2e", dse_err),
                   strfmt("%.2e", cen_err),
                   strfmt("%.2f", cen_err > 0 ? dse_err / cen_err : 0.0)});
  }
  std::printf("Accuracy vs noise (DSE tracks the centralized estimator):\n");
  bench::print_table(noise);

  // --- bad data: plain vs robust local estimation ----------------------------
  {
    const io::GeneratedCase generated = io::ieee118_dse();
    decomp::Decomposition d = decomp::decompose(generated.kase.network,
                                                generated.subsystem_of_bus);
    decomp::analyze_sensitivity(generated.kase.network, d, {});
    const grid::PowerFlowResult pf =
        grid::solve_power_flow(generated.kase.network);
    grid::MeasurementPlan plan;
    for (const decomp::Subsystem& s : d.subsystems) {
      plan.pmu_buses.push_back(s.buses.front());
    }
    grid::MeasurementGenerator gen(generated.kase.network, plan);
    Rng rng(29);
    grid::MeasurementSet meas = gen.generate(pf.state, rng);
    // Gross errors in three flow channels (sensor failures).
    int corrupted = 0;
    for (std::size_t i = 0; i < meas.items.size() && corrupted < 3; i += 97) {
      if (meas.items[i].type == grid::MeasType::kPFlow) {
        meas.items[i].value += 0.8;
        ++corrupted;
      }
    }
    const std::vector<graph::PartId> assignment{0, 0, 0, 1, 1, 1, 2, 2, 2};
    TextTable robust_table({"local estimator", "max |V| err", "max angle err"});
    for (const bool robust : {false, true}) {
      core::DseOptions opts;
      opts.local.robust = robust;
      core::DseDriver driver(generated.kase.network, d, opts);
      runtime::InprocWorld world(3);
      analysis::Mutex mutex{"dse_vs_centralized::mutex"};
      core::DseResult res;
      world.run([&](runtime::Communicator& c) {
        core::DseResult r = driver.run(c, meas, assignment);
        if (c.rank() == 0) {
          analysis::LockGuard lock(mutex);
          res = std::move(r);
        }
      });
      robust_table.add_row({robust ? "Huber (IRLS)" : "plain WLS",
                            strfmt("%.2e", grid::max_vm_error(res.state, pf.state)),
                            strfmt("%.2e",
                                   grid::max_angle_error(res.state, pf.state))});
    }
    std::printf("Gross errors in 3 flow channels — robust local estimation "
                "bounds their influence:\n");
    bench::print_table(robust_table);
  }

  // --- hierarchical vs peer-to-peer ------------------------------------------
  {
    const io::GeneratedCase generated = io::ieee118_dse();
    decomp::Decomposition d = decomp::decompose(generated.kase.network,
                                                generated.subsystem_of_bus);
    decomp::analyze_sensitivity(generated.kase.network, d, {});
    const grid::PowerFlowResult pf =
        grid::solve_power_flow(generated.kase.network);
    grid::MeasurementPlan plan;
    for (const decomp::Subsystem& s : d.subsystems) {
      plan.pmu_buses.push_back(s.buses.front());
    }
    grid::MeasurementGenerator gen(generated.kase.network, plan);
    Rng rng(7);
    const grid::MeasurementSet meas = gen.generate(pf.state, rng);
    const std::vector<graph::PartId> assignment{0, 0, 0, 1, 1, 1, 2, 2, 2};

    core::HierarchicalDriver hier(generated.kase.network, d, {});
    runtime::InprocWorld world(3);
    analysis::Mutex mutex{"dse_vs_centralized::mutex"};
    core::HierarchicalResult hres;
    world.run([&](runtime::Communicator& c) {
      core::HierarchicalResult r = hier.run(c, meas, assignment);
      if (c.rank() == 0) {
        analysis::LockGuard lock(mutex);
        hres = std::move(r);
      }
    });
    TextTable modes({"structure", "max |V| err", "time (ms)", "bytes"});
    modes.add_row({"hierarchical (coordinator)",
                   strfmt("%.2e", grid::max_vm_error(hres.state, pf.state)),
                   strfmt("%.1f", hres.total_seconds * 1e3),
                   std::to_string(hres.bytes_sent)});
    core::DseDriver dse(generated.kase.network, d, {});
    core::DseResult dres;
    runtime::InprocWorld world2(3);
    world2.run([&](runtime::Communicator& c) {
      core::DseResult r = dse.run(c, meas, assignment);
      if (c.rank() == 0) {
        analysis::LockGuard lock(mutex);
        dres = std::move(r);
      }
    });
    modes.add_row({"peer-to-peer DSE",
                   strfmt("%.2e", grid::max_vm_error(dres.state, pf.state)),
                   strfmt("%.1f", dres.total_seconds * 1e3),
                   std::to_string(dres.bytes_sent)});
    std::printf("Hierarchical vs decentralized structure (both supported by "
                "the architecture, §IV-A):\n");
    bench::print_table(modes);
  }
  return 0;
}

}  // namespace

int main() { return run(); }
