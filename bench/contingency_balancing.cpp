// Ablation bench: counter-based dynamic load balancing vs static
// pre-partitioning for massive contingency analysis — the workload of the
// paper's reference [2] (Chen, Huang, Chavarría-Miranda: "Performance
// evaluation of counter-based dynamic load balancing schemes for massive
// contingency analysis"), which is the downstream consumer of the DSE
// solution. Contingency costs are heterogeneous (islanding checks are cheap,
// full DC re-solves are not), so static splits leave clusters idle.

#include "analysis/debug_sync.hpp"
#include "apps/balancer.hpp"
#include "apps/contingency.hpp"
#include "bench_util.hpp"
#include "io/synthetic.hpp"
#include "runtime/inproc_comm.hpp"
#include "util/strings.hpp"

namespace {

using namespace gridse;

volatile double g_sink = 0.0;
void benchmark_keep(double v) { g_sink = g_sink + v; }

struct RunResult {
  double makespan = 0.0;
  double busy_min = 0.0;
  double busy_max = 0.0;
  std::vector<int> per_rank;
};

template <typename Runner>
RunResult run_mode(const grid::Network& network, int ranks, int repeat,
                   const Runner& runner) {
  runtime::InprocWorld world(ranks);
  analysis::Mutex mutex{"contingency_balancing::mutex"};
  RunResult result;
  result.per_rank.assign(static_cast<std::size_t>(ranks), 0);
  result.busy_min = 1e30;
  const int tasks = static_cast<int>(network.num_branches());
  world.run([&](runtime::Communicator& c) {
    const apps::BalanceStats stats = runner(c, tasks, [&](int t) {
      // `repeat` inflates per-task cost so scheduling effects dominate
      // the (fast) 118-bus DC solves.
      for (int r = 0; r < repeat; ++r) {
        const apps::ContingencyOutcome outcome = apps::evaluate_contingency(
            network, static_cast<std::size_t>(t));
        benchmark_keep(outcome.worst_loading);
      }
    });
    analysis::LockGuard lock(mutex);
    result.makespan = std::max(result.makespan, stats.total_seconds);
    result.busy_min = std::min(result.busy_min, stats.busy_seconds);
    result.busy_max = std::max(result.busy_max, stats.busy_seconds);
    result.per_rank[static_cast<std::size_t>(c.rank())] = stats.tasks_executed;
  });
  return result;
}

int run() {
  bench::print_header(
      "Ablation — contingency analysis load balancing (paper ref. [2])",
      "N-1 screening of the 118-bus system distributed over simulated\n"
      "clusters: static pre-partitioning vs the counter-based dynamic\n"
      "scheme (rank 0 serves the shared task counter).");

  io::GeneratedCase generated = io::ieee118_dse();
  grid::assign_ratings_from_base_case(generated.kase.network, 1.2, 0.1);
  const grid::Network& network = generated.kase.network;

  // Sequential report for reference.
  const apps::ContingencyReport report = apps::screen_all_branches(network);
  std::printf("N-1 cases: %zu | insecure: %d (islanding: %d)\n\n",
              report.outcomes.size(), report.insecure_cases,
              report.islanding_cases);

  TextTable t({"ranks", "mode", "makespan (ms)", "busy min/max (ms)",
               "tasks per rank"});
  for (const int ranks : {2, 4, 8}) {
    const int repeat = 20;
    const RunResult stat = run_mode(
        network, ranks, repeat,
        [](runtime::Communicator& c, int n, const apps::TaskFn& fn) {
          return apps::run_static(c, n, fn);
        });
    const RunResult dyn = run_mode(
        network, ranks, repeat,
        [](runtime::Communicator& c, int n, const apps::TaskFn& fn) {
          return apps::run_dynamic(c, n, fn);
        });
    const auto fmt_counts = [](const std::vector<int>& counts) {
      std::string s;
      for (const int c : counts) {
        if (!s.empty()) s += "/";
        s += std::to_string(c);
      }
      return s;
    };
    t.add_row({std::to_string(ranks), "static",
               strfmt("%.1f", stat.makespan * 1e3),
               strfmt("%.1f / %.1f", stat.busy_min * 1e3, stat.busy_max * 1e3),
               fmt_counts(stat.per_rank)});
    t.add_row({std::to_string(ranks), "dynamic",
               strfmt("%.1f", dyn.makespan * 1e3),
               strfmt("%.1f / %.1f", dyn.busy_min * 1e3, dyn.busy_max * 1e3),
               fmt_counts(dyn.per_rank)});
  }
  bench::print_table(t);
  std::printf("Expected shape (per ref. [2]): dynamic balancing narrows the\n"
              "busy-time spread across ranks; with heterogeneous task costs\n"
              "its makespan beats the static split despite sacrificing rank\n"
              "0 to the counter.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
