// Scenario bench: the testing scenarios of Bose et al. (the paper's related
// work [6]) that §III says this architecture accommodates:
//   (a) the TYPE of data communicated between estimators,
//   (b) FAILURE at the network connection,
//   (c) the PARTITION of the network topology (decomposition granularity).

#include "analysis/debug_sync.hpp"
#include "bench_util.hpp"
#include "core/dse_driver.hpp"
#include "decomp/sensitivity.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/synthetic.hpp"
#include "runtime/inproc_comm.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace gridse;

struct Scenario {
  io::GeneratedCase generated;
  decomp::Decomposition d;
  grid::PowerFlowResult pf;
  grid::MeasurementSet meas;
};

Scenario make_scenario(io::GeneratedCase generated, int sensitivity_hops,
                       std::uint64_t seed) {
  Scenario s{std::move(generated), {}, {}, {}};
  s.d = decomp::decompose(s.generated.kase.network,
                          s.generated.subsystem_of_bus);
  decomp::SensitivityOptions sopts;
  sopts.hops = sensitivity_hops;
  decomp::analyze_sensitivity(s.generated.kase.network, s.d, sopts);
  s.pf = grid::solve_power_flow(s.generated.kase.network);
  grid::MeasurementPlan plan;
  for (const decomp::Subsystem& sub : s.d.subsystems) {
    plan.pmu_buses.push_back(sub.buses.front());
  }
  grid::MeasurementGenerator gen(s.generated.kase.network, plan);
  Rng rng(seed);
  s.meas = gen.generate(s.pf.state, rng);
  return s;
}

struct Outcome {
  double vm_err = 0.0;
  double angle_err = 0.0;
  std::size_t bytes = 0;
  bool converged = false;
};

Outcome run_dse(const Scenario& s, int clusters) {
  core::DseDriver driver(s.generated.kase.network, s.d, {});
  std::vector<graph::PartId> assignment(
      static_cast<std::size_t>(s.d.num_subsystems()));
  for (int i = 0; i < s.d.num_subsystems(); ++i) {
    assignment[static_cast<std::size_t>(i)] =
        static_cast<graph::PartId>(i % clusters);
  }
  runtime::InprocWorld world(clusters);
  analysis::Mutex mutex{"scenarios::mutex"};
  Outcome out;
  world.run([&](runtime::Communicator& c) {
    const core::DseResult r = driver.run(c, s.meas, assignment);
    if (c.rank() == 0) {
      analysis::LockGuard lock(mutex);
      out.vm_err = grid::max_vm_error(r.state, s.pf.state);
      out.angle_err = grid::max_angle_error(r.state, s.pf.state);
      out.bytes = r.bytes_sent;
      out.converged = r.all_converged;
    }
  });
  return out;
}

int run() {
  bench::print_header(
      "Scenario sweep — data types, link failure, decomposition granularity",
      "The testing scenarios of the paper's related work [6], exercised on\n"
      "this architecture.");

  // --- (a) type of data communicated ----------------------------------------
  {
    TextTable t({"data exchanged in Step 2", "max |V| err", "max angle err",
                 "bytes"});
    // boundary + sensitive internal (hops=1, the paper's configuration)
    const Scenario full = make_scenario(io::ieee118_dse(), 1, 5);
    const Outcome of = run_dse(full, 3);
    t.add_row({"boundary + sensitive internal (paper)",
               strfmt("%.2e", of.vm_err), strfmt("%.2e", of.angle_err),
               std::to_string(of.bytes)});
    // boundary only (hops=0: no sensitive internal buses)
    const Scenario thin = make_scenario(io::ieee118_dse(), 0, 5);
    const Outcome ot = run_dse(thin, 3);
    t.add_row({"boundary buses only", strfmt("%.2e", ot.vm_err),
               strfmt("%.2e", ot.angle_err), std::to_string(ot.bytes)});
    // two-hop sensitivity (richer exchange)
    const Scenario rich = make_scenario(io::ieee118_dse(), 2, 5);
    const Outcome orich = run_dse(rich, 3);
    t.add_row({"boundary + 2-hop sensitive", strfmt("%.2e", orich.vm_err),
               strfmt("%.2e", orich.angle_err), std::to_string(orich.bytes)});
    std::printf("(a) Data communicated between estimators:\n");
    bench::print_table(t);
  }

  // --- (b) failure at the network connection --------------------------------
  {
    const Scenario s = make_scenario(io::ieee118_dse(), 1, 5);
    // Baseline Step-1/Step-2 per subsystem, then re-run subsystem 4's Step 2
    // with the link to each neighbour cut (its pseudo measurements lost).
    std::vector<std::unique_ptr<core::LocalEstimator>> ests;
    for (int i = 0; i < s.d.num_subsystems(); ++i) {
      ests.push_back(std::make_unique<core::LocalEstimator>(
          s.generated.kase.network, s.d, i, core::LocalEstimatorOptions{}));
      ests.back()->run_step1(s.meas);
    }
    const int victim = 4;  // subsystem 5: the best-connected one (Fig. 3)
    const auto boundary_err = [&](const std::vector<core::BusStateRecord>& recs) {
      ests[victim]->run_step2(s.meas, recs);
      double err = 0.0;
      for (const core::BusStateRecord& rec : ests[victim]->final_states()) {
        err = std::max(err, std::abs(rec.vm - s.pf.state.vm[static_cast<std::size_t>(
                                                  rec.bus)]));
      }
      return err;
    };
    std::vector<core::BusStateRecord> all_records;
    for (const int nbr : s.d.neighbors_of(victim)) {
      const auto recs = ests[static_cast<std::size_t>(nbr)]
                            ->step1_boundary_states();
      all_records.insert(all_records.end(), recs.begin(), recs.end());
    }
    TextTable t({"links up", "subsystem-5 max |V| err"});
    t.add_row({"all neighbours", strfmt("%.2e", boundary_err(all_records))});
    // drop one neighbour at a time
    for (const int lost : s.d.neighbors_of(victim)) {
      std::vector<core::BusStateRecord> partial;
      for (const int nbr : s.d.neighbors_of(victim)) {
        if (nbr == lost) continue;
        const auto recs = ests[static_cast<std::size_t>(nbr)]
                              ->step1_boundary_states();
        partial.insert(partial.end(), recs.begin(), recs.end());
      }
      t.add_row({"link to subsystem " + std::to_string(lost + 1) + " DOWN",
                 strfmt("%.2e", boundary_err(partial))});
    }
    // total communication blackout: Step 2 degenerates toward Step 1
    t.add_row({"all links DOWN", strfmt("%.2e", boundary_err({}))});
    std::printf("(b) Failure at the network connection (graceful "
                "degradation, no crash):\n");
    bench::print_table(t);
  }

  // --- (c) partition of the network topology --------------------------------
  {
    TextTable t({"decomposition", "subsystems", "diameter", "max |V| err",
                 "bytes"});
    struct Variant {
      const char* label;
      io::SyntheticSpec spec;
    };
    std::vector<Variant> variants;
    variants.push_back({"coarse: 4 x 30 buses",
                        io::make_ring_spec(4, 30, 1, 77)});
    variants.push_back({"paper-like: 9 x 13 buses",
                        io::make_ring_spec(9, 13, 3, 77)});
    variants.push_back({"fine: 18 x 7 buses",
                        io::make_ring_spec(18, 7, 6, 77)});
    for (const Variant& v : variants) {
      const Scenario s = make_scenario(io::generate_synthetic(v.spec), 1, 9);
      const Outcome o = run_dse(s, 3);
      t.add_row({v.label, std::to_string(s.d.num_subsystems()),
                 std::to_string(s.d.decomposition_graph().diameter()),
                 strfmt("%.2e", o.vm_err), std::to_string(o.bytes)});
    }
    std::printf("(c) Decomposition granularity (similar total size, varying "
                "partition):\n");
    bench::print_table(t);
  }
  return 0;
}

}  // namespace

int main() { return run(); }
