// Ablation bench (google-benchmark): the linear-solver choice inside the
// WLS gain-matrix solve — the paper's §IV-C motivates the preconditioned CG
// ("the condition number of  is significantly lower than that of A, to make
// the equation converge faster"). Compares PCG preconditioners and the
// direct LDLt baseline on real gain matrices from the IEEE 14/118 systems,
// and reports the condition-number effect.
#include <benchmark/benchmark.h>

#include "estimation/wls.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/case14.hpp"
#include "io/synthetic.hpp"
#include "sparse/cg.hpp"
#include "sparse/dense.hpp"
#include "sparse/ldlt.hpp"
#include "sparse/normal_equations.hpp"
#include "sparse/vector_ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace gridse;

struct GainSystem {
  sparse::Csr gain;
  std::vector<double> rhs;
};

/// Build the flat-start WLS gain system for a case.
GainSystem make_gain(const grid::Network& network) {
  const grid::PowerFlowResult pf = grid::solve_power_flow(network);
  grid::MeasurementGenerator gen(network, {});
  Rng rng(11);
  const grid::MeasurementSet set = gen.generate(pf.state, rng);
  const grid::StateIndex index(network.num_buses(), network.slack_bus());
  const grid::MeasurementModel model(network, index);
  const grid::GridState flat(network.num_buses());
  const sparse::Csr h = model.jacobian(set, flat);
  const std::vector<double> w = set.weights();
  GainSystem sys;
  sys.gain = sparse::normal_matrix(h, w);
  const std::vector<double> r = sparse::subtract(set.values(),
                                                 model.evaluate(set, flat));
  sys.rhs = sparse::normal_rhs(h, w, r);
  return sys;
}

const GainSystem& gain14() {
  static const GainSystem sys = make_gain(io::ieee14().network);
  return sys;
}

const GainSystem& gain118() {
  static const GainSystem sys = make_gain(io::ieee118_dse().kase.network);
  return sys;
}

const GainSystem& gain_wecc() {
  static const GainSystem sys = make_gain(io::wecc37().kase.network);
  return sys;
}

void bench_pcg(benchmark::State& state, const GainSystem& sys,
               sparse::PreconditionerKind kind) {
  int iterations = 0;
  for (auto _ : state) {
    const auto precond = sparse::make_preconditioner(kind, sys.gain);
    std::vector<double> x(sys.rhs.size(), 0.0);
    const sparse::CgReport rep = sparse::pcg(sys.gain, sys.rhs, x, *precond);
    iterations = rep.iterations;
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["cg_iters"] = iterations;
}

void bench_ldlt(benchmark::State& state, const GainSystem& sys) {
  for (auto _ : state) {
    sparse::SparseLdlt ldlt;
    ldlt.factorize(sys.gain);
    auto x = ldlt.solve(sys.rhs);
    benchmark::DoNotOptimize(x.data());
  }
}

void BM_Pcg14_None(benchmark::State& s) {
  bench_pcg(s, gain14(), sparse::PreconditionerKind::kNone);
}
void BM_Pcg14_Jacobi(benchmark::State& s) {
  bench_pcg(s, gain14(), sparse::PreconditionerKind::kJacobi);
}
void BM_Pcg14_Ssor(benchmark::State& s) {
  bench_pcg(s, gain14(), sparse::PreconditionerKind::kSsor);
}
void BM_Pcg14_Ic0(benchmark::State& s) {
  bench_pcg(s, gain14(), sparse::PreconditionerKind::kIc0);
}
void BM_Ldlt14(benchmark::State& s) { bench_ldlt(s, gain14()); }
void BM_Pcg118_None(benchmark::State& s) {
  bench_pcg(s, gain118(), sparse::PreconditionerKind::kNone);
}
void BM_Pcg118_Jacobi(benchmark::State& s) {
  bench_pcg(s, gain118(), sparse::PreconditionerKind::kJacobi);
}
void BM_Pcg118_Ssor(benchmark::State& s) {
  bench_pcg(s, gain118(), sparse::PreconditionerKind::kSsor);
}
void BM_Pcg118_Ic0(benchmark::State& s) {
  bench_pcg(s, gain118(), sparse::PreconditionerKind::kIc0);
}
void BM_Ldlt118(benchmark::State& s) { bench_ldlt(s, gain118()); }
void BM_PcgWecc_Ic0(benchmark::State& s) {
  bench_pcg(s, gain_wecc(), sparse::PreconditionerKind::kIc0);
}
void BM_PcgWecc_None(benchmark::State& s) {
  bench_pcg(s, gain_wecc(), sparse::PreconditionerKind::kNone);
}
void BM_LdltWecc(benchmark::State& s) { bench_ldlt(s, gain_wecc()); }

BENCHMARK(BM_Pcg14_None);
BENCHMARK(BM_Pcg14_Jacobi);
BENCHMARK(BM_Pcg14_Ssor);
BENCHMARK(BM_Pcg14_Ic0);
BENCHMARK(BM_Ldlt14);
BENCHMARK(BM_Pcg118_None);
BENCHMARK(BM_Pcg118_Jacobi);
BENCHMARK(BM_Pcg118_Ssor);
BENCHMARK(BM_Pcg118_Ic0);
BENCHMARK(BM_Ldlt118);
BENCHMARK(BM_PcgWecc_None);
BENCHMARK(BM_PcgWecc_Ic0);
BENCHMARK(BM_LdltWecc);

/// Full WLS estimation, PCG(IC0) vs LDLt, IEEE 118.
void BM_Wls118(benchmark::State& state, estimation::LinearSolver solver) {
  static const io::GeneratedCase generated = io::ieee118_dse();
  static const grid::PowerFlowResult pf =
      grid::solve_power_flow(generated.kase.network);
  static const grid::MeasurementSet meas = [] {
    grid::MeasurementGenerator gen(generated.kase.network, {});
    Rng rng(5);
    return gen.generate(pf.state, rng);
  }();
  estimation::WlsOptions opts;
  opts.solver = solver;
  // One estimator reused across iterations: after the first estimate() its
  // SolverCache holds the symbolic plans, so this measures the
  // repeated-cycle fast path (numeric-only refactorization).
  const estimation::WlsEstimator est(generated.kase.network, opts);
  int gn_iters = 0;
  for (auto _ : state) {
    auto result = est.estimate(meas);
    gn_iters = result.iterations;
    benchmark::DoNotOptimize(result.objective);
  }
  state.counters["gn_iters"] = gn_iters;
}
void BM_Wls118_Pcg(benchmark::State& s) {
  BM_Wls118(s, estimation::LinearSolver::kPcg);
}
void BM_Wls118_Ldlt(benchmark::State& s) {
  BM_Wls118(s, estimation::LinearSolver::kLdlt);
}
BENCHMARK(BM_Wls118_Pcg)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Wls118_Ldlt)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Condition-number report motivating the preconditioner (paper §IV-C).
  {
    const GainSystem& sys = gain14();
    const auto dense_vals = sys.gain.to_dense();
    const auto n = static_cast<std::size_t>(sys.gain.rows());
    sparse::DenseMatrix dm(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        dm(i, j) = dense_vals[i * n + j];
      }
    }
    std::printf("IEEE 14 gain-matrix condition estimate: %.3e\n",
                dm.condition_estimate_spd());
    // After Jacobi preconditioning: D^{-1/2} G D^{-1/2}
    const auto diag = sys.gain.diagonal();
    sparse::DenseMatrix scaled(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        scaled(i, j) = dense_vals[i * n + j] /
                       std::sqrt(diag[i] * diag[j]);
      }
    }
    std::printf("after Jacobi scaling:                   %.3e "
                "(the paper's \"significantly lower\" condition number)\n\n",
                scaled.condition_estimate_spd());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
