// TSan-targeted stress for the MeDICi relay: concurrent upstream senders,
// store-and-forward workers, and a consumer draining the downstream client,
// with stop() racing live traffic. Complements relay_failure_test.cpp, which
// covers the failure paths one at a time.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "medici/mw_client.hpp"
#include "medici/pipeline.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace gridse::medici {
namespace {

class RouterStressTest : public ::testing::Test {
 protected:
  void SetUp() override { log::set_level(log::Level::kOff); }
  void TearDown() override { log::set_level(log::Level::kWarn); }
};

TEST_F(RouterStressTest, ConcurrentSendersThroughOneRelay) {
  MwClient destination(99);
  MifPipeline pipeline;
  pipeline.add_mif_connector(EndpointProtocol::kTcp);
  MifComponent& se = pipeline.add_mif_component("SE");
  se.set_in_name_endpoint("tcp://127.0.0.1:0");
  se.set_out_hal_endpoint(destination.endpoint().to_string());
  pipeline.set_relay_model(unshaped_model());
  pipeline.start();

  constexpr int kSenders = 4;
  constexpr int kEach = 25;
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([s, inbound = se.inbound()] {
      MwClient sender(s);
      for (int i = 0; i < kEach; ++i) {
        sender.send(inbound, /*tag=*/1,
                    std::vector<std::uint8_t>{static_cast<std::uint8_t>(s),
                                              static_cast<std::uint8_t>(i)});
      }
    });
  }
  // Drain concurrently with the senders, not after them.
  std::vector<int> per_source(kSenders, 0);
  for (int i = 0; i < kSenders * kEach; ++i) {
    const auto m = destination.recv_for(runtime::kAnySource, 1,
                                        std::chrono::seconds(30));
    ASSERT_TRUE(m.has_value()) << "relay lost a message";
    ASSERT_LT(m->source, kSenders);
    EXPECT_EQ(m->payload[0], static_cast<std::uint8_t>(m->source));
    ++per_source[static_cast<std::size_t>(m->source)];
  }
  for (auto& t : senders) t.join();
  for (int s = 0; s < kSenders; ++s) {
    EXPECT_EQ(per_source[static_cast<std::size_t>(s)], kEach);
  }
}

TEST_F(RouterStressTest, StopRacesActiveTraffic) {
  MwClient destination(1);
  MifPipeline pipeline;
  pipeline.add_mif_connector(EndpointProtocol::kTcp);
  MifComponent& se = pipeline.add_mif_component("SE");
  se.set_in_name_endpoint("tcp://127.0.0.1:0");
  se.set_out_hal_endpoint(destination.endpoint().to_string());
  pipeline.set_relay_model(unshaped_model());
  pipeline.start();

  std::atomic<bool> stop{false};
  std::thread sender([&stop, inbound = se.inbound()] {
    MwClient src(0);
    for (std::uint8_t i = 0; !stop.load(); ++i) {
      try {
        src.send(inbound, 1, std::vector<std::uint8_t>{i});
      } catch (const CommError&) {
        return;  // relay went away mid-send: expected during stop
      }
    }
  });
  std::thread consumer([&stop, &destination] {
    while (!stop.load()) {
      (void)destination.recv_for(runtime::kAnySource, runtime::kAnyTag,
                                 std::chrono::milliseconds(5));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  pipeline.stop();  // races in-flight frames; must join cleanly, not hang
  stop.store(true);
  sender.join();
  consumer.join();
  SUCCEED();
}

}  // namespace
}  // namespace gridse::medici
