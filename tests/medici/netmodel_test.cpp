#include "medici/netmodel.hpp"

#include <gtest/gtest.h>

#include "util/timer.hpp"

namespace gridse::medici {
namespace {

TEST(NetModel, CalibratedModelsMatchPaperRates) {
  const NetModel gige = gige_network_model();
  EXPECT_NEAR(gige.bandwidth_bytes_per_sec / (1024.0 * 1024.0), 115.0, 1.0);
  const NetModel relay = medici_relay_model();
  EXPECT_NEAR(relay.bandwidth_bytes_per_sec / (1024.0 * 1024.0 * 1024.0), 0.4,
              0.01);
  EXPECT_TRUE(unshaped_model().is_unshaped());
  EXPECT_FALSE(gige.is_unshaped());
}

TEST(Pacer, UnshapedNeverSleeps) {
  Pacer pacer(unshaped_model());
  Timer t;
  for (int i = 0; i < 1000; ++i) {
    pacer.pace(1 << 20);
  }
  EXPECT_LT(t.millis(), 50.0);
}

TEST(Pacer, EnforcesBandwidth) {
  // 10 MB at 100 MB/s must take >= ~100 ms.
  NetModel model;
  model.bandwidth_bytes_per_sec = 100.0 * 1024 * 1024;
  Pacer pacer(model);
  Timer t;
  const std::size_t chunk = 256 * 1024;
  for (std::size_t sent = 0; sent < 10ull * 1024 * 1024; sent += chunk) {
    pacer.pace(chunk);
  }
  const double expected = 10.0 / 100.0;  // seconds
  EXPECT_GE(t.seconds(), expected * 0.9);
  EXPECT_LE(t.seconds(), expected * 1.8);
}

TEST(Pacer, LatencyChargedOnce) {
  NetModel model;
  model.latency_sec = 0.05;
  Pacer pacer(model);
  Timer t;
  pacer.pace(10);
  EXPECT_GE(t.seconds(), 0.045);
  const double after_first = t.seconds();
  pacer.pace(10);
  pacer.pace(10);
  EXPECT_LT(t.seconds() - after_first, 0.02);
}

}  // namespace
}  // namespace gridse::medici
