// Round-trip and robustness tests for the v2 wire format (medici/wire.hpp):
// fuzz-style encode/decode over random payload sizes (including empty and
// larger than 64 KiB), truncation rejection at every boundary, the optional
// trace-context block, and bidirectional interop with legacy v1 framing.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "medici/wire.hpp"
#include "runtime/socket.hpp"
#include "runtime/trace_context.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gridse::medici {
namespace {

std::vector<std::uint8_t> random_payload(Rng& rng, std::size_t size) {
  std::vector<std::uint8_t> payload(size);
  for (auto& b : payload) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return payload;
}

runtime::TraceContext make_context(Rng& rng) {
  runtime::TraceContext ctx;
  ctx.trace_hi = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
  ctx.trace_lo =
      static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));  // nonzero
  ctx.span_id = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
  ctx.parent_id = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
  ctx.clock = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
  return ctx;
}

TEST(WireTest, FuzzRoundTripRandomSizesWithAndWithoutTrace) {
  Rng rng(2012);
  // Deliberate edge sizes first, then random ones — including > 64 KiB and
  // beyond the chunking size so multi-chunk paths are exercised.
  std::vector<std::size_t> sizes = {0, 1, 15, 16, 17, 65 * 1024,
                                    kWireChunk + 123};
  for (int i = 0; i < 40; ++i) {
    sizes.push_back(static_cast<std::size_t>(rng.uniform_int(0, 1 << 17)));
  }
  for (const std::size_t size : sizes) {
    const auto payload = random_payload(rng, size);
    const bool with_trace = rng.bernoulli(0.5);
    const runtime::TraceContext ctx = make_context(rng);
    const auto source = static_cast<std::int32_t>(rng.uniform_int(0, 64));
    const auto tag = static_cast<std::int32_t>(rng.uniform_int(0, 1 << 16));

    const std::vector<std::uint8_t> bytes =
        encode_frame(source, tag, payload, with_trace ? &ctx : nullptr);
    WireFrame frame;
    const std::size_t consumed = decode_frame(bytes, frame);

    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(frame.source, source);
    EXPECT_EQ(frame.tag, tag);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(frame.has_trace, with_trace);
    if (with_trace) {
      EXPECT_EQ(frame.trace, ctx);
    } else {
      EXPECT_FALSE(frame.trace.valid());
    }
  }
}

TEST(WireTest, DecodeRejectsTruncationAtEveryBoundary) {
  Rng rng(7);
  const auto payload = random_payload(rng, 100);
  const runtime::TraceContext ctx = make_context(rng);
  const std::vector<std::uint8_t> bytes = encode_frame(3, 42, payload, &ctx);
  ASSERT_EQ(bytes.size(), sizeof(WireHeader) + kWireTraceSize + 100);

  WireFrame frame;
  // Every strict prefix must throw: inside the header, inside the trace
  // block, and inside the payload.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{1}, sizeof(WireHeader) - 1,
        sizeof(WireHeader), sizeof(WireHeader) + kWireTraceSize - 1,
        sizeof(WireHeader) + kWireTraceSize, bytes.size() - 1}) {
    EXPECT_THROW(decode_frame(std::span(bytes.data(), cut), frame), CommError)
        << "prefix of " << cut << " bytes should be rejected";
  }
  EXPECT_EQ(decode_frame(bytes, frame), bytes.size());
}

TEST(WireTest, LegacyV1FramesParseAndV2ReaderSkipsFlag) {
  // Hand-assemble a v1 frame (no flag bit, no trace block) the way the
  // pre-v2 framing code did.
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const WireHeader header{payload.size(), 9, 77};
  std::vector<std::uint8_t> bytes(sizeof header + payload.size());
  std::memcpy(bytes.data(), &header, sizeof header);
  std::memcpy(bytes.data() + sizeof header, payload.data(), payload.size());

  WireFrame frame;
  EXPECT_EQ(decode_frame(bytes, frame), bytes.size());
  EXPECT_EQ(frame.source, 9);
  EXPECT_EQ(frame.tag, 77);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_FALSE(frame.has_trace);
  EXPECT_FALSE(frame.trace.valid());

  // And the other direction: an untraced v2 frame is byte-identical to v1.
  EXPECT_EQ(encode_frame(9, 77, payload, nullptr), bytes);
}

TEST(WireTest, FlagBitIsMaskedOutOfTheLength) {
  const std::vector<std::uint8_t> payload(17, 0xAB);
  runtime::TraceContext ctx;
  ctx.trace_lo = 0x1234;
  ctx.span_id = 5;
  const std::vector<std::uint8_t> bytes = encode_frame(0, 1, payload, &ctx);
  WireHeader header{};
  std::memcpy(&header, bytes.data(), sizeof header);
  EXPECT_NE(header.length & runtime::kTraceLengthFlag, 0u);
  EXPECT_EQ(header.length & runtime::kTraceLengthMask, payload.size());
}

TEST(WireTest, SocketRoundTripBothFramings) {
  std::uint16_t port = 0;
  runtime::Socket listener = runtime::Socket::listen_loopback(port);
  runtime::Socket client = runtime::Socket::connect_loopback(port);
  runtime::Socket server = listener.accept();

  Rng rng(11);
  const auto big = random_payload(rng, 70 * 1024);  // > 64 KiB
  const runtime::TraceContext ctx = make_context(rng);
  Pacer pacer(unshaped_model());

  std::thread writer([&] {
    write_frame(client, 1, 10, big, &ctx, pacer);
    write_frame(client, 2, 20, std::span<const std::uint8_t>{}, nullptr,
                pacer);
    client.close();  // orderly EOF ends the read loop
  });

  WireFrame frame;
  ASSERT_TRUE(read_frame(server, frame));
  EXPECT_EQ(frame.source, 1);
  EXPECT_EQ(frame.tag, 10);
  EXPECT_EQ(frame.payload, big);
  EXPECT_TRUE(frame.has_trace);
  EXPECT_EQ(frame.trace, ctx);

  ASSERT_TRUE(read_frame(server, frame));
  EXPECT_EQ(frame.source, 2);
  EXPECT_EQ(frame.tag, 20);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_FALSE(frame.has_trace);

  EXPECT_FALSE(read_frame(server, frame));  // orderly close
  writer.join();
}

TEST(WireFaultTest, EveryBitflipOfAnEncodedFrameIsRejectedOrParsedInBounds) {
  // Flip every bit of an encoded frame in turn. The decoder must never
  // crash, never read out of bounds, and never consume more bytes than it
  // was handed — corrupt frames are either rejected with CommError or parse
  // into some frame whose extent stays inside the buffer.
  Rng rng(31);
  const auto payload = random_payload(rng, 48);
  const runtime::TraceContext ctx = make_context(rng);
  const std::vector<std::uint8_t> clean = encode_frame(5, 9, payload, &ctx);

  for (std::size_t bit = 0; bit < clean.size() * 8; ++bit) {
    std::vector<std::uint8_t> corrupted = clean;
    corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    WireFrame frame;
    try {
      const std::size_t consumed = decode_frame(corrupted, frame);
      EXPECT_LE(consumed, corrupted.size()) << "bit " << bit;
      EXPECT_LE(frame.payload.size(), corrupted.size()) << "bit " << bit;
    } catch (const CommError&) {
      // Rejected — the expected outcome for header-length corruption.
    }
  }
}

TEST(WireFaultTest, InjectedBitflipCorruptsPayloadWithoutDesync) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "built with GRIDSE_FAULT=OFF";
  }
  // A bit-flip rule scoped to tag 10 corrupts exactly that frame's payload;
  // the stream framing survives and the following clean frame arrives
  // intact — corruption never desyncs the reader.
  fault::FaultPlan plan;
  plan.seed = 3;
  plan.rules.push_back({.site = "wire.write",
                        .action = fault::ActionKind::kBitFlip,
                        .tag_min = 10,
                        .tag_max = 10});
  fault::install(plan);

  std::uint16_t port = 0;
  runtime::Socket listener = runtime::Socket::listen_loopback(port);
  runtime::Socket client = runtime::Socket::connect_loopback(port);
  runtime::Socket server = listener.accept();

  Rng rng(17);
  const auto payload = random_payload(rng, 64);
  Pacer pacer(unshaped_model());
  std::thread writer([&] {
    write_frame(client, 1, 10, payload, nullptr, pacer);  // bit-flipped
    write_frame(client, 1, 20, payload, nullptr, pacer);  // clean
    client.close();
  });

  WireFrame frame;
  ASSERT_TRUE(read_frame(server, frame));
  EXPECT_EQ(frame.tag, 10);
  ASSERT_EQ(frame.payload.size(), payload.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    flipped_bits += __builtin_popcount(
        static_cast<unsigned>(frame.payload[i] ^ payload[i]));
  }
  EXPECT_EQ(flipped_bits, 1);  // exactly one corrupted bit, framing intact

  ASSERT_TRUE(read_frame(server, frame));
  EXPECT_EQ(frame.tag, 20);
  EXPECT_EQ(frame.payload, payload);  // the clean frame is untouched

  EXPECT_FALSE(read_frame(server, frame));
  writer.join();
  EXPECT_EQ(fault::injected_count(), 1u);
  fault::clear();
}

TEST(WireFaultTest, InjectedTruncationFailsSenderAndReaderRejectsCleanly) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "built with GRIDSE_FAULT=OFF";
  }
  // A truncated write sends a strict prefix and then fails the sender; the
  // reader observes a mid-frame stream end and rejects with CommError
  // instead of hanging or fabricating a frame.
  fault::FaultPlan plan;
  plan.seed = 8;
  plan.rules.push_back({.site = "wire.write",
                        .action = fault::ActionKind::kTruncate,
                        .max_injections = 1});
  fault::install(plan);

  std::uint16_t port = 0;
  runtime::Socket listener = runtime::Socket::listen_loopback(port);
  runtime::Socket client = runtime::Socket::connect_loopback(port);
  runtime::Socket server = listener.accept();

  Rng rng(23);
  const auto payload = random_payload(rng, 256);
  Pacer pacer(unshaped_model());
  EXPECT_THROW(write_frame(client, 2, 30, payload, nullptr, pacer),
               CommError);
  client.close();

  WireFrame frame;
  EXPECT_THROW((void)read_frame(server, frame), CommError);
  EXPECT_EQ(fault::injected_count(), 1u);
  fault::clear();
}

}  // namespace
}  // namespace gridse::medici
