#include "medici/medici_comm.hpp"

#include <gtest/gtest.h>

namespace gridse::medici {
namespace {

class MediciCommModes : public ::testing::TestWithParam<TransportMode> {};

TEST_P(MediciCommModes, RingExchangeWorks) {
  MediciWorld world(3, GetParam(), unshaped_model());
  world.run([](runtime::Communicator& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    c.send(next, 2, {static_cast<std::uint8_t>(c.rank())});
    const runtime::Message m = c.recv(prev, 2);
    EXPECT_EQ(m.payload[0], static_cast<std::uint8_t>(prev));
    c.barrier();
  });
}

TEST_P(MediciCommModes, SelectiveTagsAcrossWorld) {
  MediciWorld world(2, GetParam(), unshaped_model());
  world.run([](runtime::Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 100, {1});
      c.send(1, 200, {2});
    } else {
      EXPECT_EQ(c.recv(0, 200).payload[0], 2);
      EXPECT_EQ(c.recv(0, 100).payload[0], 1);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Modes, MediciCommModes,
                         ::testing::Values(TransportMode::kViaMiddleware,
                                           TransportMode::kDirectTcp),
                         [](const auto& param_info) {
                           return param_info.param == TransportMode::kViaMiddleware
                                      ? "middleware"
                                      : "direct";
                         });

TEST(MediciWorld, MiddlewareModeActuallyRelays) {
  MediciWorld world(2, TransportMode::kViaMiddleware, unshaped_model());
  world.run([](runtime::Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<std::uint8_t>(1000));
    } else {
      (void)c.recv(0, 1);
    }
    c.barrier();
  });
  EXPECT_GE(world.relay_stats().messages, 1u);
  EXPECT_GE(world.relay_stats().bytes, 1000u);
}

TEST(MediciWorld, DirectModeBypassesRelays) {
  MediciWorld world(2, TransportMode::kDirectTcp);
  world.run([](runtime::Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<std::uint8_t>(1000));
    } else {
      (void)c.recv(0, 1);
    }
    c.barrier();
  });
  EXPECT_EQ(world.relay_stats().messages, 0u);
}

TEST(MediciWorld, EveryEstimatorHasAUniqueUrl) {
  MediciWorld world(4, TransportMode::kDirectTcp);
  std::set<std::uint16_t> ports;
  for (int r = 0; r < 4; ++r) {
    ports.insert(world.endpoint_of(r).port);
  }
  EXPECT_EQ(ports.size(), 4u);
}

TEST(MediciWorld, BytesSentTracksPayloads) {
  MediciWorld world(2, TransportMode::kDirectTcp);
  world.run([](runtime::Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<std::uint8_t>(256));
      EXPECT_GE(c.bytes_sent(), 256u);
    } else {
      (void)c.recv(0, 1);
    }
    c.barrier();
  });
}

}  // namespace
}  // namespace gridse::medici
