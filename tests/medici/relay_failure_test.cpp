// Failure injection at the middleware layer: dead endpoints, vanished
// downstreams, and senders targeting nothing must degrade with clean errors
// — never hangs or crashes.
#include <gtest/gtest.h>

#include <thread>

#include "medici/mw_client.hpp"
#include "medici/pipeline.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace gridse::medici {
namespace {

class RelayFailureTest : public ::testing::Test {
 protected:
  void SetUp() override { log::set_level(log::Level::kOff); }
  void TearDown() override { log::set_level(log::Level::kWarn); }
};

TEST_F(RelayFailureTest, SendToDeadEndpointThrowsCommError) {
  EndpointUrl dead;
  {
    MwClient ghost(9);
    dead = ghost.endpoint();
  }  // ghost gone; port free but unbound
  MwClient sender(0);
  EXPECT_THROW(
      sender.send(dead, 1, std::vector<std::uint8_t>{1, 2, 3}),
      CommError);
}

TEST_F(RelayFailureTest, RelayToVanishedDownstreamDoesNotCrash) {
  // Pipeline whose outbound endpoint dies before the first message: the
  // relay worker must swallow the failure (logged) and the process must
  // stay healthy for other traffic.
  EndpointUrl doomed;
  {
    MwClient victim(1);
    doomed = victim.endpoint();
  }
  MifPipeline pipeline;
  pipeline.add_mif_connector(EndpointProtocol::kTcp);
  MifComponent& se = pipeline.add_mif_component("SE");
  se.set_in_name_endpoint("tcp://127.0.0.1:0");
  se.set_out_hal_endpoint(doomed.to_string());
  pipeline.set_relay_model(unshaped_model());
  pipeline.start();

  MwClient source(0);
  source.send(se.inbound(), 1, std::vector<std::uint8_t>{1});
  // give the relay a moment to hit the dead downstream
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // an unrelated healthy pipeline still works afterwards
  MwClient destination(2);
  MifPipeline healthy;
  healthy.add_mif_connector(EndpointProtocol::kTcp);
  MifComponent& ok = healthy.add_mif_component("SE2");
  ok.set_in_name_endpoint("tcp://127.0.0.1:0");
  ok.set_out_hal_endpoint(destination.endpoint().to_string());
  healthy.set_relay_model(unshaped_model());
  healthy.start();
  source.send(ok.inbound(), 2, std::vector<std::uint8_t>{9});
  EXPECT_EQ(destination.recv(0, 2).payload[0], 9);
}

TEST_F(RelayFailureTest, StopDuringActiveConnectionJoinsCleanly) {
  MwClient destination(1);
  MifPipeline pipeline;
  pipeline.add_mif_connector(EndpointProtocol::kTcp);
  MifComponent& se = pipeline.add_mif_component("SE");
  se.set_in_name_endpoint("tcp://127.0.0.1:0");
  se.set_out_hal_endpoint(destination.endpoint().to_string());
  pipeline.set_relay_model(unshaped_model());
  pipeline.start();

  MwClient source(0);
  source.send(se.inbound(), 1, std::vector<std::uint8_t>{1});
  (void)destination.recv(0, 1);
  // stop with the upstream connection still open: must not hang
  pipeline.stop();
  SUCCEED();
}

TEST_F(RelayFailureTest, ClientStopWhilePeerHoldsConnection) {
  MwClient sender(0);
  auto receiver = std::make_unique<MwClient>(1);
  sender.send(receiver->endpoint(), 1, std::vector<std::uint8_t>{1});
  (void)receiver->recv(0, 1);
  // receiver goes away while the sender still caches the connection
  receiver.reset();
  // sender can still be destroyed / stopped without issue
  sender.stop();
  SUCCEED();
}

}  // namespace
}  // namespace gridse::medici
