#include "medici/mw_client.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "fault/fault.hpp"
#include "runtime/resilience.hpp"
#include "util/error.hpp"

namespace gridse::medici {
namespace {

TEST(MwClient, HasUniqueUrl) {
  MwClient a(0);
  MwClient b(1);
  EXPECT_NE(a.endpoint().port, 0);
  EXPECT_NE(a.endpoint().port, b.endpoint().port);
  EXPECT_EQ(a.endpoint().protocol, "tcp");
}

TEST(MwClient, DirectSendRecv) {
  MwClient sender(0);
  MwClient receiver(1);
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  sender.send(receiver.endpoint(), /*tag=*/5, payload);
  const runtime::Message m = receiver.recv();
  EXPECT_EQ(m.source, 0);
  EXPECT_EQ(m.tag, 5);
  EXPECT_EQ(m.payload, payload);
}

TEST(MwClient, SelectiveRecvBySourceAndTag) {
  MwClient a(10);
  MwClient b(20);
  MwClient dest(30);
  a.send(dest.endpoint(), 1, std::vector<std::uint8_t>{11});
  b.send(dest.endpoint(), 2, std::vector<std::uint8_t>{22});
  const runtime::Message from_b = dest.recv(20, 2);
  EXPECT_EQ(from_b.payload[0], 22);
  const runtime::Message from_a = dest.recv(10, runtime::kAnyTag);
  EXPECT_EQ(from_a.payload[0], 11);
}

TEST(MwClient, ConnectionsAreReusedAcrossSends) {
  MwClient sender(0);
  MwClient receiver(1);
  for (std::uint8_t i = 0; i < 50; ++i) {
    sender.send(receiver.endpoint(), 1, std::vector<std::uint8_t>{i});
  }
  for (std::uint8_t i = 0; i < 50; ++i) {
    EXPECT_EQ(receiver.recv(0, 1).payload[0], i);  // ordered: same connection
  }
  EXPECT_EQ(sender.bytes_sent(), 50u);
}

TEST(MwClient, LargePayloadChunkedCorrectly) {
  MwClient sender(0);
  MwClient receiver(1);
  std::vector<std::uint8_t> payload(3 << 20);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  sender.send(receiver.endpoint(), 9, payload);
  const runtime::Message m = receiver.recv(0, 9);
  EXPECT_EQ(m.payload, payload);
}

TEST(MwClient, ManySendersOneReceiver) {
  MwClient receiver(99);
  constexpr int kSenders = 6;
  std::vector<std::thread> threads;
  for (int s = 0; s < kSenders; ++s) {
    threads.emplace_back([s, ep = receiver.endpoint()] {
      MwClient sender(s);
      for (int i = 0; i < 20; ++i) {
        sender.send(ep, 1, std::vector<std::uint8_t>{static_cast<std::uint8_t>(s)});
      }
    });
  }
  int received = 0;
  for (int i = 0; i < kSenders * 20; ++i) {
    const runtime::Message m = receiver.recv();
    EXPECT_EQ(m.payload[0], static_cast<std::uint8_t>(m.source));
    ++received;
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(received, kSenders * 20);
}

TEST(MwClient, StopIsIdempotent) {
  MwClient c(0);
  c.stop();
  c.stop();
}

TEST(MwClient, ReconnectsAfterPeerRestart) {
  // Failure injection: the destination estimator restarts on the same URL
  // (a control-center failover). The sender's cached connection goes stale;
  // MW_Client_Send must re-dial instead of failing permanently.
  MwClient sender(0);
  EndpointUrl addr;
  {
    MwClient first(1);
    addr = first.endpoint();
    sender.send(addr, 1, std::vector<std::uint8_t>{1});
    EXPECT_EQ(first.recv(0, 1).payload[0], 1);
    first.stop();
  }
  // restart a new receiver on the SAME endpoint
  MwClient second(2, addr);
  ASSERT_EQ(second.endpoint().port, addr.port);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  bool delivered = false;
  for (std::uint8_t i = 0; i < 5 && !delivered; ++i) {
    try {
      sender.send(addr, 2, std::vector<std::uint8_t>{i});
    } catch (const CommError&) {
      continue;  // transient: stale socket detected on this attempt
    }
    runtime::Message m;
    // poll briefly: the pre-restart attempt may have been absorbed by the
    // dying socket's buffer
    for (int spin = 0; spin < 50; ++spin) {
      // Mailbox has no timed take; use a short sleep + non-blocking probe
      // via a second send marker instead: simply wait then break if pending.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      if (second.pending() > 0) break;
    }
    if (second.pending() > 0) {
      m = second.recv(0, 2);
      EXPECT_EQ(m.source, 0);
      delivered = true;
    }
  }
  EXPECT_TRUE(delivered);
}

TEST(MwClient, RetryAccountingMatchesTheInjectedErrorCount) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "built with GRIDSE_FAULT=OFF";
  }
  // Exactly two injected connection errors on the sender's wire: the send
  // survives through two retries, the message arrives exactly once, and
  // retries() reports exactly the plan's error count.
  fault::FaultPlan plan;
  plan.seed = 4;
  plan.rules.push_back({.site = "wire.write",
                        .action = fault::ActionKind::kError,
                        .source = 0,
                        .max_injections = 2});
  fault::install(plan);

  MwClient sender(0);
  runtime::RetryPolicy retry;
  retry.max_attempts = 4;
  retry.backoff_base = std::chrono::milliseconds{1};
  sender.set_retry_policy(retry);
  MwClient receiver(1);

  sender.send(receiver.endpoint(), 7, std::vector<std::uint8_t>{1, 2, 3});
  const runtime::Message m = receiver.recv(0, 7);
  EXPECT_EQ(m.payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(sender.retries(), 2u);  // one retry per injected error
  EXPECT_EQ(fault::injected_count(), 2u);
  EXPECT_EQ(receiver.pending(), 0u);  // delivered once, not re-duplicated
  fault::clear();
}

TEST(MwClient, RetriesAreBoundedWhenTheFaultPersists) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "built with GRIDSE_FAULT=OFF";
  }
  // An unbounded error rule defeats every attempt: the send must give up
  // after max_attempts with a CommError, having retried attempts-1 times.
  fault::FaultPlan plan;
  plan.seed = 6;
  plan.rules.push_back({.site = "wire.write",
                        .action = fault::ActionKind::kError,
                        .source = 0});
  fault::install(plan);

  MwClient sender(0);
  runtime::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.backoff_base = std::chrono::milliseconds{1};
  sender.set_retry_policy(retry);
  MwClient receiver(1);

  EXPECT_THROW(
      sender.send(receiver.endpoint(), 8, std::vector<std::uint8_t>{4}),
      CommError);
  EXPECT_EQ(sender.retries(), 2u);
  EXPECT_EQ(fault::injected_count(), 3u);  // one failure per attempt
  fault::clear();
}

// Regression: retry_ used to be read bare inside send_with_retries while
// set_retry_policy wrote it from another thread — a data race (tsan) and a
// torn-policy hazard.  The fix snapshots the policy under send_mutex_; this
// test drives the exact interleaving and must stay clean under the tsan
// preset while the delivery guarantees hold.
TEST(MwClient, SetRetryPolicyRacesInFlightSends) {
  MwClient sender(0);
  MwClient receiver(1);
  std::atomic<bool> stop{false};
  std::thread tuner([&] {
    runtime::RetryPolicy policy;
    int flips = 0;
    while (!stop.load(std::memory_order_acquire)) {
      policy.max_attempts = 1 + (++flips % 4);
      policy.backoff_base = std::chrono::milliseconds(flips % 7);
      sender.set_retry_policy(policy);
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 100; ++i) {
    sender.send(receiver.endpoint(), 7,
                std::vector<std::uint8_t>{static_cast<std::uint8_t>(i)});
  }
  stop.store(true, std::memory_order_release);
  tuner.join();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(receiver.recv(0, 7).payload[0], static_cast<std::uint8_t>(i));
  }
}

}  // namespace
}  // namespace gridse::medici
