#include "medici/endpoint.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace gridse::medici {
namespace {

TEST(Endpoint, ParsesValidUrl) {
  const EndpointUrl e = parse_endpoint("tcp://127.0.0.1:6789");
  EXPECT_EQ(e.protocol, "tcp");
  EXPECT_EQ(e.host, "127.0.0.1");
  EXPECT_EQ(e.port, 6789);
}

TEST(Endpoint, ParsesHostNames) {
  // The paper's Fig. 7 uses host names; we parse them even though routing is
  // loopback-only in this prototype.
  const EndpointUrl e = parse_endpoint("tcp://nwiceb.pnl.gov:6789");
  EXPECT_EQ(e.host, "nwiceb.pnl.gov");
  EXPECT_EQ(e.port, 6789);
}

TEST(Endpoint, ToStringRoundTrips) {
  const EndpointUrl e = parse_endpoint("tcp://127.0.0.1:4242");
  EXPECT_EQ(parse_endpoint(e.to_string()), e);
}

TEST(Endpoint, RejectsMalformedUrls) {
  EXPECT_THROW(parse_endpoint("127.0.0.1:80"), InvalidInput);
  EXPECT_THROW(parse_endpoint("http://127.0.0.1:80"), InvalidInput);
  EXPECT_THROW(parse_endpoint("tcp://"), InvalidInput);
  EXPECT_THROW(parse_endpoint("tcp://host"), InvalidInput);
  EXPECT_THROW(parse_endpoint("tcp://host:"), InvalidInput);
  EXPECT_THROW(parse_endpoint("tcp://host:notaport"), InvalidInput);
  EXPECT_THROW(parse_endpoint("tcp://host:99999"), InvalidInput);
}

TEST(Endpoint, EphemeralGivesDistinctFreePorts) {
  const EndpointUrl a = ephemeral_endpoint();
  const EndpointUrl b = ephemeral_endpoint();
  EXPECT_GT(a.port, 0);
  EXPECT_GT(b.port, 0);
  EXPECT_EQ(a.host, "127.0.0.1");
}

}  // namespace
}  // namespace gridse::medici
