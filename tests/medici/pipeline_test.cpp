#include "medici/pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "medici/mw_client.hpp"
#include "util/error.hpp"

namespace gridse::medici {
namespace {

// The relay bumps its stats *after* forwarding a frame, so a receiver can
// observe the payload a moment before the counter moves: poll briefly
// instead of asserting a racy instantaneous read.
RelayStats wait_for_messages(const MifPipeline& pipeline,
                             std::uint64_t expected) {
  for (int spin = 0; spin < 2000 && pipeline.stats().messages < expected;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pipeline.stats();
}

TEST(MifPipeline, MirrorsFigure7ConstructionSequence) {
  // The paper's Fig. 7 sample, transcribed: create pipeline, add TCP
  // connector with the EOF protocol, add the SE component, set endpoints,
  // start.
  MwClient destination(1);

  MifPipeline pipeline;
  MifConnector& conn = pipeline.add_mif_connector(EndpointProtocol::kTcp);
  conn.set_property("tcpProtocol", "EOFProtocol");
  MifComponent& se = pipeline.add_mif_component("SESocket");
  se.set_in_name_endpoint("tcp://127.0.0.1:0");
  se.set_out_hal_endpoint(destination.endpoint().to_string());
  pipeline.set_relay_model(unshaped_model());
  pipeline.start();
  ASSERT_TRUE(pipeline.running());
  ASSERT_NE(se.inbound().port, 0);  // ephemeral port resolved

  // A source estimator sends to the pipeline inbound; MeDICi relays to the
  // destination estimator.
  MwClient source(0);
  source.send(se.inbound(), 3, std::vector<std::uint8_t>{5, 6, 7});
  const runtime::Message m = destination.recv(0, 3);
  EXPECT_EQ(m.payload, (std::vector<std::uint8_t>{5, 6, 7}));

  const RelayStats stats = wait_for_messages(pipeline, 1);
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.bytes, 3u);
  pipeline.stop();
  EXPECT_FALSE(pipeline.running());
}

TEST(MifPipeline, RelayPreservesSourceAndTag) {
  MwClient destination(7);
  MifPipeline pipeline;
  pipeline.add_mif_connector(EndpointProtocol::kTcp);
  MifComponent& se = pipeline.add_mif_component("SE");
  se.set_in_name_endpoint("tcp://127.0.0.1:0");
  se.set_out_hal_endpoint(destination.endpoint().to_string());
  pipeline.set_relay_model(unshaped_model());
  pipeline.start();

  MwClient source(42);
  source.send(se.inbound(), 17, std::vector<std::uint8_t>{1});
  const runtime::Message m = destination.recv();
  EXPECT_EQ(m.source, 42);
  EXPECT_EQ(m.tag, 17);
}

TEST(MifPipeline, ManyMessagesThroughOneRelay) {
  MwClient destination(1);
  MifPipeline pipeline;
  pipeline.add_mif_connector(EndpointProtocol::kTcp);
  MifComponent& se = pipeline.add_mif_component("SE");
  se.set_in_name_endpoint("tcp://127.0.0.1:0");
  se.set_out_hal_endpoint(destination.endpoint().to_string());
  pipeline.set_relay_model(unshaped_model());
  pipeline.start();

  MwClient source(0);
  for (std::uint8_t i = 0; i < 64; ++i) {
    source.send(se.inbound(), 1, std::vector<std::uint8_t>{i});
  }
  for (std::uint8_t i = 0; i < 64; ++i) {
    EXPECT_EQ(destination.recv(0, 1).payload[0], i);
  }
  EXPECT_EQ(wait_for_messages(pipeline, 64).messages, 64u);
}

TEST(MifPipeline, TwoHopRelayChain) {
  // MeDICi pipelines compose: source -> relay A -> relay B -> destination
  // (a wide-area path crossing two middleware nodes). Source id and tag must
  // survive both store-and-forward hops.
  MwClient destination(9);

  MifPipeline hop_b;
  hop_b.add_mif_connector(EndpointProtocol::kTcp);
  MifComponent& se_b = hop_b.add_mif_component("SE_hopB");
  se_b.set_in_name_endpoint("tcp://127.0.0.1:0");
  se_b.set_out_hal_endpoint(destination.endpoint().to_string());
  hop_b.set_relay_model(unshaped_model());
  hop_b.start();

  MifPipeline hop_a;
  hop_a.add_mif_connector(EndpointProtocol::kTcp);
  MifComponent& se_a = hop_a.add_mif_component("SE_hopA");
  se_a.set_in_name_endpoint("tcp://127.0.0.1:0");
  se_a.set_out_hal_endpoint(se_b.inbound().to_string());
  hop_a.set_relay_model(unshaped_model());
  hop_a.start();

  MwClient source(3);
  for (std::uint8_t i = 0; i < 10; ++i) {
    source.send(se_a.inbound(), 21, std::vector<std::uint8_t>{i});
  }
  for (std::uint8_t i = 0; i < 10; ++i) {
    const runtime::Message m = destination.recv(3, 21);
    EXPECT_EQ(m.payload[0], i);
  }
  EXPECT_EQ(wait_for_messages(hop_a, 10).messages, 10u);
  EXPECT_EQ(wait_for_messages(hop_b, 10).messages, 10u);
}

TEST(MifPipeline, SurvivesSenderReconnect) {
  // A new upstream connection per scan must keep working (the relay accepts
  // any number of connections over its lifetime).
  MwClient destination(1);
  MifPipeline pipeline;
  pipeline.add_mif_connector(EndpointProtocol::kTcp);
  MifComponent& se = pipeline.add_mif_component("SE");
  se.set_in_name_endpoint("tcp://127.0.0.1:0");
  se.set_out_hal_endpoint(destination.endpoint().to_string());
  pipeline.set_relay_model(unshaped_model());
  pipeline.start();

  for (std::uint8_t round = 0; round < 3; ++round) {
    MwClient source(round);  // fresh client = fresh connection
    source.send(se.inbound(), 1, std::vector<std::uint8_t>{round});
    const runtime::Message m = destination.recv(round, 1);
    EXPECT_EQ(m.payload[0], round);
  }
  EXPECT_EQ(wait_for_messages(pipeline, 3).messages, 3u);
}

TEST(MifPipeline, StartValidatesConfiguration) {
  {
    MifPipeline p;
    EXPECT_THROW(p.start(), InternalError);  // no connector/component
  }
  {
    MifPipeline p;
    p.add_mif_connector(EndpointProtocol::kTcp);
    EXPECT_THROW(p.start(), InternalError);  // no component
  }
  {
    MifPipeline p;
    p.add_mif_connector(EndpointProtocol::kTcp);
    MifComponent& c = p.add_mif_component("SE");
    c.set_in_name_endpoint("tcp://127.0.0.1:0");
    EXPECT_THROW(p.start(), InvalidInput);  // no outbound endpoint
  }
}

TEST(MifPipeline, ConnectorRejectsUnknownProtocolValue) {
  MifPipeline p;
  MifConnector& conn = p.add_mif_connector(EndpointProtocol::kTcp);
  EXPECT_THROW(conn.set_property("tcpProtocol", "LengthPrefixed"),
               InvalidInput);
}

TEST(MifPipeline, ReconfigureWhileRunningRejected) {
  MwClient destination(1);
  MifPipeline p;
  p.add_mif_connector(EndpointProtocol::kTcp);
  MifComponent& c = p.add_mif_component("SE");
  c.set_in_name_endpoint("tcp://127.0.0.1:0");
  c.set_out_hal_endpoint(destination.endpoint().to_string());
  p.start();
  EXPECT_THROW(p.add_mif_component("another"), InternalError);
  EXPECT_THROW(p.start(), InternalError);
}

// Regression: running_ used to be a plain bool written by start()/stop()
// while dashboards polled running() concurrently — a data race even though
// each access looked innocent.  It is now an atomic with acquire/release
// ordering; this probe loop races a full start/stop against the reader and
// must stay clean under the tsan preset.
TEST(MifPipeline, RunningProbeRacesStartAndStop) {
  MwClient destination(1);
  MifPipeline pipeline;
  pipeline.add_mif_connector(EndpointProtocol::kTcp);
  MifComponent& se = pipeline.add_mif_component("SESocket");
  se.set_in_name_endpoint("tcp://127.0.0.1:0");
  se.set_out_hal_endpoint(destination.endpoint().to_string());
  pipeline.set_relay_model(unshaped_model());

  std::atomic<bool> stop{false};
  std::atomic<int> observed_running{0};
  std::thread probe([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (pipeline.running()) {
        observed_running.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });

  pipeline.start();
  for (int spin = 0; spin < 2000 && observed_running.load() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pipeline.stop();
  stop.store(true, std::memory_order_release);
  probe.join();

  EXPECT_FALSE(pipeline.running());
  EXPECT_GT(observed_running.load(), 0);
}

}  // namespace
}  // namespace gridse::medici
