#include "graph/partitioner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace gridse::graph {
namespace {

WeightedGraph paper_graph(bool step2_edges) {
  WeightedGraph g(9);
  const int sizes[] = {14, 13, 13, 13, 13, 12, 14, 13, 13};
  for (VertexId v = 0; v < 9; ++v) {
    g.set_vertex_weight(v, sizes[v]);
  }
  const std::pair<int, int> edges[] = {{1, 2}, {1, 4}, {1, 5}, {2, 3},
                                       {2, 6}, {3, 6}, {4, 5}, {4, 7},
                                       {5, 6}, {5, 7}, {5, 8}, {7, 9}};
  for (const auto& [a, b] : edges) {
    const double w = step2_edges ? sizes[a - 1] + sizes[b - 1] : 1.0;
    g.add_edge(a - 1, b - 1, w);
  }
  return g;
}

WeightedGraph random_connected(VertexId n, double extra_density, Rng& rng) {
  WeightedGraph g(n);
  for (VertexId v = 1; v < n; ++v) {
    g.add_edge(static_cast<VertexId>(rng.uniform_int(0, v - 1)), v,
               rng.uniform(1.0, 5.0));
    g.set_vertex_weight(v, rng.uniform(1.0, 10.0));
  }
  const int extra = static_cast<int>(extra_density * n);
  for (int e = 0; e < extra; ++e) {
    const auto a = static_cast<VertexId>(rng.uniform_int(0, n - 1));
    const auto b = static_cast<VertexId>(rng.uniform_int(0, n - 1));
    if (a != b && !g.has_edge(a, b)) {
      g.add_edge(a, b, rng.uniform(1.0, 5.0));
    }
  }
  return g;
}

TEST(Partitioner, PaperStep1GraphBalancesWithinMetisThreshold) {
  // Figure 4: 3 clusters, load-imbalance 1.035 with METIS. Our exhaustive
  // search is optimal, so it must do at least as well.
  const WeightedGraph g = paper_graph(/*step2_edges=*/false);
  PartitionOptions opts;
  opts.k = 3;
  const Partition p = partition(g, opts);
  EXPECT_TRUE(is_valid_partition(g, p.assignment, 3));
  EXPECT_LE(p.load_imbalance, 1.035 + 1e-9);
}

TEST(Partitioner, PaperStep2GraphStaysBalancedAndCutsLess) {
  const WeightedGraph g = paper_graph(/*step2_edges=*/true);
  PartitionOptions opts;
  opts.k = 3;
  opts.imbalance_tolerance = 1.10;  // paper's Fig. 5 result is 1.079
  const Partition p = partition(g, opts);
  EXPECT_LE(p.load_imbalance, 1.10 + 1e-9);
  // Any valid 3-way split of this graph cuts at least some edges; sanity
  // bound from the paper's figure: the optimal cut is below the naive
  // contiguous grouping's cut.
  const Partition naive = evaluate_partition(
      g, std::vector<PartId>{0, 0, 0, 1, 1, 1, 2, 2, 2}, 3);
  EXPECT_LE(p.edge_cut, naive.edge_cut);
}

TEST(Partitioner, KOnePutsEverythingTogether) {
  const WeightedGraph g = paper_graph(false);
  PartitionOptions opts;
  opts.k = 1;
  const Partition p = partition(g, opts);
  EXPECT_DOUBLE_EQ(p.edge_cut, 0.0);
  EXPECT_DOUBLE_EQ(p.load_imbalance, 1.0);
}

TEST(Partitioner, KEqualsNIsSingletons) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  PartitionOptions opts;
  opts.k = 4;
  opts.imbalance_tolerance = 2.0;
  const Partition p = partition(g, opts);
  EXPECT_TRUE(is_valid_partition(g, p.assignment, 4));
}

TEST(Partitioner, RejectsBadK) {
  const WeightedGraph g = paper_graph(false);
  PartitionOptions opts;
  opts.k = 0;
  EXPECT_THROW(partition(g, opts), InvalidInput);
  opts.k = 10;
  EXPECT_THROW(partition(g, opts), InvalidInput);
}

TEST(Partitioner, ExhaustiveIsOptimalOnTinyGraph) {
  // 4-cycle with one heavy edge; optimal 2-way cut avoids the heavy edge.
  WeightedGraph g(4);
  g.add_edge(0, 1, 100.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 100.0);
  g.add_edge(3, 0, 1.0);
  PartitionOptions opts;
  opts.k = 2;
  const Partition p = detail::exhaustive_partition(g, opts);
  EXPECT_DOUBLE_EQ(p.edge_cut, 2.0);
  EXPECT_EQ(p.assignment[0], p.assignment[1]);
  EXPECT_EQ(p.assignment[2], p.assignment[3]);
  EXPECT_NE(p.assignment[0], p.assignment[2]);
}

class PartitionerSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionerSweep, ProducesValidBalancedPartitions) {
  const auto [n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 131 + k));
  const WeightedGraph g = random_connected(n, 1.5, rng);
  PartitionOptions opts;
  opts.k = k;
  opts.seed = 99;
  opts.imbalance_tolerance = 1.2;  // loose: vertex weights vary 10x
  const Partition p = partition(g, opts);
  EXPECT_TRUE(is_valid_partition(g, p.assignment, k));
  // Multilevel + refinement should land close to the tolerance even on
  // heterogeneous weights; allow generous slack but catch gross failures.
  EXPECT_LE(p.load_imbalance, 2.0);
  // Edge cut must beat a random assignment on average.
  std::vector<PartId> random_assign(static_cast<std::size_t>(n));
  for (auto& a : random_assign) {
    a = static_cast<PartId>(rng.uniform_int(0, k - 1));
  }
  if (is_valid_partition(g, random_assign, k)) {
    const Partition randomp = evaluate_partition(g, random_assign, k);
    EXPECT_LE(p.edge_cut, randomp.edge_cut * 1.05);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndK, PartitionerSweep,
    ::testing::Combine(::testing::Values(9, 30, 100, 300),
                       ::testing::Values(2, 3, 8)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_k" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(Partitioner, MultilevelNearOptimalWhereExhaustiveFeasible) {
  // Cross-validate the multilevel heuristic against the provably optimal
  // exhaustive search on graphs where both run.
  for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    Rng rng(seed);
    const WeightedGraph g = random_connected(12, 1.2, rng);
    PartitionOptions opts;
    opts.k = 2;
    opts.imbalance_tolerance = 1.3;
    opts.seed = seed;
    const Partition optimal = detail::exhaustive_partition(g, opts);
    PartitionOptions ml_opts = opts;
    ml_opts.exhaustive_budget = 0.0;  // force the multilevel path
    const Partition heuristic = partition(g, ml_opts);
    EXPECT_TRUE(is_valid_partition(g, heuristic.assignment, 2));
    // The heuristic may lose some cut quality but must stay in the same
    // league as the optimum (guards against gross regressions).
    EXPECT_LE(heuristic.edge_cut, optimal.edge_cut * 2.0 + 5.0)
        << "seed " << seed;
  }
}

TEST(Repartition, RefinesFromPrevious) {
  Rng rng(4242);
  WeightedGraph g = random_connected(40, 1.0, rng);
  PartitionOptions opts;
  opts.k = 4;
  opts.imbalance_tolerance = 1.3;
  const Partition first = partition(g, opts);

  // Perturb the vertex weights (a new time frame) and repartition.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    g.set_vertex_weight(v, g.vertex_weight(v) * rng.uniform(0.8, 1.25));
  }
  const Partition second = repartition(g, first.assignment, opts);
  EXPECT_TRUE(is_valid_partition(g, second.assignment, 4));
  // Adaptive repartitioning favours low migration.
  EXPECT_LE(migration_count(first.assignment, second.assignment), 20);
}

TEST(ChooseParts, SweepPicksLowestScoreAndIsDeterministic) {
  Rng rng(777);
  const WeightedGraph g = random_connected(60, 1.2, rng);
  PartitionOptions opts;
  opts.seed = 9;
  opts.imbalance_tolerance = 1.3;
  const PartsChoice choice = choose_parts(g, opts, 2, 6);
  EXPECT_GE(choice.k, 2);
  EXPECT_LE(choice.k, 6);
  EXPECT_GT(choice.score, 0.0);
  EXPECT_TRUE(is_valid_partition(g, choice.partition.assignment, choice.k));

  // The winner must actually carry the lowest total-work score over the
  // swept range (ties to the smaller k), under the same objective.
  PartitionOptions conv = opts;
  conv.objective = PartitionObjective::kConvergenceAware;
  for (PartId k = 2; k <= 6; ++k) {
    const Partition p = partition(g, [&] {
      PartitionOptions o = conv;
      o.k = k;
      return o;
    }());
    double max_weight = 0.0;
    for (const double w : p.part_weights) max_weight = std::max(max_weight, w);
    const double score = p.expected_gn_iterations * max_weight;
    if (k < choice.k) {
      EXPECT_LT(choice.score, score) << "k=" << k;  // strict: ties go low
    } else {
      EXPECT_LE(choice.score, score + 1e-12) << "k=" << k;
    }
  }

  // Deterministic for fixed inputs.
  const PartsChoice again = choose_parts(g, opts, 2, 6);
  EXPECT_EQ(again.k, choice.k);
  EXPECT_EQ(again.partition.assignment, choice.partition.assignment);
  EXPECT_DOUBLE_EQ(again.score, choice.score);
}

TEST(ChooseParts, ClampsAndValidatesBounds) {
  const WeightedGraph g = paper_graph(false);
  // k_max beyond the vertex count is clamped to it.
  const PartsChoice choice = choose_parts(g, {}, 1, 100);
  EXPECT_GE(choice.k, 1);
  EXPECT_LE(choice.k, 9);
  EXPECT_THROW(choose_parts(g, {}, 0, 3), InvalidInput);
  EXPECT_THROW(choose_parts(g, {}, 5, 4), InvalidInput);
}

TEST(Repartition, RejectsInvalidPrevious) {
  const WeightedGraph g = paper_graph(false);
  PartitionOptions opts;
  opts.k = 3;
  const std::vector<PartId> bogus(9, 0);  // parts 1 and 2 empty
  EXPECT_THROW(repartition(g, bogus, opts), InvalidInput);
}

TEST(Repartition, RebalancesAfterWeightShift) {
  // Make one part grossly overweight and verify repartitioning fixes it.
  WeightedGraph g(6);
  for (VertexId v = 0; v + 1 < 6; ++v) g.add_edge(v, v + 1, 1.0);
  g.add_edge(5, 0, 1.0);
  const std::vector<PartId> prev{0, 0, 0, 0, 1, 1};
  for (VertexId v = 0; v < 6; ++v) g.set_vertex_weight(v, 1.0);
  PartitionOptions opts;
  opts.k = 2;
  const Partition p = repartition(g, prev, opts);
  EXPECT_LE(p.load_imbalance, opts.imbalance_tolerance + 1e-9);
}

}  // namespace
}  // namespace gridse::graph
