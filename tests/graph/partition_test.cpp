#include "graph/partition.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace gridse::graph {
namespace {

WeightedGraph square_graph() {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  g.add_edge(3, 0, 4.0);
  return g;
}

TEST(Partition, EvaluatesEdgeCut) {
  const WeightedGraph g = square_graph();
  const Partition p = evaluate_partition(g, {0, 0, 1, 1}, 2);
  // crossing edges: (1,2) weight 2 and (3,0) weight 4
  EXPECT_DOUBLE_EQ(p.edge_cut, 6.0);
}

TEST(Partition, EvaluatesBalance) {
  WeightedGraph g = square_graph();
  g.set_vertex_weight(0, 3.0);
  g.set_vertex_weight(1, 1.0);
  g.set_vertex_weight(2, 1.0);
  g.set_vertex_weight(3, 1.0);
  const Partition p = evaluate_partition(g, {0, 0, 1, 1}, 2);
  EXPECT_EQ(p.part_weights, (std::vector<double>{4.0, 2.0}));
  EXPECT_DOUBLE_EQ(p.load_imbalance, 4.0 / 3.0);
}

TEST(Partition, PerfectBalanceIsOne) {
  const WeightedGraph g = square_graph();
  const Partition p = evaluate_partition(g, {0, 1, 0, 1}, 2);
  EXPECT_DOUBLE_EQ(p.load_imbalance, 1.0);
}

TEST(Partition, OutOfRangePartThrows) {
  const WeightedGraph g = square_graph();
  EXPECT_THROW(evaluate_partition(g, {0, 0, 0, 2}, 2), InternalError);
}

TEST(Partition, ValidityChecks) {
  const WeightedGraph g = square_graph();
  EXPECT_TRUE(is_valid_partition(g, std::vector<PartId>{0, 1, 0, 1}, 2));
  // empty part 1
  EXPECT_FALSE(is_valid_partition(g, std::vector<PartId>{0, 0, 0, 0}, 2));
  // wrong size
  EXPECT_FALSE(is_valid_partition(g, std::vector<PartId>{0, 1}, 2));
  // out of range
  EXPECT_FALSE(is_valid_partition(g, std::vector<PartId>{0, 1, 0, 5}, 2));
}

TEST(Partition, MigrationCount) {
  const std::vector<PartId> a{0, 1, 2, 0};
  const std::vector<PartId> b{0, 2, 2, 1};
  EXPECT_EQ(migration_count(a, b), 2);
  EXPECT_EQ(migration_count(a, a), 0);
}

}  // namespace
}  // namespace gridse::graph
