#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace gridse::graph {
namespace {

WeightedGraph paper_decomposition_graph() {
  // Figure 3 of the paper: 9 subsystems, 12 edges.
  WeightedGraph g(9);
  const int sizes[] = {14, 13, 13, 13, 13, 12, 14, 13, 13};
  for (VertexId v = 0; v < 9; ++v) {
    g.set_vertex_weight(v, sizes[v]);
  }
  const std::pair<int, int> edges[] = {{1, 2}, {1, 4}, {1, 5}, {2, 3},
                                       {2, 6}, {3, 6}, {4, 5}, {4, 7},
                                       {5, 6}, {5, 7}, {5, 8}, {7, 9}};
  for (const auto& [a, b] : edges) {
    g.add_edge(a - 1, b - 1, 1.0);
  }
  return g;
}

TEST(WeightedGraph, ConstructionAndAccessors) {
  const WeightedGraph g = paper_decomposition_graph();
  EXPECT_EQ(g.num_vertices(), 9);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_DOUBLE_EQ(g.vertex_weight(0), 14.0);
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 118.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 8));
}

TEST(WeightedGraph, RejectsSelfLoop) {
  WeightedGraph g(3);
  EXPECT_THROW(g.add_edge(1, 1, 1.0), InvalidInput);
}

TEST(WeightedGraph, RejectsDuplicateEdge) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(g.add_edge(0, 1, 2.0), InvalidInput);
  EXPECT_THROW(g.add_edge(1, 0, 2.0), InvalidInput);
}

TEST(WeightedGraph, RejectsOutOfRange) {
  WeightedGraph g(2);
  EXPECT_THROW(g.add_edge(0, 2, 1.0), InvalidInput);
  EXPECT_THROW(g.add_edge(-1, 0, 1.0), InvalidInput);
}

TEST(WeightedGraph, RejectsNegativeWeights) {
  WeightedGraph g(2);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), InvalidInput);
  EXPECT_THROW(g.set_vertex_weight(0, -1.0), InternalError);
}

TEST(WeightedGraph, SetEdgeWeightEitherDirection) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 1.0);
  g.set_edge_weight(1, 0, 7.5);
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 7.5);
  for (const auto& [nbr, w] : g.neighbors(0)) {
    if (nbr == 1) {
      EXPECT_DOUBLE_EQ(w, 7.5);
    }
  }
  EXPECT_THROW(g.set_edge_weight(0, 2, 1.0), InvalidInput);
}

TEST(WeightedGraph, UniformEdgeWeights) {
  WeightedGraph g = paper_decomposition_graph();
  g.set_uniform_edge_weights(3.0);
  for (const Edge& e : g.edges()) {
    EXPECT_DOUBLE_EQ(e.weight, 3.0);
  }
}

TEST(WeightedGraph, Connectivity) {
  EXPECT_TRUE(paper_decomposition_graph().connected());
  WeightedGraph g(4);
  g.add_edge(0, 1, 1.0);
  EXPECT_FALSE(g.connected());
  EXPECT_TRUE(WeightedGraph(1).connected());
  EXPECT_TRUE(WeightedGraph(0).connected());
}

TEST(WeightedGraph, DiameterOfPaperGraph) {
  // The DSE iteration count is bounded by the decomposition diameter (§II).
  // Longest shortest path in Fig. 3's graph is subsystem 9 to subsystem 3
  // (9→7→4/5→1/6→3): four hops.
  const WeightedGraph g = paper_decomposition_graph();
  EXPECT_EQ(g.diameter(), 4);
}

TEST(WeightedGraph, DiameterOfPath) {
  WeightedGraph g(5);
  for (VertexId v = 0; v + 1 < 5; ++v) {
    g.add_edge(v, v + 1, 1.0);
  }
  EXPECT_EQ(g.diameter(), 4);
}

TEST(WeightedGraph, DiameterThrowsOnDisconnected) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW((void)g.diameter(), InvalidInput);
}

}  // namespace
}  // namespace gridse::graph
