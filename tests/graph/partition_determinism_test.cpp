// Determinism regression tests: partition() must be a pure function of
// (graph, options) — bit-identical assignments for any worker thread count
// within one process, and across two separate processes (catching
// unordered-container iteration, address-dependent hashing, or
// uninitialized reads that an in-process comparison can miss). Mirrors the
// RCM ordering determinism tests in tests/sparse/ordering_test.cpp.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "decomp/bus_partition.hpp"
#include "io/synthetic.hpp"
#include "runtime/resilience.hpp"
#include "util/thread_pool.hpp"

namespace gridse::graph {
namespace {

/// FNV-1a over the assignment vector — any single differing PartId flips it.
std::uint64_t assignment_hash(const std::vector<PartId>& assignment) {
  std::uint64_t h = 1469598103934665603ull;
  for (const PartId p : assignment) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(p));
    h *= 1099511628211ull;
  }
  return h;
}

Partition partition_with_threads(const WeightedGraph& g, PartId k,
                                 int threads) {
  PartitionOptions opts;
  opts.k = k;
  opts.seed = 7;
  opts.threads = threads;
  return partition(g, opts);
}

/// The two reference graphs of the regression: the paper's IEEE-118 case
/// and the 10k-bus hierarchical tier, both at the bus level.
WeightedGraph ieee118_graph() {
  return decomp::bus_coupling_graph(io::ieee118_dse().kase.network);
}

WeightedGraph tier10k_graph() {
  return decomp::bus_coupling_graph(io::interconnection10k().kase.network);
}

TEST(PartitionDeterminism, Ieee118ThreadCountInvariant) {
  const WeightedGraph g = ieee118_graph();
  const Partition ref = partition_with_threads(g, 9, 1);
  for (const int threads : {2, 8}) {
    const Partition p = partition_with_threads(g, 9, threads);
    EXPECT_EQ(ref.assignment, p.assignment) << threads << " threads";
  }
}

TEST(PartitionDeterminism, Tier10kThreadCountInvariant) {
  const WeightedGraph g = tier10k_graph();
  const Partition ref = partition_with_threads(g, 32, 1);
  for (const int threads : {2, 8}) {
    const Partition p = partition_with_threads(g, 32, threads);
    EXPECT_EQ(ref.assignment, p.assignment) << threads << " threads";
  }
}

TEST(PartitionDeterminism, SharedPoolMatchesPrivatePool) {
  // A caller-supplied pool (the DseSystem wiring) must not change results
  // vs the partitioner's own per-call pool.
  const WeightedGraph g = ieee118_graph();
  const Partition ref = partition_with_threads(g, 9, 4);
  ThreadPool pool(4);
  PartitionOptions opts;
  opts.k = 9;
  opts.seed = 7;
  opts.threads = 4;
  opts.pool = &pool;
  const Partition shared = partition(g, opts);
  EXPECT_EQ(ref.assignment, shared.assignment);
}

/// Child half of the cross-process check: when the env var names an output
/// file, compute the combined hash of both reference partitions and write
/// it there. Run directly (parent invocation below); skipped in a normal
/// ctest run.
TEST(PartitionDeterminism, ChildWritesHash) {
  const std::optional<std::string> out =
      runtime::env_value("GRIDSE_PARTITION_HASH_FILE");
  if (!out) {
    GTEST_SKIP() << "cross-process child mode only";
  }
  const Partition p118 = partition_with_threads(ieee118_graph(), 9, 2);
  const Partition p10k = partition_with_threads(tier10k_graph(), 32, 2);
  std::ofstream f(*out);
  ASSERT_TRUE(f.good());
  f << assignment_hash(p118.assignment) << " "
    << assignment_hash(p10k.assignment) << "\n";
}

TEST(PartitionDeterminism, CrossProcessIdentical) {
  // Re-exec this binary twice (fresh address spaces, fresh heap layout)
  // and require identical partition hashes from both children.
  std::string exe(4096, '\0');
  const ssize_t len = readlink("/proc/self/exe", exe.data(), exe.size() - 1);
  if (len <= 0) {
    GTEST_SKIP() << "/proc/self/exe not available";
  }
  exe.resize(static_cast<std::size_t>(len));

  std::string hashes[2];
  for (int run = 0; run < 2; ++run) {
    const std::string out_file =
        ::testing::TempDir() + "partition_hash_" + std::to_string(run);
    std::remove(out_file.c_str());
    const std::string cmd =
        "GRIDSE_PARTITION_HASH_FILE='" + out_file + "' '" + exe +
        "' --gtest_filter=PartitionDeterminism.ChildWritesHash > /dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
    std::ifstream f(out_file);
    ASSERT_TRUE(f.good()) << out_file;
    std::stringstream ss;
    ss << f.rdbuf();
    hashes[run] = ss.str();
    ASSERT_FALSE(hashes[run].empty());
  }
  EXPECT_EQ(hashes[0], hashes[1]);
}

}  // namespace
}  // namespace gridse::graph
