// Thread-safety stress for the parallel partitioner: many concurrent
// partition() calls over independent graphs sharing one ThreadPool — the
// DseSystem wiring where per-cycle mapping and bus-level decomposition
// reuse the system pool. Run under the tsan preset this is a data-race
// detector; in a plain build it still verifies results are independent of
// interleaving. Plus negative coverage: is_valid_partition must reject
// malformed assignments rather than let them flow into decompose().
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "analysis/tsan.hpp"
#include "graph/partitioner.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace gridse::graph {
namespace {

WeightedGraph random_connected(VertexId n, std::uint64_t seed) {
  Rng rng(seed);
  WeightedGraph g(n);
  for (VertexId v = 1; v < n; ++v) {
    g.add_edge(static_cast<VertexId>(rng.uniform_int(0, v - 1)), v,
               rng.uniform(1.0, 5.0));
    g.set_vertex_weight(v, rng.uniform(1.0, 10.0));
  }
  for (int e = 0; e < n; ++e) {
    const auto a = static_cast<VertexId>(rng.uniform_int(0, n - 1));
    const auto b = static_cast<VertexId>(rng.uniform_int(0, n - 1));
    if (a != b && !g.has_edge(a, b)) {
      g.add_edge(a, b, rng.uniform(1.0, 5.0));
    }
  }
  return g;
}

TEST(PartitionStress, ConcurrentPartitionsSharingOnePool) {
  // TSan multiplies runtime ~10x; scale the stress down there, not off.
  const int graphs = GRIDSE_TSAN_ENABLED ? 4 : 12;
  const VertexId n = GRIDSE_TSAN_ENABLED ? 150 : 400;

  std::vector<WeightedGraph> inputs;
  std::vector<Partition> expected;
  PartitionOptions opts;
  opts.k = 6;
  opts.seed = 11;
  for (int i = 0; i < graphs; ++i) {
    inputs.push_back(random_connected(n, 1000 + static_cast<std::uint64_t>(i)));
    expected.push_back(partition(inputs.back(), opts));
  }

  ThreadPool pool(4);
  PartitionOptions shared = opts;
  shared.threads = 4;
  shared.pool = &pool;
  std::vector<Partition> results(static_cast<std::size_t>(graphs));
  std::vector<std::thread> callers;
  callers.reserve(static_cast<std::size_t>(graphs));
  for (int i = 0; i < graphs; ++i) {
    callers.emplace_back([&, i] {
      results[static_cast<std::size_t>(i)] =
          partition(inputs[static_cast<std::size_t>(i)], shared);
    });
  }
  for (std::thread& t : callers) t.join();

  for (int i = 0; i < graphs; ++i) {
    EXPECT_EQ(expected[static_cast<std::size_t>(i)].assignment,
              results[static_cast<std::size_t>(i)].assignment)
        << "graph " << i;
  }
}

TEST(PartitionStress, InvalidAssignmentsAreRejected) {
  const WeightedGraph g = random_connected(20, 42);
  PartitionOptions opts;
  opts.k = 4;
  const Partition good = partition(g, opts);
  ASSERT_TRUE(is_valid_partition(g, good.assignment, opts.k));

  // Part id out of range (high and negative).
  std::vector<PartId> bad = good.assignment;
  bad[3] = 4;
  EXPECT_FALSE(is_valid_partition(g, bad, opts.k));
  bad[3] = -1;
  EXPECT_FALSE(is_valid_partition(g, bad, opts.k));

  // Empty part: every vertex crammed into part 0.
  std::vector<PartId> collapsed(good.assignment.size(), 0);
  EXPECT_FALSE(is_valid_partition(g, collapsed, opts.k));

  // Wrong length: a vertex left unassigned.
  std::vector<PartId> truncated(good.assignment.begin(),
                                good.assignment.end() - 1);
  EXPECT_FALSE(is_valid_partition(g, truncated, opts.k));
}

}  // namespace
}  // namespace gridse::graph
