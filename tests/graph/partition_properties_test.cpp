// Seeded random-graph property harness for the k-way partitioner: the
// invariants that must hold on EVERY input, checked across 100 seeds per
// size tier (the counterpart of the example-based tests in
// partitioner_test.cpp). Each seed builds a connected weighted graph,
// partitions it, and verifies structural soundness, reported-vs-recomputed
// metrics, and the repartitioning migration contract.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/partitioner.hpp"
#include "util/rng.hpp"

namespace gridse::graph {
namespace {

WeightedGraph random_connected(VertexId n, double extra_density, Rng& rng) {
  WeightedGraph g(n);
  for (VertexId v = 1; v < n; ++v) {
    g.add_edge(static_cast<VertexId>(rng.uniform_int(0, v - 1)), v,
               rng.uniform(1.0, 5.0));
    g.set_vertex_weight(v, rng.uniform(1.0, 10.0));
  }
  const int extra = static_cast<int>(extra_density * n);
  for (int e = 0; e < extra; ++e) {
    const auto a = static_cast<VertexId>(rng.uniform_int(0, n - 1));
    const auto b = static_cast<VertexId>(rng.uniform_int(0, n - 1));
    if (a != b && !g.has_edge(a, b)) {
      g.add_edge(a, b, rng.uniform(1.0, 5.0));
    }
  }
  return g;
}

/// Edge cut recomputed straight from the edge list, independently of
/// evaluate_partition's internals.
double recompute_cut(const WeightedGraph& g,
                     const std::vector<PartId>& assignment) {
  double cut = 0.0;
  for (const Edge& e : g.edges()) {
    if (assignment[static_cast<std::size_t>(e.u)] !=
        assignment[static_cast<std::size_t>(e.v)]) {
      cut += e.weight;
    }
  }
  return cut;
}

/// The partitioner treats 1.05 as a target, not a guarantee: on adversarial
/// vertex-weight draws the best feasible imbalance can exceed it. 1.25 is
/// the empirical envelope over this harness's seeds with margin; a value
/// beyond it means balance handling regressed, not an unlucky seed.
constexpr double kImbalanceEnvelope = 1.25;

void check_tier(VertexId n, PartId k, int seeds) {
  for (int seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("n=" + std::to_string(n) + " k=" + std::to_string(k) +
                 " seed=" + std::to_string(seed));
    Rng rng(static_cast<std::uint64_t>(seed) * 977);
    const WeightedGraph g = random_connected(n, 1.5, rng);
    PartitionOptions opts;
    opts.k = k;
    opts.seed = static_cast<std::uint64_t>(seed);
    const Partition p = partition(g, opts);

    // Every vertex assigned exactly once, to a part in range.
    ASSERT_EQ(p.assignment.size(), static_cast<std::size_t>(n));
    for (const PartId part : p.assignment) {
      ASSERT_GE(part, 0);
      ASSERT_LT(part, k);
    }
    EXPECT_TRUE(is_valid_partition(g, p.assignment, k));

    EXPECT_LE(p.load_imbalance, kImbalanceEnvelope);
    EXPECT_GE(p.load_imbalance, 1.0 - 1e-9);

    // Reported metrics must match independent recomputation.
    EXPECT_NEAR(p.edge_cut, recompute_cut(g, p.assignment), 1e-9);
    double total = 0.0;
    for (const double w : p.part_weights) total += w;
    EXPECT_NEAR(total, g.total_vertex_weight(), 1e-9);
    EXPECT_GE(p.boundary_coupling, 0.0);
    EXPECT_LT(p.boundary_coupling, 1.0 + 1e-12);
    EXPECT_GE(p.expected_gn_iterations, 1.0);

    // Repartitioning after a weight perturbation must not migrate more
    // vertices than a from-scratch partition would (that is its contract:
    // prefer low migration at equal quality).
    WeightedGraph g2 = g;
    for (VertexId v = 0; v < n; ++v) {
      g2.set_vertex_weight(v, g.vertex_weight(v) * rng.uniform(0.8, 1.25));
    }
    const Partition repart = repartition(g2, p.assignment, opts);
    EXPECT_TRUE(is_valid_partition(g2, repart.assignment, k));
    const Partition fresh = partition(g2, opts);
    EXPECT_LE(migration_count(p.assignment, repart.assignment),
              migration_count(p.assignment, fresh.assignment));
  }
}

TEST(PartitionProperties, SmallTier) { check_tier(30, 4, 100); }

TEST(PartitionProperties, MediumTier) { check_tier(200, 8, 100); }

TEST(PartitionProperties, LargeTier) { check_tier(1200, 16, 100); }

TEST(PartitionProperties, MultilevelWithinBoundedFactorOfOptimal) {
  // On graphs small enough for the exhaustive search, force the multilevel
  // path (coarsen_to=2, tiny budget) and compare to the provable optimum.
  // Multilevel is a heuristic; 2x the optimal cut (plus an absolute slack
  // for near-zero optima) is the regression envelope.
  for (int seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(static_cast<std::uint64_t>(seed) * 31);
    const auto n = static_cast<VertexId>(rng.uniform_int(8, 12));
    const WeightedGraph g = random_connected(n, 1.0, rng);
    PartitionOptions opts;
    opts.k = 3;
    opts.seed = static_cast<std::uint64_t>(seed);
    const Partition optimal = detail::exhaustive_partition(g, opts);

    PartitionOptions heuristic = opts;
    heuristic.exhaustive_budget = 1;  // never take the exhaustive path
    heuristic.coarsen_to = 2;
    const Partition multilevel = partition(g, heuristic);
    EXPECT_TRUE(is_valid_partition(g, multilevel.assignment, opts.k));
    EXPECT_LE(multilevel.edge_cut, 2.0 * optimal.edge_cut + 5.0);
  }
}

}  // namespace
}  // namespace gridse::graph
