#include "decomp/sensitivity.hpp"

#include <gtest/gtest.h>

#include <set>

#include "io/synthetic.hpp"
#include "util/error.hpp"

namespace gridse::decomp {
namespace {

class SensitivityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    generated_ = io::ieee118_dse();
    d_ = decompose(generated_.kase.network, generated_.subsystem_of_bus);
  }
  io::GeneratedCase generated_;
  Decomposition d_;
};

TEST_F(SensitivityTest, SensitiveBusesAreInternalAndAdjacentToBoundary) {
  analyze_sensitivity(generated_.kase.network, d_, {});
  for (const Subsystem& s : d_.subsystems) {
    const std::set<grid::BusIndex> boundary(s.boundary_buses.begin(),
                                            s.boundary_buses.end());
    const std::set<grid::BusIndex> members(s.buses.begin(), s.buses.end());
    for (const grid::BusIndex b : s.sensitive_internal) {
      EXPECT_TRUE(members.count(b) > 0);
      EXPECT_TRUE(boundary.count(b) == 0);
      // must be adjacent to a boundary bus via an internal branch (hops=1)
      bool adjacent = false;
      for (const std::size_t bi : generated_.kase.network.branches_at(b)) {
        const grid::Branch& br = generated_.kase.network.branch(bi);
        const grid::BusIndex other = br.from == b ? br.to : br.from;
        adjacent |= boundary.count(other) > 0;
      }
      EXPECT_TRUE(adjacent) << "bus " << b;
    }
  }
}

TEST_F(SensitivityTest, ZeroHopsMeansNoSensitiveBuses) {
  SensitivityOptions opts;
  opts.hops = 0;
  analyze_sensitivity(generated_.kase.network, d_, opts);
  for (const Subsystem& s : d_.subsystems) {
    EXPECT_TRUE(s.sensitive_internal.empty());
  }
}

TEST_F(SensitivityTest, MoreHopsNeverShrinkTheSet) {
  SensitivityOptions one;
  one.hops = 1;
  analyze_sensitivity(generated_.kase.network, d_, one);
  std::vector<std::size_t> count1;
  for (const Subsystem& s : d_.subsystems) {
    count1.push_back(s.sensitive_internal.size());
  }
  SensitivityOptions two;
  two.hops = 2;
  analyze_sensitivity(generated_.kase.network, d_, two);
  for (int s = 0; s < d_.num_subsystems(); ++s) {
    EXPECT_GE(d_.subsystems[static_cast<std::size_t>(s)].sensitive_internal.size(),
              count1[static_cast<std::size_t>(s)]);
  }
}

TEST_F(SensitivityTest, CouplingFloorFiltersWeakBuses) {
  SensitivityOptions all;
  analyze_sensitivity(generated_.kase.network, d_, all);
  std::size_t total_all = 0;
  for (const Subsystem& s : d_.subsystems) {
    total_all += s.sensitive_internal.size();
  }
  SensitivityOptions strict;
  strict.coupling_floor = 0.9;
  analyze_sensitivity(generated_.kase.network, d_, strict);
  std::size_t total_strict = 0;
  for (const Subsystem& s : d_.subsystems) {
    total_strict += s.sensitive_internal.size();
  }
  EXPECT_LT(total_strict, total_all);
  EXPECT_GT(total_strict, 0u);
}

TEST_F(SensitivityTest, GsCountsBoundaryPlusSensitive) {
  analyze_sensitivity(generated_.kase.network, d_, {});
  for (const Subsystem& s : d_.subsystems) {
    EXPECT_EQ(s.gs(), static_cast<int>(s.boundary_buses.size() +
                                       s.sensitive_internal.size()));
    EXPECT_LE(s.gs(), static_cast<int>(s.buses.size()));
  }
}

TEST_F(SensitivityTest, RerunIsIdempotent) {
  analyze_sensitivity(generated_.kase.network, d_, {});
  std::vector<std::vector<grid::BusIndex>> first;
  for (const Subsystem& s : d_.subsystems) {
    first.push_back(s.sensitive_internal);
  }
  analyze_sensitivity(generated_.kase.network, d_, {});
  for (int s = 0; s < d_.num_subsystems(); ++s) {
    EXPECT_EQ(d_.subsystems[static_cast<std::size_t>(s)].sensitive_internal,
              first[static_cast<std::size_t>(s)]);
  }
}

TEST_F(SensitivityTest, RejectsBadOptions) {
  SensitivityOptions bad;
  bad.hops = -1;
  EXPECT_THROW(analyze_sensitivity(generated_.kase.network, d_, bad),
               InternalError);
  bad.hops = 1;
  bad.coupling_floor = 1.5;
  EXPECT_THROW(analyze_sensitivity(generated_.kase.network, d_, bad),
               InternalError);
}

}  // namespace
}  // namespace gridse::decomp
