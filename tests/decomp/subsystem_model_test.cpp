#include "decomp/subsystem_model.hpp"

#include <gtest/gtest.h>

#include <set>

#include "decomp/sensitivity.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/synthetic.hpp"

namespace gridse::decomp {
namespace {

void expect_index_roundtrip(const SubsystemModel& m) {
  for (grid::BusIndex l = 0; l < m.network.num_buses(); ++l) {
    const grid::BusIndex g = m.global_bus[static_cast<std::size_t>(l)];
    EXPECT_EQ(m.local_of_global.at(g), l);
  }
}

class SubsystemModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    generated_ = io::ieee118_dse();
    d_ = decompose(generated_.kase.network, generated_.subsystem_of_bus);
    analyze_sensitivity(generated_.kase.network, d_, {});
    pf_ = grid::solve_power_flow(generated_.kase.network);
    ASSERT_TRUE(pf_.converged);
    grid::MeasurementPlan plan;
    for (const Subsystem& s : d_.subsystems) {
      plan.pmu_buses.push_back(s.buses.front());
    }
    gen_ = std::make_unique<grid::MeasurementGenerator>(generated_.kase.network,
                                                        plan);
    global_set_ = gen_->generate_noiseless(pf_.state);
  }

  io::GeneratedCase generated_;
  Decomposition d_;
  grid::PowerFlowResult pf_;
  std::unique_ptr<grid::MeasurementGenerator> gen_;
  grid::MeasurementSet global_set_;
};

TEST_F(SubsystemModelTest, LocalModelCoversExactlyTheSubsystem) {
  for (int s = 0; s < d_.num_subsystems(); ++s) {
    const SubsystemModel m = extract_local(generated_.kase.network, d_, s);
    const Subsystem& sub = d_.subsystems[static_cast<std::size_t>(s)];
    EXPECT_EQ(m.network.num_buses(),
              static_cast<grid::BusIndex>(sub.buses.size()));
    EXPECT_EQ(m.network.num_branches(), sub.internal_branches.size());
    for (const bool own : m.own) {
      EXPECT_TRUE(own);
    }
    expect_index_roundtrip(m);
  }
}

TEST_F(SubsystemModelTest, ExtendedModelAddsNeighborBusesAndTies) {
  for (int s = 0; s < d_.num_subsystems(); ++s) {
    const SubsystemModel local = extract_local(generated_.kase.network, d_, s);
    const SubsystemModel ext = extract_extended(generated_.kase.network, d_, s);
    EXPECT_GT(ext.network.num_buses(), local.network.num_buses());
    EXPECT_GT(ext.network.num_branches(), local.network.num_branches());
    // every tie line of s must be present in the extended model
    const Subsystem& sub = d_.subsystems[static_cast<std::size_t>(s)];
    for (const std::size_t tie : sub.tie_branches) {
      EXPECT_TRUE(ext.local_branch_of_global.count(tie) > 0)
          << "subsystem " << s << " tie " << tie;
    }
  }
}

TEST_F(SubsystemModelTest, FilterKeepsOnlyEvaluableMeasurements) {
  const SubsystemModel m = extract_local(generated_.kase.network, d_, 2);
  const grid::MeasurementSet local = m.filter(global_set_, generated_.kase.network);
  EXPECT_GT(local.size(), 0u);
  grid::validate_measurements(m.network, local);
  // no measurement may reference a bus outside the model
  for (const grid::Measurement& meas : local.items) {
    EXPECT_LT(meas.bus, m.network.num_buses());
  }
}

TEST_F(SubsystemModelTest, FilteredInjectionValuesMatchLocalModel) {
  // The h(x) of a filtered injection on the local network must equal the
  // global measurement value (that is what remap() guarantees).
  const SubsystemModel m = extract_local(generated_.kase.network, d_, 4);
  const grid::MeasurementSet local = m.filter(global_set_, generated_.kase.network);
  const grid::GridState local_state = m.gather_state(pf_.state);
  const grid::StateIndex idx(m.network.num_buses(), 0);
  const grid::MeasurementModel model(m.network, idx);
  const auto h = model.evaluate(local, local_state);
  for (std::size_t i = 0; i < local.size(); ++i) {
    EXPECT_NEAR(h[i], local.items[i].value, 1e-9)
        << grid::meas_type_name(local.items[i].type) << " #" << i;
  }
}

TEST_F(SubsystemModelTest, BoundaryInjectionsExcludedFromLocalModel) {
  const int s = 0;
  const SubsystemModel m = extract_local(generated_.kase.network, d_, s);
  const grid::MeasurementSet local = m.filter(global_set_, generated_.kase.network);
  const Subsystem& sub = d_.subsystems[static_cast<std::size_t>(s)];
  const std::set<grid::BusIndex> boundary(sub.boundary_buses.begin(),
                                          sub.boundary_buses.end());
  for (const grid::Measurement& meas : local.items) {
    if (meas.type == grid::MeasType::kPInjection ||
        meas.type == grid::MeasType::kQInjection) {
      const grid::BusIndex global = m.global_bus[static_cast<std::size_t>(meas.bus)];
      EXPECT_TRUE(boundary.count(global) == 0)
          << "boundary injection leaked into local set";
    }
  }
}

TEST_F(SubsystemModelTest, ExtendedModelIncludesOwnBoundaryInjections) {
  const int s = 0;
  const SubsystemModel ext = extract_extended(generated_.kase.network, d_, s);
  const grid::MeasurementSet set = ext.filter(global_set_, generated_.kase.network);
  const Subsystem& sub = d_.subsystems[static_cast<std::size_t>(s)];
  int boundary_injections = 0;
  for (const grid::Measurement& meas : set.items) {
    if (meas.type != grid::MeasType::kPInjection) continue;
    const grid::BusIndex global = ext.global_bus[static_cast<std::size_t>(meas.bus)];
    if (std::find(sub.boundary_buses.begin(), sub.boundary_buses.end(),
                  global) != sub.boundary_buses.end()) {
      ++boundary_injections;
    }
  }
  EXPECT_GT(boundary_injections, 0);
}

TEST_F(SubsystemModelTest, ScatterGatherRoundTrip) {
  const SubsystemModel m = extract_local(generated_.kase.network, d_, 3);
  const grid::GridState local = m.gather_state(pf_.state);
  grid::GridState global(generated_.kase.network.num_buses());
  m.scatter_state(local, global);
  for (const grid::BusIndex g : m.global_bus) {
    EXPECT_DOUBLE_EQ(global.theta[static_cast<std::size_t>(g)],
                     pf_.state.theta[static_cast<std::size_t>(g)]);
    EXPECT_DOUBLE_EQ(global.vm[static_cast<std::size_t>(g)],
                     pf_.state.vm[static_cast<std::size_t>(g)]);
  }
}

TEST_F(SubsystemModelTest, ScatterOwnOnlySkipsRemoteBuses) {
  const SubsystemModel ext = extract_extended(generated_.kase.network, d_, 1);
  grid::GridState local(ext.network.num_buses());
  for (auto& v : local.vm) v = 9.0;  // sentinel
  grid::GridState global(generated_.kase.network.num_buses());
  ext.scatter_state(local, global, /*own_buses_only=*/true);
  for (grid::BusIndex l = 0; l < ext.network.num_buses(); ++l) {
    const grid::BusIndex g = ext.global_bus[static_cast<std::size_t>(l)];
    if (ext.own[static_cast<std::size_t>(l)]) {
      EXPECT_DOUBLE_EQ(global.vm[static_cast<std::size_t>(g)], 9.0);
    } else {
      EXPECT_DOUBLE_EQ(global.vm[static_cast<std::size_t>(g)], 1.0);
    }
  }
}

}  // namespace
}  // namespace gridse::decomp
