#include "decomp/decomposition.hpp"

#include <gtest/gtest.h>

#include <set>

#include "io/synthetic.hpp"
#include "util/error.hpp"

namespace gridse::decomp {
namespace {

class DecompositionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    generated_ = io::ieee118_dse();
    d_ = decompose(generated_.kase.network, generated_.subsystem_of_bus);
  }
  io::GeneratedCase generated_;
  Decomposition d_;
};

TEST_F(DecompositionTest, SubsystemsPartitionTheBuses) {
  EXPECT_EQ(d_.num_subsystems(), 9);
  std::set<grid::BusIndex> seen;
  std::size_t total = 0;
  for (const Subsystem& s : d_.subsystems) {
    total += s.buses.size();
    seen.insert(s.buses.begin(), s.buses.end());
  }
  EXPECT_EQ(total, 118u);
  EXPECT_EQ(seen.size(), 118u);
}

TEST_F(DecompositionTest, TieLinesCrossSubsystems) {
  for (std::size_t i = 0; i < d_.tie_lines.size(); ++i) {
    const grid::Branch& br = generated_.kase.network.branch(d_.tie_lines[i]);
    const int sf = d_.subsystem_of_bus[static_cast<std::size_t>(br.from)];
    const int st = d_.subsystem_of_bus[static_cast<std::size_t>(br.to)];
    EXPECT_NE(sf, st);
    EXPECT_EQ(d_.tie_subsystem_pairs[i], std::make_pair(sf, st));
  }
}

TEST_F(DecompositionTest, InternalBranchesStayInside) {
  for (const Subsystem& s : d_.subsystems) {
    for (const std::size_t bi : s.internal_branches) {
      const grid::Branch& br = generated_.kase.network.branch(bi);
      EXPECT_EQ(d_.subsystem_of_bus[static_cast<std::size_t>(br.from)], s.id);
      EXPECT_EQ(d_.subsystem_of_bus[static_cast<std::size_t>(br.to)], s.id);
    }
  }
}

TEST_F(DecompositionTest, BoundaryBusesTouchTies) {
  for (const Subsystem& s : d_.subsystems) {
    EXPECT_FALSE(s.boundary_buses.empty());
    for (const grid::BusIndex b : s.boundary_buses) {
      bool touches_tie = false;
      for (const std::size_t bi :
           generated_.kase.network.branches_at(b)) {
        const grid::Branch& br = generated_.kase.network.branch(bi);
        const int sf = d_.subsystem_of_bus[static_cast<std::size_t>(br.from)];
        const int st = d_.subsystem_of_bus[static_cast<std::size_t>(br.to)];
        touches_tie |= sf != st;
      }
      EXPECT_TRUE(touches_tie) << "bus " << b;
    }
  }
}

TEST_F(DecompositionTest, NeighborPairsMatchFigure3) {
  const auto pairs = d_.neighbor_pairs();
  std::set<std::pair<int, int>> expected;
  for (const auto& [a, b] : generated_.decomposition_edges) {
    expected.insert(std::minmax(a, b));
  }
  using PairSet = std::set<std::pair<int, int>>;
  EXPECT_EQ(PairSet(pairs.begin(), pairs.end()), expected);
}

TEST_F(DecompositionTest, NeighborsOfIsSymmetric) {
  for (int s = 0; s < d_.num_subsystems(); ++s) {
    for (const int t : d_.neighbors_of(s)) {
      const auto back = d_.neighbors_of(t);
      EXPECT_NE(std::find(back.begin(), back.end(), s), back.end());
    }
  }
}

TEST_F(DecompositionTest, DecompositionGraphShape) {
  const graph::WeightedGraph g = d_.decomposition_graph();
  EXPECT_EQ(g.num_vertices(), 9);
  EXPECT_EQ(g.num_edges(), 12u);
  // vertex weights are bus counts
  EXPECT_DOUBLE_EQ(g.vertex_weight(0), 14.0);
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 118.0);
}

TEST(Decompose, RejectsBadMembership) {
  const auto g = io::ieee118_dse();
  std::vector<int> wrong_size(10, 0);
  EXPECT_THROW(decompose(g.kase.network, wrong_size), InvalidInput);

  std::vector<int> negative(118, 0);
  negative[5] = -1;
  EXPECT_THROW(decompose(g.kase.network, negative), InvalidInput);

  std::vector<int> gap(118, 0);
  gap[0] = 2;  // subsystem 1 empty
  EXPECT_THROW(decompose(g.kase.network, gap), InvalidInput);
}

TEST(Decompose, RejectsInternallyDisconnectedSubsystem) {
  // Two buses of subsystem 0 connected only through subsystem 1.
  grid::Network n;
  for (int i = 1; i <= 3; ++i) {
    grid::Bus b;
    b.external_id = i;
    b.type = i == 1 ? grid::BusType::kSlack : grid::BusType::kPQ;
    n.add_bus(b);
  }
  grid::Branch br;
  br.x = 0.1;
  br.from = 0;
  br.to = 1;
  n.add_branch(br);
  br.from = 1;
  br.to = 2;
  n.add_branch(br);
  const std::vector<int> membership{0, 1, 0};
  EXPECT_THROW(decompose(n, membership), InvalidInput);
}

TEST(Decompose, SingleSubsystemHasNoTies) {
  const auto g = io::ieee118_dse();
  const std::vector<int> all_zero(118, 0);
  const Decomposition d = decompose(g.kase.network, all_zero);
  EXPECT_EQ(d.num_subsystems(), 1);
  EXPECT_TRUE(d.tie_lines.empty());
  EXPECT_TRUE(d.subsystems[0].boundary_buses.empty());
  EXPECT_TRUE(d.neighbor_pairs().empty());
}

}  // namespace
}  // namespace gridse::decomp
