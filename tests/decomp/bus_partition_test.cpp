// Bus-level partitioning (decomp/bus_partition): the coupling graph must
// mirror the network's electrical structure, and partition_buses must
// always hand decompose() an assignment it accepts — contiguous part ids,
// non-empty parts, every part internally connected — on the reference
// cases the rest of the suite uses.
#include "decomp/bus_partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "decomp/decomposition.hpp"
#include "io/synthetic.hpp"

namespace gridse::decomp {
namespace {

TEST(BusCouplingGraph, MirrorsNetworkTopology) {
  const io::GeneratedCase gc = io::ieee118_dse();
  const grid::Network& net = gc.kase.network;
  const graph::WeightedGraph g = bus_coupling_graph(net);
  ASSERT_EQ(g.num_vertices(), net.num_buses());

  // Every branch must appear as an edge; parallel branches collapse into
  // one edge whose weight accumulates the per-branch susceptance terms
  // (1/|x|). Rebuild that map independently and compare it to the graph's
  // edge list exactly.
  using Key = std::pair<grid::BusIndex, grid::BusIndex>;
  std::map<Key, double> expected;
  for (const grid::Branch& br : net.branches()) {
    expected[std::minmax(br.from, br.to)] +=
        1.0 / std::max(std::abs(br.x), 1e-6);
  }
  EXPECT_EQ(g.num_edges(), expected.size());
  for (const graph::Edge& e : g.edges()) {
    const auto it = expected.find(std::minmax(e.u, e.v));
    ASSERT_NE(it, expected.end()) << e.u << "-" << e.v;
    EXPECT_NEAR(e.weight, it->second, 1e-9);
  }
}

void expect_decomposable(const io::GeneratedCase& gc, int k) {
  graph::PartitionOptions opts;
  opts.k = k;
  opts.seed = 5;
  const std::vector<int> assignment =
      partition_buses(gc.kase.network, opts);
  ASSERT_EQ(assignment.size(),
            static_cast<std::size_t>(gc.kase.network.num_buses()));
  // decompose() enforces the full contract (contiguous ids, non-empty,
  // internally connected) and throws InvalidInput on any violation.
  const Decomposition d = decompose(gc.kase.network, assignment);
  EXPECT_EQ(d.num_subsystems(), k);
  for (const Subsystem& s : d.subsystems) {
    EXPECT_FALSE(s.buses.empty());
  }
}

TEST(PartitionBuses, Ieee118DecomposesCleanly) {
  const io::GeneratedCase gc = io::ieee118_dse();
  for (const int k : {4, 9, 16}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    expect_decomposable(gc, k);
  }
}

TEST(PartitionBuses, Wecc37DecomposesCleanly) {
  expect_decomposable(io::wecc37(), 6);
}

TEST(PartitionBuses, ObjectiveChangesSplitNotValidity) {
  // On small cases (ieee118) the two objectives can legitimately agree; the
  // 10k hierarchical tier is where they provably diverge. Both splits must
  // still satisfy decompose()'s contract.
  const io::GeneratedCase gc = io::interconnection10k();
  graph::PartitionOptions opts;
  opts.k = 32;
  opts.seed = 7;
  opts.objective = graph::PartitionObjective::kConvergenceAware;
  const std::vector<int> conv = partition_buses(gc.kase.network, opts);
  decompose(gc.kase.network, conv);  // must not throw
  opts.objective = graph::PartitionObjective::kEdgeCut;
  const std::vector<int> cut = partition_buses(gc.kase.network, opts);
  decompose(gc.kase.network, cut);
  // A tie here would mean the objective is not wired through to the bus
  // level at all.
  EXPECT_NE(conv, cut);
}

}  // namespace
}  // namespace gridse::decomp
