#include "grid/ybus.hpp"

#include <gtest/gtest.h>

#include "io/case14.hpp"

namespace gridse::grid {
namespace {

using C = std::complex<double>;

TEST(BranchAdmittance, PlainLine) {
  Branch b;
  b.r = 0.0;
  b.x = 0.1;
  b.b_charging = 0.02;
  const BranchAdmittance a = branch_admittance(b);
  const C y = 1.0 / C(0.0, 0.1);
  EXPECT_NEAR(std::abs(a.yff - (y + C(0.0, 0.01))), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(a.ytt - a.yff), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(a.yft + y), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(a.ytf + y), 0.0, 1e-12);
}

TEST(BranchAdmittance, TapChanger) {
  Branch b;
  b.r = 0.01;
  b.x = 0.1;
  b.tap = 0.95;
  const BranchAdmittance a = branch_admittance(b);
  const C y = 1.0 / C(0.01, 0.1);
  EXPECT_NEAR(std::abs(a.yff - y / (0.95 * 0.95)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(a.ytt - y), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(a.yft + y / 0.95), 0.0, 1e-12);
}

TEST(BranchAdmittance, PhaseShifterBreaksSymmetry) {
  Branch b;
  b.r = 0.0;
  b.x = 0.1;
  b.phase_shift = 0.1;
  const BranchAdmittance a = branch_admittance(b);
  EXPECT_GT(std::abs(a.yft - a.ytf), 1e-6);
  // magnitudes stay equal
  EXPECT_NEAR(std::abs(a.yft), std::abs(a.ytf), 1e-12);
}

TEST(Ybus, RowSumsVanishForShuntFreeNetwork) {
  // Without shunts/charging, each Ybus row sums to zero (KCL structure).
  Network n;
  for (int i = 1; i <= 3; ++i) {
    Bus b;
    b.external_id = i;
    b.type = i == 1 ? BusType::kSlack : BusType::kPQ;
    n.add_bus(b);
  }
  Branch br;
  br.x = 0.1;
  br.r = 0.01;
  br.from = 0;
  br.to = 1;
  n.add_branch(br);
  br.from = 1;
  br.to = 2;
  n.add_branch(br);
  const auto y = build_ybus(n);
  for (sparse::Index r = 0; r < 3; ++r) {
    C sum{};
    const auto [b, e] = y.row_range(r);
    for (auto k = b; k < e; ++k) {
      sum += y.values()[static_cast<std::size_t>(k)];
    }
    EXPECT_NEAR(std::abs(sum), 0.0, 1e-12);
  }
}

TEST(Ybus, SymmetricWithoutPhaseShifters) {
  const auto c = io::ieee14();
  const auto y = build_ybus(c.network);
  for (sparse::Index i = 0; i < y.rows(); ++i) {
    for (sparse::Index j = 0; j < y.cols(); ++j) {
      EXPECT_NEAR(std::abs(y.value_at(i, j) - y.value_at(j, i)), 0.0, 1e-12);
    }
  }
}

TEST(Ybus, Ieee14KnownDiagonal) {
  // Spot-check Y(7,7) (bus 8, only branch 7-8 with x=0.17615): diagonal is
  // 1/(j0.17615) = -j5.677.
  const auto c = io::ieee14();
  const auto y = build_ybus(c.network);
  const auto idx = c.network.index_of(8);
  const C y88 = y.value_at(idx, idx);
  EXPECT_NEAR(y88.real(), 0.0, 1e-9);
  EXPECT_NEAR(y88.imag(), -1.0 / 0.17615, 1e-6);
}

TEST(Ybus, ShuntAppearsOnDiagonal) {
  // IEEE 14 bus 9 has a 0.19 p.u. shunt susceptance.
  const auto c = io::ieee14();
  const auto y = build_ybus(c.network);
  const auto idx9 = c.network.index_of(9);
  // Remove branch contributions by rebuilding without the shunt: simply
  // verify the imaginary part is 0.19 larger than the no-shunt sum of
  // branch admittances.
  C branch_sum{};
  for (const std::size_t bi : c.network.branches_at(idx9)) {
    const Branch& br = c.network.branch(bi);
    const BranchAdmittance a = branch_admittance(br);
    branch_sum += (br.from == idx9) ? a.yff : a.ytt;
  }
  EXPECT_NEAR(y.value_at(idx9, idx9).imag() - branch_sum.imag(), 0.19, 1e-12);
}

}  // namespace
}  // namespace gridse::grid
