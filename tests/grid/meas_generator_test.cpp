#include "grid/meas_generator.hpp"

#include <gtest/gtest.h>

#include "grid/powerflow.hpp"
#include "io/case14.hpp"

namespace gridse::grid {
namespace {

class MeasGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kase_ = io::ieee14();
    pf_ = solve_power_flow(kase_.network);
    ASSERT_TRUE(pf_.converged);
  }
  io::Case kase_;
  PowerFlowResult pf_;
};

TEST_F(MeasGeneratorTest, DefaultPlanCountsAddUp) {
  const MeasurementGenerator gen(kase_.network, {});
  const MeasurementSet set = gen.generate_noiseless(pf_.state);
  // 20 branches * 2 ends * 2 types + 14 buses * (P + Q + V)
  EXPECT_EQ(set.size(), 20u * 4u + 14u * 3u);
  validate_measurements(kase_.network, set);
}

TEST_F(MeasGeneratorTest, PlanTogglesRespected) {
  MeasurementPlan plan;
  plan.branch_p_flows = false;
  plan.branch_q_flows = false;
  plan.bus_q_injections = false;
  const MeasurementGenerator gen(kase_.network, plan);
  const MeasurementSet set = gen.generate_noiseless(pf_.state);
  EXPECT_EQ(set.size(), 14u * 2u);  // P injections + V mags only
  for (const Measurement& m : set.items) {
    EXPECT_TRUE(m.type == MeasType::kPInjection || m.type == MeasType::kVMag);
  }
}

TEST_F(MeasGeneratorTest, ExplicitPmuPlacement) {
  MeasurementPlan plan;
  plan.pmu_buses = {0, 5, 9};
  const MeasurementGenerator gen(kase_.network, plan);
  const MeasurementSet set = gen.generate_noiseless(pf_.state);
  int angles = 0;
  for (const Measurement& m : set.items) {
    if (m.type == MeasType::kVAngle) {
      ++angles;
      EXPECT_TRUE(m.bus == 0 || m.bus == 5 || m.bus == 9);
    }
  }
  EXPECT_EQ(angles, 3);
}

TEST_F(MeasGeneratorTest, OutOfRangePmuRejected) {
  MeasurementPlan plan;
  plan.pmu_buses = {99};
  const MeasurementGenerator gen(kase_.network, plan);
  EXPECT_THROW(gen.generate_noiseless(pf_.state), InternalError);
}

TEST_F(MeasGeneratorTest, NoiseIsDeterministicPerSeed) {
  const MeasurementGenerator gen(kase_.network, {});
  Rng a(5);
  Rng b(5);
  const MeasurementSet s1 = gen.generate(pf_.state, a);
  const MeasurementSet s2 = gen.generate(pf_.state, b);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1.items[i].value, s2.items[i].value);
  }
}

TEST_F(MeasGeneratorTest, NoiseScalesWithSigma) {
  MeasurementPlan loud;
  loud.noise_level = 4.0;
  const MeasurementGenerator quiet_gen(kase_.network, {});
  const MeasurementGenerator loud_gen(kase_.network, loud);
  Rng ra(9);
  Rng rb(9);
  const MeasurementSet quiet = quiet_gen.generate(pf_.state, ra);
  const MeasurementSet noisy = loud_gen.generate(pf_.state, rb);
  const MeasurementSet truth = quiet_gen.generate_noiseless(pf_.state);
  double quiet_dev = 0.0;
  double noisy_dev = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    quiet_dev += std::abs(quiet.items[i].value - truth.items[i].value);
    noisy_dev += std::abs(noisy.items[i].value - truth.items[i].value);
  }
  EXPECT_GT(noisy_dev, 2.0 * quiet_dev);
}

TEST_F(MeasGeneratorTest, ZeroNoiseLevelStillHasPositiveSigma) {
  MeasurementPlan plan;
  plan.noise_level = 0.0;
  const MeasurementGenerator gen(kase_.network, plan);
  const MeasurementSet set = gen.generate_noiseless(pf_.state);
  for (const Measurement& m : set.items) {
    EXPECT_GT(m.sigma, 0.0);
  }
  EXPECT_NO_THROW(set.weights());
}

TEST_F(MeasGeneratorTest, TimestampPropagates) {
  const MeasurementGenerator gen(kase_.network, {});
  Rng rng(1);
  const MeasurementSet set = gen.generate(pf_.state, rng, 123.5);
  EXPECT_DOUBLE_EQ(set.timestamp, 123.5);
}

TEST(MeasurementSet, WeightsAreInverseVariance) {
  MeasurementSet set;
  set.items.push_back({MeasType::kVMag, 0, -1, true, 1.0, 0.5});
  const auto w = set.weights();
  EXPECT_DOUBLE_EQ(w[0], 4.0);
}

TEST(MeasurementSet, NonPositiveSigmaThrows) {
  MeasurementSet set;
  set.items.push_back({MeasType::kVMag, 0, -1, true, 1.0, 0.0});
  EXPECT_THROW(set.weights(), InternalError);
}

TEST(ValidateMeasurements, CatchesBadReferences) {
  const auto c = io::ieee14();
  MeasurementSet set;
  // flow bus not matching branch end
  set.items.push_back({MeasType::kPFlow, 5, 0, true, 0.0, 0.01});
  EXPECT_THROW(validate_measurements(c.network, set), InvalidInput);
  set.items.clear();
  // branch out of range
  set.items.push_back({MeasType::kPFlow, 0, 999, true, 0.0, 0.01});
  EXPECT_THROW(validate_measurements(c.network, set), InvalidInput);
  set.items.clear();
  // injection with branch set
  set.items.push_back({MeasType::kPInjection, 0, 3, true, 0.0, 0.01});
  EXPECT_THROW(validate_measurements(c.network, set), InvalidInput);
}

}  // namespace
}  // namespace gridse::grid
