#include "grid/dc_powerflow.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "grid/powerflow.hpp"
#include "io/case14.hpp"
#include "util/error.hpp"
#include "io/synthetic.hpp"

namespace gridse::grid {
namespace {

TEST(DcPowerFlow, TwoBusAnalytic) {
  Network n;
  Bus slack;
  slack.external_id = 1;
  slack.type = BusType::kSlack;
  n.add_bus(slack);
  Bus load;
  load.external_id = 2;
  load.p_load = 0.5;
  n.add_bus(load);
  Branch b;
  b.from = 0;
  b.to = 1;
  b.x = 0.1;
  n.add_branch(b);
  const auto r = solve_dc_power_flow(n);
  ASSERT_TRUE(r.has_value());
  // flow = P = 0.5 from slack to load; theta2 = -P*x = -0.05
  EXPECT_NEAR(r->flows[0], 0.5, 1e-12);
  EXPECT_NEAR(r->theta[1], -0.05, 1e-12);
  EXPECT_DOUBLE_EQ(r->theta[0], 0.0);
}

TEST(DcPowerFlow, FlowsBalanceAtEveryBus) {
  const auto c = io::ieee14();
  const auto r = solve_dc_power_flow(c.network);
  ASSERT_TRUE(r.has_value());
  for (BusIndex i = 0; i < c.network.num_buses(); ++i) {
    if (i == c.network.slack_bus()) continue;  // slack absorbs the balance
    double net = 0.0;
    for (const std::size_t bi : c.network.branches_at(i)) {
      const Branch& br = c.network.branch(bi);
      net += (br.from == i) ? -r->flows[bi] : r->flows[bi];
    }
    EXPECT_NEAR(net, -c.network.scheduled_injection(i).first, 1e-9)
        << "bus " << i;
  }
}

TEST(DcPowerFlow, ApproximatesAcAngles) {
  // DC angles track the AC solution within a few degrees on IEEE 14.
  const auto c = io::ieee14();
  const auto dc = solve_dc_power_flow(c.network);
  const auto ac = solve_power_flow(c.network);
  ASSERT_TRUE(dc.has_value());
  ASSERT_TRUE(ac.converged);
  for (BusIndex i = 0; i < c.network.num_buses(); ++i) {
    EXPECT_NEAR(dc->theta[static_cast<std::size_t>(i)],
                ac.state.theta[static_cast<std::size_t>(i)], 0.06)
        << "bus " << i;
  }
}

TEST(DcPowerFlow, OutageRedistributesFlow) {
  const auto c = io::ieee14();
  const auto base = solve_dc_power_flow(c.network);
  // Outage branch 0 (line 1-2, the heaviest): the parallel path 1-5 must
  // pick up its flow.
  const auto post = solve_dc_power_flow(c.network, {0});
  ASSERT_TRUE(base.has_value() && post.has_value());
  EXPECT_DOUBLE_EQ(post->flows[0], 0.0);
  EXPECT_GT(std::abs(post->flows[1]), std::abs(base->flows[1]));
}

TEST(DcPowerFlow, IslandingDetected) {
  // Branch 13 is 7-8, the only line to bus 8: removing it islands bus 8.
  const auto c = io::ieee14();
  const auto idx8 = c.network.index_of(8);
  std::size_t radial = SIZE_MAX;
  for (const std::size_t bi : c.network.branches_at(idx8)) {
    radial = bi;
  }
  ASSERT_EQ(c.network.branches_at(idx8).size(), 1u);
  EXPECT_FALSE(solve_dc_power_flow(c.network, {radial}).has_value());
}

TEST(DcPowerFlow, MultipleOutagesSupported) {
  const auto c = io::ieee14();
  const auto r = solve_dc_power_flow(c.network, {2, 4});
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->flows[2], 0.0);
  EXPECT_DOUBLE_EQ(r->flows[4], 0.0);
}

TEST(DcPowerFlow, OutOfRangeOutageThrows) {
  const auto c = io::ieee14();
  EXPECT_THROW(solve_dc_power_flow(c.network, {999}), InternalError);
}

TEST(AssignRatings, RespectsMarginAndFloor) {
  auto c = io::ieee14();
  const DcPowerFlow base =
      assign_ratings_from_base_case(c.network, 1.5, 0.3);
  for (std::size_t bi = 0; bi < c.network.num_branches(); ++bi) {
    const double rating = c.network.branch(bi).rating;
    EXPECT_GE(rating, 0.3 - 1e-12);
    EXPECT_GE(rating, 1.5 * std::abs(base.flows[bi]) - 1e-12);
    // base case must be secure under its own ratings
    EXPECT_LE(std::abs(base.flows[bi]), rating + 1e-12);
  }
}

TEST(AssignRatings, RejectsBadMargin) {
  auto c = io::ieee14();
  EXPECT_THROW(assign_ratings_from_base_case(c.network, 1.0), InternalError);
}

}  // namespace
}  // namespace gridse::grid
