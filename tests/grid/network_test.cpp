#include "grid/network.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace gridse::grid {
namespace {

Network two_bus() {
  Network n;
  Bus slack;
  slack.external_id = 1;
  slack.type = BusType::kSlack;
  n.add_bus(slack);
  Bus load;
  load.external_id = 2;
  load.p_load = 0.5;
  load.q_load = 0.1;
  n.add_bus(load);
  Branch b;
  b.from = 0;
  b.to = 1;
  b.x = 0.1;
  n.add_branch(b);
  return n;
}

TEST(Network, BasicConstruction) {
  const Network n = two_bus();
  EXPECT_EQ(n.num_buses(), 2);
  EXPECT_EQ(n.num_branches(), 1u);
  EXPECT_EQ(n.slack_bus(), 0);
  EXPECT_EQ(n.index_of(2), 1);
  n.validate();
}

TEST(Network, DuplicateExternalIdRejected) {
  Network n = two_bus();
  Bus dup;
  dup.external_id = 1;
  EXPECT_THROW(n.add_bus(dup), InvalidInput);
}

TEST(Network, UnknownExternalIdThrows) {
  const Network n = two_bus();
  EXPECT_THROW((void)n.index_of(99), InvalidInput);
}

TEST(Network, BranchValidation) {
  Network n = two_bus();
  Branch bad;
  bad.from = 0;
  bad.to = 0;
  bad.x = 0.1;
  EXPECT_THROW(n.add_branch(bad), InvalidInput);
  bad.to = 5;
  EXPECT_THROW(n.add_branch(bad), InvalidInput);
  bad.to = 1;
  bad.x = 0.0;
  bad.r = 0.0;
  EXPECT_THROW(n.add_branch(bad), InvalidInput);
  bad.x = 0.1;
  bad.tap = 0.0;
  EXPECT_THROW(n.add_branch(bad), InvalidInput);
}

TEST(Network, SlackCountEnforced) {
  Network none;
  Bus b1;
  b1.external_id = 1;
  none.add_bus(b1);
  EXPECT_THROW((void)none.slack_bus(), InvalidInput);

  Network two = two_bus();
  two.set_bus_type(1, BusType::kSlack, 1.0);
  EXPECT_THROW((void)two.slack_bus(), InvalidInput);
}

TEST(Network, ConnectivityDetection) {
  Network n = two_bus();
  EXPECT_TRUE(n.connected());
  Bus isolated;
  isolated.external_id = 3;
  n.add_bus(isolated);
  EXPECT_FALSE(n.connected());
  EXPECT_THROW(n.validate(), InvalidInput);
}

TEST(Network, ScheduledInjection) {
  Network n = two_bus();
  n.add_generation(1, 0.3, 0.05);
  const auto [p, q] = n.scheduled_injection(1);
  EXPECT_DOUBLE_EQ(p, 0.3 - 0.5);
  EXPECT_DOUBLE_EQ(q, 0.05 - 0.1);
}

TEST(Network, ScaleLoadsMultipliesLoadAndGeneration) {
  Network n = two_bus();
  n.add_generation(1, 0.3, 0.05);
  n.scale_loads(2.0);
  EXPECT_DOUBLE_EQ(n.bus(1).p_load, 1.0);
  EXPECT_DOUBLE_EQ(n.bus(1).q_load, 0.2);
  EXPECT_DOUBLE_EQ(n.bus(1).p_gen, 0.6);
  EXPECT_THROW(n.scale_loads(0.0), InternalError);
}

TEST(Network, BranchRatingMutator) {
  Network n = two_bus();
  n.set_branch_rating(0, 1.5);
  EXPECT_DOUBLE_EQ(n.branch(0).rating, 1.5);
  EXPECT_THROW(n.set_branch_rating(5, 1.0), InternalError);
  EXPECT_THROW(n.set_branch_rating(0, -1.0), InternalError);
}

TEST(Network, BranchesAtTracksIncidence) {
  Network n = two_bus();
  Bus third;
  third.external_id = 3;
  n.add_bus(third);
  Branch b;
  b.from = 1;
  b.to = 2;
  b.x = 0.2;
  n.add_branch(b);
  EXPECT_EQ(n.branches_at(0).size(), 1u);
  EXPECT_EQ(n.branches_at(1).size(), 2u);
  EXPECT_EQ(n.branches_at(2).size(), 1u);
}

}  // namespace
}  // namespace gridse::grid
