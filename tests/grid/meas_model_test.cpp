#include "grid/meas_model.hpp"

#include <gtest/gtest.h>

#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/case14.hpp"
#include "util/rng.hpp"

namespace gridse::grid {
namespace {

/// Property test: the analytic Jacobian must match central finite
/// differences of h(x) at a realistic operating point, for every
/// measurement type. This is the strongest single check of the whole
/// measurement model.
TEST(MeasModel, JacobianMatchesFiniteDifferences) {
  const auto c = io::ieee14();
  const PowerFlowResult pf = solve_power_flow(c.network);
  ASSERT_TRUE(pf.converged);

  MeasurementPlan plan;
  plan.pmu_coverage = 0.25;
  const MeasurementGenerator gen(c.network, plan);
  const MeasurementSet set = gen.generate_noiseless(pf.state);

  const StateIndex index(c.network.num_buses(), c.network.slack_bus());
  const MeasurementModel model(c.network, index);
  const sparse::Csr jac = model.jacobian(set, pf.state);

  const double eps = 1e-6;
  std::vector<double> x = index.pack(pf.state);
  for (std::int32_t col = 0; col < index.size(); ++col) {
    std::vector<double> xp = x;
    std::vector<double> xm = x;
    xp[static_cast<std::size_t>(col)] += eps;
    xm[static_cast<std::size_t>(col)] -= eps;
    const auto hp = model.evaluate(set, index.unpack(xp));
    const auto hm = model.evaluate(set, index.unpack(xm));
    for (std::size_t row = 0; row < set.size(); ++row) {
      const double fd = (hp[row] - hm[row]) / (2.0 * eps);
      const double an = jac.value_at(static_cast<sparse::Index>(row), col);
      EXPECT_NEAR(an, fd, 1e-5)
          << meas_type_name(set.items[row].type) << " row " << row << " col "
          << col;
    }
  }
}

TEST(MeasModel, NoiselessMeasurementsMatchTruthExactly) {
  const auto c = io::ieee14();
  const PowerFlowResult pf = solve_power_flow(c.network);
  const MeasurementGenerator gen(c.network, {});
  const MeasurementSet set = gen.generate_noiseless(pf.state);
  const StateIndex index(c.network.num_buses(), c.network.slack_bus());
  const MeasurementModel model(c.network, index);
  const auto h = model.evaluate(set, pf.state);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_NEAR(h[i], set.items[i].value, 1e-12);
  }
}

TEST(MeasModel, InjectionsMatchPowerFlowInjections) {
  const auto c = io::ieee14();
  const PowerFlowResult pf = solve_power_flow(c.network);
  const auto ybus = build_ybus(c.network);
  const auto [p_ref, q_ref] = bus_injections(ybus, pf.state);

  MeasurementSet set;
  for (BusIndex b = 0; b < c.network.num_buses(); ++b) {
    set.items.push_back({MeasType::kPInjection, b, -1, true, 0.0, 0.01});
    set.items.push_back({MeasType::kQInjection, b, -1, true, 0.0, 0.01});
  }
  const StateIndex index(c.network.num_buses(), c.network.slack_bus());
  const MeasurementModel model(c.network, index);
  const auto h = model.evaluate(set, pf.state);
  for (BusIndex b = 0; b < c.network.num_buses(); ++b) {
    EXPECT_NEAR(h[static_cast<std::size_t>(2 * b)],
                p_ref[static_cast<std::size_t>(b)], 1e-10);
    EXPECT_NEAR(h[static_cast<std::size_t>(2 * b + 1)],
                q_ref[static_cast<std::size_t>(b)], 1e-10);
  }
}

TEST(MeasModel, FlowsBalanceWithLosses) {
  // P_ft + P_tf = series loss >= 0 on every branch at the PF solution.
  const auto c = io::ieee14();
  const PowerFlowResult pf = solve_power_flow(c.network);
  const StateIndex index(c.network.num_buses(), c.network.slack_bus());
  const MeasurementModel model(c.network, index);
  for (std::size_t bi = 0; bi < c.network.num_branches(); ++bi) {
    const Branch& br = c.network.branch(bi);
    MeasurementSet set;
    set.items.push_back({MeasType::kPFlow, br.from,
                         static_cast<std::int32_t>(bi), true, 0.0, 0.01});
    set.items.push_back({MeasType::kPFlow, br.to,
                         static_cast<std::int32_t>(bi), false, 0.0, 0.01});
    const auto h = model.evaluate(set, pf.state);
    EXPECT_GE(h[0] + h[1], -1e-10) << "branch " << bi;
  }
}

TEST(MeasModel, FlowsSumToInjectionAtBus) {
  // Sum of from-side flows over branches at a bus equals its injection
  // (net of shunt) — Kirchhoff consistency of the two h(x) families.
  const auto c = io::ieee14();
  const PowerFlowResult pf = solve_power_flow(c.network);
  const StateIndex index(c.network.num_buses(), c.network.slack_bus());
  const MeasurementModel model(c.network, index);

  const BusIndex bus = c.network.index_of(5);  // no shunt at bus 5
  MeasurementSet set;
  for (const std::size_t bi : c.network.branches_at(bus)) {
    const Branch& br = c.network.branch(bi);
    set.items.push_back({MeasType::kPFlow, bus, static_cast<std::int32_t>(bi),
                         br.from == bus, 0.0, 0.01});
  }
  set.items.push_back({MeasType::kPInjection, bus, -1, true, 0.0, 0.01});
  const auto h = model.evaluate(set, pf.state);
  double flow_sum = 0.0;
  for (std::size_t i = 0; i + 1 < h.size(); ++i) flow_sum += h[i];
  EXPECT_NEAR(flow_sum, h.back(), 1e-10);
}

TEST(MeasModel, JacobianSparsityIsLocal) {
  // A flow measurement touches at most 4 state entries; V/angle exactly 1.
  const auto c = io::ieee14();
  const PowerFlowResult pf = solve_power_flow(c.network);
  MeasurementPlan plan;
  const MeasurementGenerator gen(c.network, plan);
  const MeasurementSet set = gen.generate_noiseless(pf.state);
  const StateIndex index(c.network.num_buses(), c.network.slack_bus());
  const MeasurementModel model(c.network, index);
  const sparse::Csr jac = model.jacobian(set, pf.state);
  for (std::size_t row = 0; row < set.size(); ++row) {
    const auto [b, e] = jac.row_range(static_cast<sparse::Index>(row));
    const int nnz = e - b;
    switch (set.items[row].type) {
      case MeasType::kVMag:
      case MeasType::kVAngle:
        EXPECT_EQ(nnz, 1);
        break;
      case MeasType::kPFlow:
      case MeasType::kQFlow:
        EXPECT_LE(nnz, 4);
        EXPECT_GE(nnz, 3);  // one angle may be the reference
        break;
      default:
        break;  // injections touch the bus neighbourhood
    }
  }
}

}  // namespace
}  // namespace gridse::grid
