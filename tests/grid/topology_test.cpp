// Topology-change model: incremental Ybus maintenance vs full rebuilds,
// island detection vs a brute-force reference, the branch status machine,
// de-energization masking, anchor pseudo measurements, and the island-aware
// DC truth. The load-bearing invariant is the 1e-10 agreement between
// LiveTopology's in-place value patches and build_ybus on the mutated
// network — that is what lets pattern-keyed solver plans survive switching.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <set>
#include <vector>

#include "grid/dc_powerflow.hpp"
#include "grid/meas_generator.hpp"
#include "grid/topology.hpp"
#include "grid/ybus.hpp"
#include "io/synthetic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gridse::grid {
namespace {

Network ieee118() { return io::ieee118_dse().kase.network; }

double max_ybus_diff(const sparse::CsrComplex& a, const sparse::CsrComplex& b) {
  EXPECT_EQ(a.values().size(), b.values().size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.values().size(); ++i) {
    worst = std::max(worst, std::abs(a.values()[i] - b.values()[i]));
  }
  return worst;
}

/// Brute-force islands: repeated scans over in-service branches until no
/// label changes (no BFS, no ordering assumptions beyond min-label).
std::vector<int> brute_force_islands(const Network& network) {
  const auto n = static_cast<std::size_t>(network.num_buses());
  std::vector<int> label(n);
  for (std::size_t i = 0; i < n; ++i) label[i] = static_cast<int>(i);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t bi = 0; bi < network.num_branches(); ++bi) {
      const Branch& br = network.branch(bi);
      if (!br.in_service) continue;
      const auto f = static_cast<std::size_t>(br.from);
      const auto t = static_cast<std::size_t>(br.to);
      const int m = std::min(label[f], label[t]);
      if (label[f] != m || label[t] != m) {
        label[f] = label[t] = m;
        changed = true;
      }
    }
  }
  return label;
}

TEST(LiveTopologyTest, IncrementalYbusMatchesRebuildOverRandomEvents) {
  Network net = ieee118();
  LiveTopology live(net);
  Rng rng(2026);
  const auto num_branches = static_cast<std::int64_t>(net.num_branches());
  for (int step = 0; step < 200; ++step) {
    TopologyEvent e;
    const int kind = static_cast<int>(rng.uniform_int(0, 5));
    e.kind = static_cast<TopologyEventKind>(kind);
    if (kind <= 3) {
      e.branch = static_cast<std::int32_t>(rng.uniform_int(0, num_branches - 1));
    } else {
      e.bus = static_cast<BusIndex>(rng.uniform_int(0, net.num_buses() - 1));
    }
    live.apply(e);
    // Same pattern (explicit zeros for open branches), same values to
    // 1e-10: subtract-then-add uses identical rounding both ways.
    const sparse::CsrComplex rebuilt = build_ybus(net);
    ASSERT_LT(max_ybus_diff(live.ybus(), rebuilt), 1e-10)
        << "diverged after step " << step;
  }
  // Restore everything and require an exact return to the base matrix.
  for (std::size_t bi = 0; bi < net.num_branches(); ++bi) {
    live.apply({TopologyEventKind::kLineRestore,
                static_cast<std::int32_t>(bi), -1});
    live.apply({TopologyEventKind::kBreakerClose,
                static_cast<std::int32_t>(bi), -1});
  }
  EXPECT_EQ(live.num_out_of_service(), 0u);
  EXPECT_LT(max_ybus_diff(live.ybus(), build_ybus(ieee118())), 1e-10);
}

TEST(LiveTopologyTest, StatusMachineFaultDominatesBreaker) {
  Network net = ieee118();
  LiveTopology live(net);
  // Breaker open, then a fault on the same line: status escalates.
  EXPECT_EQ(live.apply({TopologyEventKind::kBreakerOpen, 3, -1}).size(), 1u);
  EXPECT_EQ(live.status(3), BranchStatus::kBreakerOpen);
  // Escalation to fault is a status change (it alters what can reclose
  // the line) even though the in-service bit already flipped.
  EXPECT_EQ(live.apply({TopologyEventKind::kLineOutage, 3, -1}).size(), 1u);
  EXPECT_EQ(live.status(3), BranchStatus::kFaultOutage);
  // Breaker close cannot clear a fault; only restore can.
  EXPECT_TRUE(live.apply({TopologyEventKind::kBreakerClose, 3, -1}).empty());
  EXPECT_EQ(live.status(3), BranchStatus::kFaultOutage);
  EXPECT_EQ(live.apply({TopologyEventKind::kLineRestore, 3, -1}).size(), 1u);
  EXPECT_EQ(live.status(3), BranchStatus::kInService);
  // No-ops return empty change sets.
  EXPECT_TRUE(live.apply({TopologyEventKind::kLineRestore, 3, -1}).empty());
  // Out-of-range indices are rejected.
  EXPECT_THROW(live.apply({TopologyEventKind::kLineOutage, -1, -1}),
               InvalidInput);
  EXPECT_THROW(live.apply({TopologyEventKind::kBusSplit, -1,
                           net.num_buses()}),
               InvalidInput);
}

TEST(LiveTopologyTest, BusSplitOpensIncidentBranchesAndMergeRecloses) {
  Network net = ieee118();
  LiveTopology live(net);
  const BusIndex bus = 30;
  const std::vector<std::size_t> opened =
      live.apply({TopologyEventKind::kBusSplit, -1, bus});
  ASSERT_FALSE(opened.empty());
  EXPECT_TRUE(std::is_sorted(opened.begin(), opened.end()));
  for (const std::size_t bi : opened) {
    EXPECT_EQ(live.status(bi), BranchStatus::kBreakerOpen);
  }
  // A fault on one of the opened lines survives the merge.
  live.apply({TopologyEventKind::kLineOutage,
              static_cast<std::int32_t>(opened.front()), -1});
  const std::vector<std::size_t> closed =
      live.apply({TopologyEventKind::kBusMerge, -1, bus});
  EXPECT_EQ(closed.size(), opened.size() - 1);
  EXPECT_EQ(live.status(opened.front()), BranchStatus::kFaultOutage);
}

TEST(FindIslandsTest, MatchesBruteForceUnderRandomSwitching) {
  Network net = ieee118();
  LiveTopology live(net);
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    for (int k = 0; k < 12; ++k) {
      const auto b = static_cast<std::int32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(net.num_branches()) - 1));
      live.apply({rng.bernoulli(0.6) ? TopologyEventKind::kLineOutage
                                     : TopologyEventKind::kLineRestore,
                  b, -1});
    }
    const IslandReport report = find_islands(net);
    const std::vector<int> brute = brute_force_islands(net);
    // Same partition of buses: two buses share an island iff the brute
    // force gave them the same label.
    std::set<int> distinct(brute.begin(), brute.end());
    EXPECT_EQ(static_cast<std::size_t>(report.num_islands), distinct.size());
    for (std::size_t i = 0; i < brute.size(); ++i) {
      for (std::size_t j = i + 1; j < brute.size(); ++j) {
        EXPECT_EQ(report.island_of_bus[i] == report.island_of_bus[j],
                  brute[i] == brute[j]);
      }
    }
  }
}

TEST(FindIslandsTest, ReferenceAndEnergizationRules) {
  Network net = ieee118();
  const IslandReport base = find_islands(net);
  ASSERT_EQ(base.num_islands, 1);
  // The single connected island holds the slack bus and is energized; its
  // reference is the slack.
  EXPECT_EQ(base.energized[0], 1);
  EXPECT_EQ(net.bus(base.reference_bus[0]).type, BusType::kSlack);

  // Isolate a PQ bus: its island must be de-energized, referenced at its
  // lowest (only) member.
  BusIndex pq = -1;
  for (BusIndex i = 0; i < net.num_buses(); ++i) {
    if (net.bus(i).type == BusType::kPQ) {
      pq = i;
      break;
    }
  }
  ASSERT_GE(pq, 0);
  LiveTopology live(net);
  live.apply({TopologyEventKind::kBusSplit, -1, pq});
  const IslandReport split = find_islands(net);
  ASSERT_GE(split.num_islands, 2);
  const auto island = static_cast<std::size_t>(
      split.island_of_bus[static_cast<std::size_t>(pq)]);
  EXPECT_EQ(split.energized[island], 0);
  EXPECT_FALSE(split.bus_energized(pq));
  EXPECT_EQ(split.reference_bus[island], pq);
}

TEST(MaskMeasurementsTest, ActivePlusMaskedAccountsForEverything) {
  Network net = ieee118();
  MeasurementPlan plan;
  plan.pmu_buses = {0};
  MeasurementGenerator gen(net, plan);
  GridState flat(net.num_buses());
  for (auto& v : flat.vm) v = 1.0;
  Rng rng(3);
  const MeasurementSet set = gen.generate(flat, rng, 0.0);

  LiveTopology live(net);
  live.apply({TopologyEventKind::kLineOutage, 11, -1});
  live.apply({TopologyEventKind::kLineOutage, 12, -1});
  // Isolate a PQ bus to create a dead island.
  BusIndex pq = -1;
  for (BusIndex i = 0; i < net.num_buses(); ++i) {
    if (net.bus(i).type == BusType::kPQ) {
      pq = i;
      break;
    }
  }
  live.apply({TopologyEventKind::kBusSplit, -1, pq});
  const IslandReport islands = find_islands(net);

  const MaskedMeasurements masked = mask_measurements(net, islands, set);
  EXPECT_EQ(masked.active.items.size() + masked.total_masked(),
            set.items.size());
  EXPECT_GT(masked.masked_out_of_service, 0u);
  EXPECT_GT(masked.masked_deenergized, 0u);
  // Nothing active may reference an open branch or a dead bus: masked
  // telemetry must never enter the residual.
  for (const Measurement& m : masked.active.items) {
    if (m.type == MeasType::kPFlow || m.type == MeasType::kQFlow) {
      const Branch& br = net.branch(static_cast<std::size_t>(m.branch));
      EXPECT_TRUE(br.in_service);
      EXPECT_TRUE(islands.bus_energized(br.from));
      EXPECT_TRUE(islands.bus_energized(br.to));
    } else {
      EXPECT_TRUE(islands.bus_energized(m.bus));
    }
  }
}

TEST(AnchorMeasurementsTest, DeadBusesPinnedAndLiveComponentsAnchored) {
  Network net = ieee118();
  LiveTopology live(net);
  BusIndex pq = -1;
  for (BusIndex i = 0; i < net.num_buses(); ++i) {
    if (net.bus(i).type == BusType::kPQ) {
      pq = i;
      break;
    }
  }
  live.apply({TopologyEventKind::kBusSplit, -1, pq});
  const IslandReport islands = find_islands(net);

  MeasurementSet set;  // no angle coverage anywhere
  const std::vector<int> one_group(static_cast<std::size_t>(net.num_buses()),
                                   0);
  GridState prior(net.num_buses());
  for (std::size_t i = 0; i < prior.theta.size(); ++i) {
    prior.theta[i] = 0.01 * static_cast<double>(i);
  }
  AnchorOptions options;
  const std::size_t appended = append_anchor_measurements(
      net, islands, one_group, prior, set, options);
  EXPECT_EQ(appended, set.items.size());

  // The dead bus gets the |V| = 0 / θ = 0 pins.
  std::size_t dead_pins = 0;
  bool live_anchor_at_reference = false;
  for (const Measurement& m : set.items) {
    if (m.bus == pq) {
      EXPECT_EQ(m.value, 0.0);
      EXPECT_EQ(m.sigma, options.dead_sigma);
      ++dead_pins;
    } else if (m.type == MeasType::kVAngle) {
      // The big island holds its reference in this single-group split, so
      // the anchor must sit there with the exact truth value 0.
      const auto island = static_cast<std::size_t>(
          islands.island_of_bus[static_cast<std::size_t>(m.bus)]);
      EXPECT_EQ(m.bus, islands.reference_bus[island]);
      EXPECT_EQ(m.value, 0.0);
      live_anchor_at_reference = true;
    }
  }
  EXPECT_EQ(dead_pins, 2u);
  EXPECT_TRUE(live_anchor_at_reference);

  // Determinism: a second pass over the same inputs appends the same rows.
  MeasurementSet again;
  append_anchor_measurements(net, islands, one_group, prior, again, options);
  ASSERT_EQ(again.items.size(), set.items.size());
  for (std::size_t i = 0; i < set.items.size(); ++i) {
    EXPECT_EQ(again.items[i].bus, set.items[i].bus);
    EXPECT_EQ(again.items[i].value, set.items[i].value);
  }
}

TEST(IslandDcPowerFlowTest, MatchesPlainDcWhenConnectedAndZeroesDeadIslands) {
  Network net = ieee118();
  const IslandReport connected = find_islands(net);
  const DcPowerFlow island_dc = solve_dc_power_flow_islands(net, connected);
  const std::optional<DcPowerFlow> plain = solve_dc_power_flow(net);
  ASSERT_TRUE(plain.has_value());
  for (std::size_t i = 0; i < plain->theta.size(); ++i) {
    EXPECT_NEAR(island_dc.theta[i], plain->theta[i], 1e-9);
  }

  LiveTopology live(net);
  BusIndex pq = -1;
  for (BusIndex i = 0; i < net.num_buses(); ++i) {
    if (net.bus(i).type == BusType::kPQ) {
      pq = i;
      break;
    }
  }
  live.apply({TopologyEventKind::kBusSplit, -1, pq});
  const IslandReport split = find_islands(net);
  const DcPowerFlow dc = solve_dc_power_flow_islands(net, split);
  EXPECT_EQ(dc.theta[static_cast<std::size_t>(pq)], 0.0);
  for (std::size_t bi = 0; bi < net.num_branches(); ++bi) {
    if (!net.branch(bi).in_service) {
      EXPECT_EQ(dc.flows[bi], 0.0);
    }
  }
}

}  // namespace
}  // namespace gridse::grid
