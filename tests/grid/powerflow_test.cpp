#include "grid/powerflow.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "io/case14.hpp"
#include "io/synthetic.hpp"

namespace gridse::grid {
namespace {

constexpr double kDeg = 3.14159265358979323846 / 180.0;

TEST(PowerFlow, Ieee14MatchesPublishedSolution) {
  // Reference values from the published IEEE 14-bus solution (MATPOWER).
  const auto c = io::ieee14();
  const PowerFlowResult r = solve_power_flow(c.network);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 6);

  const auto vm = [&](int bus) {
    return r.state.vm[static_cast<std::size_t>(c.network.index_of(bus))];
  };
  const auto th = [&](int bus) {
    return r.state.theta[static_cast<std::size_t>(c.network.index_of(bus))];
  };
  EXPECT_NEAR(vm(1), 1.060, 1e-3);
  EXPECT_NEAR(vm(2), 1.045, 1e-3);
  EXPECT_NEAR(vm(3), 1.010, 1e-3);
  EXPECT_NEAR(vm(4), 1.018, 2e-3);
  EXPECT_NEAR(vm(9), 1.056, 2e-3);
  EXPECT_NEAR(vm(14), 1.036, 2e-3);
  EXPECT_NEAR(th(2), -4.98 * kDeg, 0.05 * kDeg);
  EXPECT_NEAR(th(3), -12.73 * kDeg, 0.05 * kDeg);
  EXPECT_NEAR(th(14), -16.04 * kDeg, 0.1 * kDeg);
}

TEST(PowerFlow, MismatchIsTinyAtSolution) {
  const auto c = io::ieee14();
  const PowerFlowResult r = solve_power_flow(c.network);
  ASSERT_TRUE(r.converged);
  const auto ybus = build_ybus(c.network);
  const auto [p, q] = bus_injections(ybus, r.state);
  for (BusIndex i = 0; i < c.network.num_buses(); ++i) {
    const Bus& b = c.network.bus(i);
    const auto [ps, qs] = c.network.scheduled_injection(i);
    if (b.type != BusType::kSlack) {
      EXPECT_NEAR(p[static_cast<std::size_t>(i)], ps, 1e-8) << "bus " << i;
    }
    if (b.type == BusType::kPQ) {
      EXPECT_NEAR(q[static_cast<std::size_t>(i)], qs, 1e-8) << "bus " << i;
    }
  }
}

TEST(PowerFlow, PvBusesHoldSetpointVoltage) {
  const auto c = io::ieee14();
  const PowerFlowResult r = solve_power_flow(c.network);
  ASSERT_TRUE(r.converged);
  for (BusIndex i = 0; i < c.network.num_buses(); ++i) {
    const Bus& b = c.network.bus(i);
    if (b.type != BusType::kPQ) {
      EXPECT_DOUBLE_EQ(r.state.vm[static_cast<std::size_t>(i)], b.v_setpoint);
    }
  }
}

TEST(PowerFlow, SlackAbsorbsSystemBalance) {
  const auto c = io::ieee14();
  const PowerFlowResult r = solve_power_flow(c.network);
  const auto ybus = build_ybus(c.network);
  const auto [p, q] = bus_injections(ybus, r.state);
  // Slack injection covers total load minus other generation plus losses:
  // it must exceed that floor and stay within a few percent of it.
  double total_load = 0.0;
  double other_gen = 0.0;
  for (BusIndex i = 0; i < c.network.num_buses(); ++i) {
    total_load += c.network.bus(i).p_load;
    if (i != c.network.slack_bus()) other_gen += c.network.bus(i).p_gen;
  }
  const double slack_p = p[static_cast<std::size_t>(c.network.slack_bus())];
  EXPECT_GT(slack_p, total_load - other_gen);
  EXPECT_LT(slack_p, (total_load - other_gen) * 1.10);
}

TEST(PowerFlow, TwoBusAnalyticSolution) {
  // P = V1 V2 sin(d) / X for a lossless line: check against closed form.
  Network n;
  Bus slack;
  slack.external_id = 1;
  slack.type = BusType::kSlack;
  slack.v_setpoint = 1.0;
  n.add_bus(slack);
  Bus load;
  load.external_id = 2;
  load.p_load = 0.2;
  load.q_load = 0.0;
  n.add_bus(load);
  Branch b;
  b.from = 0;
  b.to = 1;
  b.x = 0.1;
  n.add_branch(b);
  const PowerFlowResult r = solve_power_flow(n);
  ASSERT_TRUE(r.converged);
  const double v2 = r.state.vm[1];
  const double d = r.state.theta[0] - r.state.theta[1];
  EXPECT_NEAR(1.0 * v2 * std::sin(d) / 0.1, 0.2, 1e-8);
}

TEST(PowerFlow, SyntheticCasesConverge) {
  for (const std::uint64_t seed : {1ull, 7ull, 2012ull, 99ull}) {
    const auto g = io::ieee118_dse(seed);
    const PowerFlowResult r = solve_power_flow(g.kase.network);
    EXPECT_TRUE(r.converged) << "seed " << seed;
    EXPECT_LE(r.iterations, 10);
    for (const double v : r.state.vm) {
      EXPECT_GT(v, 0.8);
      EXPECT_LT(v, 1.15);
    }
  }
}

TEST(PowerFlow, IterationBudgetRespected) {
  const auto c = io::ieee14();
  PowerFlowOptions opts;
  opts.max_iterations = 1;
  opts.tolerance = 1e-14;
  const PowerFlowResult r = solve_power_flow(c.network, opts);
  EXPECT_FALSE(r.converged);
}

}  // namespace
}  // namespace gridse::grid
