#include "grid/boundary.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace gridse::grid {
namespace {

TEST(BoundarySplit, PositionsAreSortedUniqueAndSlotConsistent) {
  const StateIndex index(/*num_buses=*/6, /*reference_bus=*/2);
  const std::vector<BusIndex> boundary = {0, 2, 5};
  const BoundarySplit split = split_boundary_states(index, boundary);

  // Non-reference buses contribute θ and |V|; the reference bus only |V|.
  ASSERT_EQ(split.positions.size(), 5u);
  EXPECT_TRUE(std::is_sorted(split.positions.begin(), split.positions.end()));
  EXPECT_EQ(std::adjacent_find(split.positions.begin(), split.positions.end()),
            split.positions.end());

  ASSERT_EQ(split.theta_slot.size(), boundary.size());
  ASSERT_EQ(split.vm_slot.size(), boundary.size());
  for (std::size_t k = 0; k < boundary.size(); ++k) {
    const BusIndex bus = boundary[k];
    if (bus == index.reference_bus()) {
      EXPECT_EQ(split.theta_slot[k], -1);
    } else {
      ASSERT_GE(split.theta_slot[k], 0);
      EXPECT_EQ(
          split.positions[static_cast<std::size_t>(split.theta_slot[k])],
          index.theta_index(bus));
    }
    ASSERT_GE(split.vm_slot[k], 0);
    EXPECT_EQ(split.positions[static_cast<std::size_t>(split.vm_slot[k])],
              index.vm_index(bus));
  }
}

TEST(BoundarySplit, CoversTheWholeStateWhenEveryBusIsBoundary) {
  const StateIndex index(4, 0);
  const std::vector<BusIndex> boundary = {0, 1, 2, 3};
  const BoundarySplit split = split_boundary_states(index, boundary);
  ASSERT_EQ(split.positions.size(), static_cast<std::size_t>(index.size()));
  for (std::size_t k = 0; k < split.positions.size(); ++k) {
    EXPECT_EQ(split.positions[k], static_cast<std::int32_t>(k));
  }
}

TEST(BoundarySplit, UnsortedInputBusesStillProduceSortedPositions) {
  const StateIndex index(8, 3);
  const std::vector<BusIndex> shuffled = {7, 1, 4};
  const BoundarySplit split = split_boundary_states(index, shuffled);
  EXPECT_TRUE(std::is_sorted(split.positions.begin(), split.positions.end()));
  // Slots still point at the right positions for the input order.
  for (std::size_t k = 0; k < shuffled.size(); ++k) {
    EXPECT_EQ(split.positions[static_cast<std::size_t>(split.vm_slot[k])],
              index.vm_index(shuffled[k]));
  }
}

TEST(BoundarySplit, RejectsOutOfRangeAndDuplicateBuses) {
  const StateIndex index(5, 0);
  EXPECT_THROW(split_boundary_states(index, std::vector<BusIndex>{5}),
               InvalidInput);
  EXPECT_THROW(split_boundary_states(index, std::vector<BusIndex>{-1}),
               InvalidInput);
  EXPECT_THROW(split_boundary_states(index, std::vector<BusIndex>{1, 1}),
               InvalidInput);
}

TEST(BoundarySplit, EmptyBoundaryIsEmptySplit) {
  const StateIndex index(3, 1);
  const BoundarySplit split = split_boundary_states(index, {});
  EXPECT_TRUE(split.positions.empty());
  EXPECT_TRUE(split.theta_slot.empty());
  EXPECT_TRUE(split.vm_slot.empty());
}

}  // namespace
}  // namespace gridse::grid
