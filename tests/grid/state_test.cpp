#include "grid/state.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace gridse::grid {
namespace {

TEST(GridState, FlatStart) {
  const GridState s(5);
  EXPECT_EQ(s.num_buses(), 5);
  for (const double th : s.theta) EXPECT_DOUBLE_EQ(th, 0.0);
  for (const double v : s.vm) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(StateIndex, LayoutSkipsReferenceAngle) {
  const StateIndex idx(4, 2);
  EXPECT_EQ(idx.size(), 7);
  EXPECT_EQ(idx.theta_index(0), 0);
  EXPECT_EQ(idx.theta_index(1), 1);
  EXPECT_EQ(idx.theta_index(2), -1);  // reference
  EXPECT_EQ(idx.theta_index(3), 2);
  EXPECT_EQ(idx.vm_index(0), 3);
  EXPECT_EQ(idx.vm_index(3), 6);
}

TEST(StateIndex, PackUnpackRoundTrip) {
  const StateIndex idx(3, 0);
  GridState s(3);
  s.theta = {0.5, -0.1, 0.2};
  s.vm = {1.02, 0.98, 1.01};
  const auto x = idx.pack(s);
  EXPECT_EQ(x.size(), 5u);
  const GridState back = idx.unpack(x, /*reference_angle=*/0.5);
  EXPECT_DOUBLE_EQ(back.theta[0], 0.5);
  EXPECT_DOUBLE_EQ(back.theta[1], -0.1);
  EXPECT_DOUBLE_EQ(back.theta[2], 0.2);
  EXPECT_EQ(back.vm, s.vm);
}

TEST(StateIndex, UnpackPinsReferenceAngle) {
  const StateIndex idx(2, 1);
  const std::vector<double> x{0.3, 1.0, 1.0};
  const GridState s = idx.unpack(x, 0.7);
  EXPECT_DOUBLE_EQ(s.theta[1], 0.7);
  EXPECT_DOUBLE_EQ(s.theta[0], 0.3);
}

TEST(StateIndex, WrongSizeThrows) {
  const StateIndex idx(3, 0);
  EXPECT_THROW(idx.unpack(std::vector<double>(4)), InternalError);
  EXPECT_THROW(idx.pack(GridState(2)), InternalError);
}

TEST(StateErrors, MaxErrors) {
  GridState a(2);
  GridState b(2);
  a.theta = {0.0, 0.1};
  b.theta = {0.02, 0.05};
  a.vm = {1.0, 1.0};
  b.vm = {1.03, 0.99};
  EXPECT_NEAR(max_angle_error(a, b), 0.05, 1e-12);
  EXPECT_NEAR(max_vm_error(a, b), 0.03, 1e-12);
}

TEST(StateErrors, SizeMismatchThrows) {
  EXPECT_THROW(max_vm_error(GridState(2), GridState(3)), InternalError);
}

}  // namespace
}  // namespace gridse::grid
