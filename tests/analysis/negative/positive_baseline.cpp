// Baseline for the negative-compilation suite: every idiom the project
// actually uses, written correctly, must be clean under
// -Werror=thread-safety.  If this file stops compiling, the expect-fail
// cases are failing for the wrong reason.
#include "analysis/debug_sync.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) {
    gridse::analysis::LockGuard lock(mutex_);
    balance_ += amount;
  }

  int balance() const {
    gridse::analysis::LockGuard lock(mutex_);
    return balance_;
  }

  int drain() {
    mutex_.lock();
    const int out = balance_;
    balance_ = 0;
    mutex_.unlock();
    return out;
  }

  void drain_locked() GRIDSE_REQUIRES(mutex_) { balance_ = 0; }

  void reset() {
    gridse::analysis::LockGuard lock(mutex_);
    drain_locked();
  }

 private:
  mutable gridse::analysis::Mutex mutex_{"Account::mutex_"};
  int balance_ GRIDSE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(3);
  account.reset();
  return account.balance();
}
