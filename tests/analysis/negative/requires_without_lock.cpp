// MUST NOT COMPILE under -Werror=thread-safety: calling a
// GRIDSE_REQUIRES(mutex_) function without holding the mutex — the exact
// defect class the *_locked naming contract exists to prevent.  Expected
// diagnostic: "calling function 'drain_locked' requires holding mutex".
#include "analysis/debug_sync.hpp"

namespace {

class Account {
 public:
  void drain_locked() GRIDSE_REQUIRES(mutex_) { balance_ = 0; }

  void reset() {
    drain_locked();  // caller forgot to take mutex_
  }

 private:
  gridse::analysis::Mutex mutex_{"Account::mutex_"};
  int balance_ GRIDSE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.reset();
  return 0;
}
