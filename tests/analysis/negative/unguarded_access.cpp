// MUST NOT COMPILE under -Werror=thread-safety: reading and writing a
// GRIDSE_GUARDED_BY field without holding its mutex.  Expected diagnostic:
// "reading/writing variable 'balance_' requires holding mutex 'mutex_'".
#include "analysis/debug_sync.hpp"

namespace {

class Account {
 public:
  int steal() {
    const int out = balance_;  // unguarded read
    balance_ = 0;              // unguarded write
    return out;
  }

 private:
  gridse::analysis::Mutex mutex_{"Account::mutex_"};
  int balance_ GRIDSE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  return account.steal();
}
