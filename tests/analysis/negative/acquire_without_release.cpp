// MUST NOT COMPILE under -Werror=thread-safety: lock() with no matching
// unlock() on any path out of the function.  Expected diagnostic:
// "mutex 'mutex_' is still held at the end of function".
#include "analysis/debug_sync.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) {
    mutex_.lock();
    balance_ += amount;
    // missing mutex_.unlock()
  }

 private:
  gridse::analysis::Mutex mutex_{"Account::mutex_"};
  int balance_ GRIDSE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return 0;
}
