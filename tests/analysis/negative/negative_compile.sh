#!/usr/bin/env bash
# Negative-compilation harness for the Clang Thread Safety annotations
# (tests/analysis/negative/*.cpp, registered in tests/CMakeLists.txt).
#
# Usage: negative_compile.sh <compiler> <repo-root> expect-pass|expect-fail <src>
#
# expect-pass: the file must compile cleanly under -Werror=thread-safety
#   (proves the baseline idioms are annotation-clean, so the expect-fail
#   cases below fail for the right reason and not because every use of
#   analysis::Mutex trips the analysis).
# expect-fail: the file must FAIL to compile, and the diagnostic must come
#   from -Wthread-safety (proves the annotations actually catch the defect
#   class the file encodes).
#
# Thread Safety Analysis exists only in Clang; under any other compiler the
# test skips (exit 77 = ctest SKIP_RETURN_CODE) rather than vacuously pass.
set -u

compiler="$1"
repo_root="$2"
mode="$3"
src="$4"

if ! "${compiler}" --version 2>/dev/null | grep -qi clang; then
  echo "negative_compile: ${compiler} is not Clang; Thread Safety Analysis" \
       "is unavailable — skipping." >&2
  exit 77
fi

flags=(
  -std=c++20 -fsyntax-only
  -Wthread-safety -Werror=thread-safety
  -DGRIDSE_DEBUG_SYNC=1 -DGRIDSE_OBS=0 -DGRIDSE_FAULT=0
  -I "${repo_root}/src"
)

out=$("${compiler}" "${flags[@]}" "${src}" 2>&1)
status=$?

case "${mode}" in
  expect-pass)
    if [[ ${status} -ne 0 ]]; then
      echo "${out}"
      echo "negative_compile: baseline ${src##*/} must compile cleanly" \
           "under -Werror=thread-safety but did not." >&2
      exit 1
    fi
    ;;
  expect-fail)
    if [[ ${status} -eq 0 ]]; then
      echo "negative_compile: ${src##*/} encodes a lock-discipline defect" \
           "but compiled cleanly — the annotations no longer catch it." >&2
      exit 1
    fi
    if ! grep -q "thread-safety" <<<"${out}"; then
      echo "${out}"
      echo "negative_compile: ${src##*/} failed to compile, but not with a" \
           "-Wthread-safety diagnostic (broken fixture, not a caught" \
           "defect)." >&2
      exit 1
    fi
    ;;
  *)
    echo "negative_compile: unknown mode '${mode}'" >&2
    exit 2
    ;;
esac

exit 0
