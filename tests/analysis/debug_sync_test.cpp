#include "analysis/debug_sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "analysis/assert.hpp"
#include "analysis/tsan.hpp"

namespace gridse::analysis {
namespace {

TEST(DebugSync, LockGuardExcludes) {
  Mutex mu("test_counter_mu");
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        LockGuard lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
}

TEST(DebugSync, ConditionVariableWaitWakes) {
  Mutex mu("test_cv_mu");
  ConditionVariable cv;
  bool ready = false;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    {
      LockGuard lock(mu);
      ready = true;
    }
    cv.notify_all();
  });
  {
    UniqueLock lock(mu);
    cv.wait(lock, [&] { return ready; });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(DebugSync, WaitForTimesOut) {
  Mutex mu("test_timeout_mu");
  ConditionVariable cv;
  UniqueLock lock(mu);
  const bool woke = cv.wait_for(lock, std::chrono::milliseconds(10),
                                [] { return false; });
  EXPECT_FALSE(woke);
}

TEST(DebugSync, ConsistentNestingIsAccepted) {
  detail::reset_lock_graph_for_testing();
  Mutex outer("test_nest_outer");
  Mutex inner("test_nest_inner");
  for (int i = 0; i < 3; ++i) {
    LockGuard lo(outer);
    LockGuard li(inner);
  }
  SUCCEED();
}

TEST(DebugSync, TryLockReportsContention) {
  Mutex mu("test_try_mu");
  ASSERT_TRUE(mu.try_lock());
  std::thread contender([&] { EXPECT_FALSE(mu.try_lock()); });
  contender.join();
  mu.unlock();
}

TEST(DebugSync, TsanShimsAreCallable) {
  [[maybe_unused]] int token = 0;  // macros no-op outside TSan builds
  GRIDSE_TSAN_HAPPENS_BEFORE(&token);
  GRIDSE_TSAN_HAPPENS_AFTER(&token);
  GRIDSE_TSAN_IGNORE_READS_BEGIN();
  GRIDSE_TSAN_IGNORE_READS_END();
  SUCCEED();
}

#if GRIDSE_DEBUG_SYNC

TEST(DebugSync, HeldByCurrentThreadTracksOwnership) {
  Mutex mu("test_held_mu");
  EXPECT_FALSE(mu.held_by_current_thread());
  {
    LockGuard lock(mu);
    EXPECT_TRUE(mu.held_by_current_thread());
    std::thread other([&] { EXPECT_FALSE(mu.held_by_current_thread()); });
    other.join();
  }
  EXPECT_FALSE(mu.held_by_current_thread());
}

TEST(DebugSync, AssertHeldPassesWhenHeld) {
  Mutex mu("test_assert_held_mu");
  LockGuard lock(mu);
  GRIDSE_ASSERT_HELD(mu);
  SUCCEED();
}

TEST(DebugSync, WaitReleasesOwnershipWhileBlocked) {
  Mutex mu("test_wait_release_mu");
  ConditionVariable cv;
  std::atomic<bool> checked{false};
  std::thread waiter([&] {
    UniqueLock lock(mu);
    cv.wait(lock, [&] { return checked.load(); });
    EXPECT_TRUE(mu.held_by_current_thread());
  });
  // While the waiter blocks, this thread can take the lock — and the
  // waiter's thread no longer counts as holding it.
  while (!checked.load()) {
    LockGuard lock(mu);
    checked.store(true);
  }
  cv.notify_all();
  waiter.join();
}

using DebugSyncDeathTest = ::testing::Test;

TEST(DebugSyncDeathTest, LockOrderInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        detail::reset_lock_graph_for_testing();
        Mutex a("order_a");
        Mutex b("order_b");
        {
          LockGuard la(a);
          LockGuard lb(b);  // records order_a -> order_b
        }
        {
          LockGuard lb(b);
          LockGuard la(a);  // inversion: must abort, not deadlock later
        }
      },
      // Both stacks must appear: the acquire stack (order_a while holding
      // order_b) and the recorded witness (order_b while holding order_a).
      "POTENTIAL DEADLOCK: lock-order inversion(.|\n)*"
      "acquiring \"order_a\"(.|\n)*while holding:(.|\n)*\"order_b\"(.|\n)*"
      "previously established(.|\n)*edge \"order_a\" -> \"order_b\"(.|\n)*"
      "acquiring \"order_b\"(.|\n)*while holding:(.|\n)*\"order_a\"");
}

TEST(DebugSyncDeathTest, TransitiveInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        detail::reset_lock_graph_for_testing();
        Mutex a("chain_a");
        Mutex b("chain_b");
        Mutex c("chain_c");
        {
          LockGuard la(a);
          LockGuard lb(b);
        }
        {
          LockGuard lb(b);
          LockGuard lc(c);
        }
        {
          LockGuard lc(c);
          LockGuard la(a);  // closes the cycle a -> b -> c -> a
        }
      },
      "POTENTIAL DEADLOCK(.|\n)*\"chain_a\" -> \"chain_b\"(.|\n)*"
      "\"chain_b\" -> \"chain_c\"");
}

TEST(DebugSyncDeathTest, RecursiveAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex mu("recursive_mu");
        mu.lock();
        mu.lock();
      },
      "SELF-DEADLOCK: recursive acquisition of \"recursive_mu\"");
}

TEST(DebugSyncDeathTest, ExcessiveHoldTimeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        set_max_hold_time(std::chrono::milliseconds(5));
        Mutex mu("slow_mu");
        mu.lock();
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        mu.unlock();
      },
      "EXCESSIVE HOLD TIME(.|\n)*\"slow_mu\" held for");
}

TEST(DebugSyncDeathTest, AssertFormatsDiagnostics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const int want = 3;
  EXPECT_DEATH(GRIDSE_ASSERT(want == 4, "want is " << want << ", not 4"),
               "==gridse-assert== FAILED: want == 4(.|\n)*want is 3, not 4");
}

TEST(DebugSyncDeathTest, AssertHeldAbortsWhenNotHeld) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex mu("unheld_mu");
        GRIDSE_ASSERT_HELD(mu);
      },
      "lock \"unheld_mu\" is not held");
}

#endif  // GRIDSE_DEBUG_SYNC

}  // namespace
}  // namespace gridse::analysis
