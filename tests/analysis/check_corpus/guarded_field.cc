// CHECK-PATH: src/obs/corpus_registry.hpp
// guarded-field must fire when a same-line comment claims a lock guards a
// declaration but the declaration carries no GRIDSE_GUARDED_BY: prose
// invariants rot, annotated ones are compiler-checked.  Standalone prose
// comments and annotated fields stay silent.
namespace corpus {

class Registry {
 private:
  int mutex_;  // stand-in; fixtures are scanned, never compiled

  int count_ = 0;  // guarded by mutex_ (EXPECT: guarded-field)

  int total_ GRIDSE_GUARDED_BY(mutex_) = 0;  // guarded by mutex_, annotated

  // Everything below this line is guarded by mutex_ — pure prose lines
  // attached to no declaration do not fire.
  int prose_documented_ = 0;
};

}  // namespace corpus
