// CHECK-PATH: src/legacy/vendored_queue.cpp
// One violation of each path-independent rule, all matched by the
// `src/legacy/*` entries in suppressions.txt: the findings must still be
// detected, then reported as suppressed rather than failing the run.
#include <cstdlib>
#include <mutex>

namespace corpus {

std::mutex queue_mutex;  // (EXPECT-SUPPRESSED: naked-mutex)

const char* queue_dir() {
  return std::getenv("LEGACY_QUEUE_DIR");  // (EXPECT-SUPPRESSED: raw-getenv)
}

class VendoredQueue {
 public:
  int pop_locked(int tag);  // (EXPECT-SUPPRESSED: locked-requires)

 private:
  int depth_ = 0;  // guarded by queue_mutex (EXPECT-SUPPRESSED: guarded-field)
};

}  // namespace corpus
