// CHECK-PATH: src/runtime/corpus_transport.cpp
// fault-hook must fire on transport primitives in a src/runtime or
// src/medici file that contains no FAULT_POINT / FAULT_DROP hook at all:
// such a path is invisible to chaos testing.
namespace corpus {

struct Socket {
  void send_all(const void* data, unsigned long size);
  unsigned long recv_some(void* data, unsigned long size);
};

struct Transport {
  Socket socket;
  void flush(const void* p, unsigned long n) {
    socket.send_all(p, n);  // (EXPECT: fault-hook)
  }
  unsigned long poll(void* p, unsigned long n) {
    return socket.recv_some(p, n);  // (EXPECT: fault-hook)
  }
};

}  // namespace corpus
