// CHECK-PATH: src/obs/corpus_metrics.cpp
// metric-name: registrations must follow the subsystem.noun[_unit] grammar
// (lowercase snake-case dot-joined segments, at least two), dynamic names
// need a grammar-clean dot-terminated literal prefix, and one literal name
// maps to exactly one instrument kind per file.
namespace corpus {

struct Registry {
  int& counter(const char* name);
  double& gauge(const char* name);
};

void instrument(Registry& registry, const char* endpoint) {
  // Clean registrations: no findings.
  OBS_COUNTER_ADD("exchange.retries", 1);
  OBS_HISTOGRAM_OBSERVE("dse.step1.subsystem_seconds", 0.25);
  OBS_SPAN("medici.client.send");
  registry.counter("medici.endpoint.bytes.to." + endpoint);

  OBS_COUNTER_ADD("Retries", 1);  // (EXPECT: metric-name)
  OBS_GAUGE_SET("queue_depth", 3);  // (EXPECT: metric-name)
  OBS_COUNTS_OBSERVE("dse.Step1.iters", 4);  // (EXPECT: metric-name)
  registry.counter("medici.endpoint" + endpoint);  // (EXPECT: metric-name)

  // Kind collision: the same literal registered as counter then gauge.
  registry.counter("runtime.mailbox.depth");
  registry.gauge("runtime.mailbox.depth");  // (EXPECT: metric-name)
}

}  // namespace corpus
