// CHECK-PATH: src/medici/corpus_relay.cpp
// fault-hook under suppression: the corpus suppression file carries an
// entry for exactly this virtual path, so the finding is detected but
// reported as suppressed.
namespace corpus {

struct Socket {
  unsigned long recv_all(void* data, unsigned long size);
};

struct Relay {
  Socket socket;
  void pump(void* p, unsigned long n) {
    socket.recv_all(p, n);  // (EXPECT-SUPPRESSED: fault-hook)
  }
};

}  // namespace corpus
