// CHECK-PATH: src/util/corpus_queue.hpp
// locked-requires must fire on *_locked declarations that carry no
// GRIDSE_REQUIRES annotation — the suffix is the project contract for
// "caller already holds the lock", and the annotation is what lets Clang
// enforce it.  Annotated declarations (including multi-line ones) and
// out-of-line qualified definitions stay silent.
namespace corpus {

class Queue {
 public:
  int pop_locked(int tag);  // (EXPECT: locked-requires)

  int peek_locked(int tag) GRIDSE_REQUIRES(mutex_);

  [[nodiscard]] int drain_locked(int tag)
      GRIDSE_REQUIRES(mutex_);

 private:
  int mutex_;  // stand-in; fixtures are scanned, never compiled
};

// Out-of-line definition: the annotation lives on the declaration above,
// so the qualified name is exempt.
int Queue::peek_locked(int tag) { return tag; }

// Call sites are not declarations:
int probe(Queue& q) { return q.pop_locked(0); }

}  // namespace corpus
