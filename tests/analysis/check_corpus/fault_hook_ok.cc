// CHECK-PATH: src/runtime/corpus_transport_ok.cpp
// The same primitives are fine once the file participates in fault
// injection: one FAULT_* hook marks the path chaos-testable.  No findings.
namespace corpus {

struct Socket {
  void send_all(const void* data, unsigned long size);
};

struct Transport {
  Socket socket;
  bool flush(const void* p, unsigned long n) {
    if (FAULT_DROP("corpus.send", 0, 0)) {
      return false;
    }
    socket.send_all(p, n);
    return true;
  }
};

}  // namespace corpus
