// CHECK-PATH: src/analysis/corpus_release_sync.cpp
// src/analysis/ is the one place allowed to touch std::mutex: it is the
// implementation substrate of analysis::Mutex itself.  No findings expected.
#include <mutex>

namespace corpus {

std::mutex impl_mutex;

void with_lock(int& value) {
  std::lock_guard<std::mutex> lock(impl_mutex);
  ++value;
}

}  // namespace corpus
