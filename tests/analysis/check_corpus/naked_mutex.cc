// CHECK-PATH: src/core/corpus_naked.cpp
// naked-mutex must fire on every raw std synchronization primitive outside
// src/analysis/: the project substitute is analysis::Mutex, which is named,
// lock-order-checked, and capability-annotated.
#include <mutex>

namespace corpus {

std::mutex registry_mutex;  // (EXPECT: naked-mutex)

void touch(int& value) {
  std::lock_guard<std::mutex> lock(registry_mutex);  // (EXPECT: naked-mutex)
  ++value;
}

void touch_ctad(int& value) {
  std::scoped_lock lock(registry_mutex);  // (EXPECT: naked-mutex)
  ++value;
}

// Mentioning std::mutex in a comment or a string is not a use:
// std::mutex in prose stays silent.
const char* doc() { return "std::lock_guard<std::mutex> is banned here"; }

}  // namespace corpus
