// CHECK-PATH: src/runtime/resilience.cpp
// runtime/resilience.* is the blessed home of getenv: env_value() wraps it
// once for the whole tree.  No findings expected.
#include <cstdlib>

namespace corpus {

const char* blessed(const char* name) { return std::getenv(name); }

}  // namespace corpus
