// CHECK-PATH: src/core/corpus_env.cpp
// raw-getenv must fire on direct environment reads; the blessed route is
// runtime::env_value().  The second site demonstrates the inline escape
// hatch, which suppresses exactly one rule on exactly one line.
#include <cstdlib>

namespace corpus {

const char* trace_dir() {
  return std::getenv("GRIDSE_TRACE_DIR");  // (EXPECT: raw-getenv)
}

const char* audited_read() {
  // Deliberate raw read, justified at the call site:
  return std::getenv("GRIDSE_AUDITED");  // gridse-check: allow(raw-getenv)
}

}  // namespace corpus
