// Runtime-behavior tests for the capability annotation layer
// (analysis/thread_annotations.hpp).  Clang enforces the annotations at
// compile time (tests/analysis/negative/); these tests pin down what the
// macros must do on EVERY compiler: expand to nothing that changes program
// semantics, while the annotated idioms — guard objects, *_locked helpers,
// assert_held as the runtime fallback — still behave correctly under real
// contention.
#include "analysis/thread_annotations.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "analysis/assert.hpp"
#include "analysis/debug_sync.hpp"

namespace gridse::analysis {
namespace {

// A miniature of the project's annotation vocabulary: one capability, a
// guarded field, a *_locked helper with GRIDSE_REQUIRES, a public API with
// GRIDSE_EXCLUDES, and manual GRIDSE_ACQUIRE/GRIDSE_RELEASE passthroughs.
class Ledger {
 public:
  void credit(int amount) GRIDSE_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    credit_locked(amount);
  }

  void lock() GRIDSE_ACQUIRE(mutex_) { mutex_.lock(); }
  void unlock() GRIDSE_RELEASE(mutex_) { mutex_.unlock(); }

  void credit_locked(int amount) GRIDSE_REQUIRES(mutex_) {
    GRIDSE_ASSERT_HELD(mutex_);
    total_ += amount;
  }

  [[nodiscard]] int total() const GRIDSE_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    return total_;
  }

 private:
  mutable Mutex mutex_{"Ledger::mutex_"};
  int total_ GRIDSE_GUARDED_BY(mutex_) = 0;
};

TEST(ThreadAnnotations, AnnotatedLedgerCountsUnderContention) {
  Ledger ledger;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ledger] {
      for (int i = 0; i < kPerThread; ++i) {
        ledger.credit(1);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(ledger.total(), kThreads * kPerThread);
}

TEST(ThreadAnnotations, ManualAcquireReleasePassthrough) {
  Ledger ledger;
  ledger.lock();
  ledger.credit_locked(41);
  ledger.credit_locked(1);
  ledger.unlock();
  EXPECT_EQ(ledger.total(), 42);
}

TEST(ThreadAnnotations, MacrosAreTransparentInExpressions) {
  // The annotation macros must be attachable without altering the entity
  // they annotate: a guarded local behaves exactly like a plain one.
  Mutex mu{"ThreadAnnotations::mu"};
  int counter GRIDSE_GUARDED_BY(mu) = 0;
  {
    LockGuard lock(mu);
    counter = 7;
  }
  {
    UniqueLock lock(mu);
    EXPECT_EQ(counter, 7);
  }
}

}  // namespace
}  // namespace gridse::analysis
