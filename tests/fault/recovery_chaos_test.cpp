#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/architecture.hpp"
#include "fault/fault.hpp"
#include "grid/state.hpp"
#include "io/synthetic.hpp"
#include "runtime/recovery.hpp"
#include "runtime/tcp_comm.hpp"
#include "util/error.hpp"

namespace gridse::core {
namespace {

using runtime::RankState;

/// IEEE-118, three clusters, TCP transport, recovery on. The heartbeat is
/// tightened so a full kill/remap/rejoin sequence stays test-sized.
SystemConfig recovery_config() {
  SystemConfig cfg;
  cfg.mapping.num_clusters = 3;
  cfg.transport = Transport::kTcp;
  cfg.resilience.barrier_timeout = std::chrono::milliseconds{30'000};
  cfg.resilience.exchange_deadline = std::chrono::milliseconds{2000};
  cfg.resilience.recovery.enabled = true;
  cfg.resilience.recovery.heartbeat_period = std::chrono::milliseconds{5};
  cfg.resilience.recovery.heartbeat_timeout = std::chrono::milliseconds{500};
  cfg.resilience.recovery.heartbeat_rounds = 2;
  return cfg;
}

/// Kill comm-rank 1 for the duration of one cycle: every frame it sends in
/// the user-tag range is dropped before the wire — heartbeats, pseudo
/// measurements, combine, reports. Barrier control (above kMaxUserTag) is
/// spared so the in-process world still tears down cleanly; the *detection*
/// must come from the heartbeat layer, not from a hung barrier.
fault::FaultPlan kill_rank1_plan() {
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.rules.push_back({.site = "tcp.send",
                        .action = fault::ActionKind::kDrop,
                        .source = 1,
                        .tag_min = 0,
                        .tag_max = runtime::TcpWorld::kMaxUserTag});
  return plan;
}

struct Sequence {
  CycleReport healthy;   // cycle 0: baseline, checkpoints seeded
  CycleReport killed;    // cycle 1: rank 1 silenced mid-run
  CycleReport remapped;  // cycle 2: survivors only
  CycleReport rejoined;  // cycle 3: revived cluster folded back in
  std::vector<fault::InjectionRecord> kill_log;
  std::string kill_log_json = "[]";
  std::uint64_t injected = 0;
  int dead_cluster = -1;
};

/// Drive one system through the full recovery state machine.
Sequence run_sequence(DseSystem& sys) {
  Sequence seq;
  seq.healthy = sys.run_cycle(0.0);

  fault::install(kill_rank1_plan());
  seq.killed = sys.run_cycle(60.0);
  seq.kill_log = fault::injection_log();
  seq.kill_log_json = fault::log_to_json();
  seq.injected = fault::injected_count();
  fault::clear();
  // The comm rank the heartbeat condemned maps through the participant
  // list back to the cluster the supervisor took out of rotation.
  seq.dead_cluster = seq.killed.participants.at(1);

  seq.remapped = sys.run_cycle(120.0);
  sys.announce_rejoin(seq.dead_cluster);
  seq.rejoined = sys.run_cycle(180.0);
  return seq;
}

int max_step1_iterations(const CycleReport& rep, bool warm_only) {
  int worst = 0;
  for (const SubsystemTrace& t : rep.dse.traces) {
    if (t.step1.gauss_newton_iterations == 0) continue;  // adopted, not run
    if (warm_only && !t.step1.warm_start) continue;
    worst = std::max(worst, t.step1.gauss_newton_iterations);
  }
  return worst;
}

/// Chaos health report for the CI chaos-recovery job (same shape as the
/// chaos_dse suite, plus the recovery block bench_gate.py validates).
void write_health_report(const std::string& name, const Sequence& seq,
                         const DseSystem& sys, double seconds) {
  const auto dir = gridse::runtime::env_value("GRIDSE_CHAOS_REPORT_DIR");
  if (!dir) {
    return;
  }
  std::ostringstream json;
  json << "{\"test\":\"" << name << "\",\"injected\":" << seq.injected
       << ",\"retries\":0,\"seconds\":" << seconds << ",\"all_converged\":"
       << (seq.rejoined.dse.all_converged ? "true" : "false")
       << ",\"degraded\":[";
  for (std::size_t i = 0; i < seq.killed.dse.degraded.size(); ++i) {
    const DegradedStatus& st = seq.killed.dse.degraded[i];
    if (i > 0) json << ",";
    json << "{\"subsystem\":" << st.subsystem << ",\"missing_neighbors\":[";
    for (std::size_t j = 0; j < st.missing_neighbors.size(); ++j) {
      if (j > 0) json << ",";
      json << st.missing_neighbors[j];
    }
    json << "],\"missing_redistribution\":"
         << (st.missing_redistribution ? "true" : "false") << "}";
  }
  json << "],\"unresponsive_ranks\":[";
  for (std::size_t i = 0; i < seq.killed.dse.unresponsive_ranks.size(); ++i) {
    if (i > 0) json << ",";
    json << seq.killed.dse.unresponsive_ranks[i];
  }
  json << "],\"recovery\":{\"remaps\":" << sys.supervisor()->remaps()
       << ",\"rejoins\":" << sys.supervisor()->rejoins()
       << ",\"checkpoint_bytes\":"
       << seq.rejoined.dse.recovery.checkpoint_bytes
       << "},\"injections\":" << seq.kill_log_json << "}";
  std::ofstream out(*dir + "/" + name + ".json",
                    std::ios::binary | std::ios::trunc);
  if (out) {
    out << json.str() << "\n";
  }
}

class RecoveryChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kEnabled) {
      GTEST_SKIP() << "built with GRIDSE_FAULT=OFF";
    }
    fault::clear();
  }
  void TearDown() override { fault::clear(); }
};

TEST_F(RecoveryChaosTest, KillRemapRejoinEndToEnd) {
  DseSystem sys(io::ieee118_dse(), recovery_config());
  ASSERT_TRUE(sys.recovery_enabled());
  const auto start = std::chrono::steady_clock::now();
  const Sequence seq = run_sequence(sys);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  write_health_report("kill_remap_rejoin", seq, sys, seconds);

  // Cycle 0 (healthy): full participation, a checkpoint gathered for every
  // subsystem, nothing degraded.
  EXPECT_EQ(seq.healthy.participants, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(seq.healthy.dse.all_converged);
  EXPECT_FALSE(seq.healthy.dse.degraded_mode());
  EXPECT_TRUE(seq.healthy.dse.recovery.enabled);
  EXPECT_TRUE(seq.healthy.dse.recovery.membership.all_alive());
  EXPECT_EQ(seq.healthy.dse.recovery.checkpoints.size(),
            sys.decomposition().subsystems.size());
  EXPECT_GT(seq.healthy.dse.recovery.checkpoint_bytes, 0u);

  // Cycle 1 (kill): the heartbeat — not an exchange timeout — detects the
  // silenced rank; the cycle finishes degraded instead of failing.
  EXPECT_GT(seq.injected, 0u);
  ASSERT_EQ(seq.killed.dse.recovery.membership.states.size(), 3u);
  EXPECT_EQ(seq.killed.dse.recovery.membership.states[1], RankState::kDead);
  EXPECT_TRUE(seq.killed.dse.recovery.membership.consensus);
  EXPECT_TRUE(seq.killed.dse.degraded_mode());
  EXPECT_EQ(seq.killed.dse.unresponsive_ranks, (std::vector<int>{1}));
  EXPECT_EQ(seq.dead_cluster, 1);

  // Cycle 2 (remap): exactly the survivors participate, every subsystem is
  // hosted in-range, and the cycle is *healthy* — zero degraded
  // subsystems, not merely degraded-but-bounded.
  EXPECT_EQ(seq.remapped.participants.size(), 2u);
  EXPECT_EQ(seq.remapped.participants,
            (std::vector<int>{0, 2}));
  EXPECT_FALSE(seq.remapped.migrated_subsystems.empty());
  for (const graph::PartId p :
       seq.remapped.map_step2.partition.assignment) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 2);
  }
  EXPECT_TRUE(seq.remapped.dse.all_converged);
  EXPECT_TRUE(seq.remapped.dse.degraded.empty());
  EXPECT_TRUE(seq.remapped.dse.unresponsive_ranks.empty());
  EXPECT_TRUE(seq.remapped.dse.recovery.membership.all_alive());
  EXPECT_LT(seq.remapped.max_vm_error, 0.02);

  // Warm restart: restored checkpoints seeded Step 1, and no warm solve
  // needed more Gauss-Newton iterations than the cold baseline.
  EXPECT_GT(seq.remapped.dse.recovery.warm_started, 0);
  EXPECT_LE(max_step1_iterations(seq.remapped, /*warm_only=*/true),
            max_step1_iterations(seq.healthy, /*warm_only=*/false));

  // Cycle 3 (rejoin): the revived cluster is folded back in at the next
  // remap epoch and actually hosts work again.
  EXPECT_EQ(seq.rejoined.participants, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(seq.rejoined.dse.all_converged);
  EXPECT_TRUE(seq.rejoined.dse.degraded.empty());
  const auto& rejoined_assignment =
      seq.rejoined.map_step2.partition.assignment;
  EXPECT_NE(std::count(rejoined_assignment.begin(),
                       rejoined_assignment.end(), graph::PartId{1}),
            0);
  EXPECT_EQ(sys.supervisor()->remaps(), 1);
  EXPECT_EQ(sys.supervisor()->rejoins(), 1);
  EXPECT_EQ(sys.supervisor()->state_of(1), RankState::kAlive);
}

TEST_F(RecoveryChaosTest, SequenceIsDeterministicPerSeed) {
  DseSystem a(io::ieee118_dse(), recovery_config());
  DseSystem b(io::ieee118_dse(), recovery_config());
  const Sequence sa = run_sequence(a);
  const Sequence sb = run_sequence(b);

  // Same seed => identical fault schedule, membership verdicts, remapped
  // assignments, and migration sets — the chaos determinism contract
  // extended across the whole recovery state machine.
  EXPECT_EQ(sa.kill_log, sb.kill_log);
  EXPECT_EQ(sa.killed.dse.recovery.membership.states,
            sb.killed.dse.recovery.membership.states);
  EXPECT_EQ(sa.dead_cluster, sb.dead_cluster);
  EXPECT_EQ(sa.remapped.participants, sb.remapped.participants);
  EXPECT_EQ(sa.remapped.map_step1.partition.assignment,
            sb.remapped.map_step1.partition.assignment);
  EXPECT_EQ(sa.remapped.map_step2.partition.assignment,
            sb.remapped.map_step2.partition.assignment);
  EXPECT_EQ(sa.remapped.migrated_subsystems, sb.remapped.migrated_subsystems);
  EXPECT_EQ(sa.rejoined.map_step2.partition.assignment,
            sb.rejoined.map_step2.partition.assignment);
  EXPECT_DOUBLE_EQ(
      grid::max_vm_error(sa.remapped.dse.state, sb.remapped.dse.state), 0.0);
}

TEST_F(RecoveryChaosTest, RecoveryDisabledMatchesHistoricalBehavior) {
  // The entire layer is opt-in: with recovery off the report carries no
  // membership view, no checkpoints, and the full participant set.
  SystemConfig cfg = recovery_config();
  cfg.resilience.recovery.enabled = false;
  DseSystem sys(io::ieee118_dse(), cfg);
  EXPECT_FALSE(sys.recovery_enabled());
  EXPECT_EQ(sys.supervisor(), nullptr);
  const CycleReport rep = sys.run_cycle(0.0);
  EXPECT_EQ(rep.participants, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(rep.dse.recovery.enabled);
  EXPECT_TRUE(rep.dse.recovery.checkpoints.empty());
  EXPECT_TRUE(rep.dse.recovery.membership.states.empty());
  EXPECT_THROW(sys.kill_cluster(1), InternalError);
}

}  // namespace
}  // namespace gridse::core
