// Seeded topology-change replay end to end: plan parsing/roundtrip, the
// scenario generator, the full outage → islanding → restore arc through
// DseSystem on IEEE-118 and the 10k tier, the bit-identical applied-event
// log across runs and thread counts, and the FAULT_DROP("topology.apply")
// chaos hook. Mirrors the determinism-witness idiom of fault_plan_test.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/tsan.hpp"
#include "core/architecture.hpp"
#include "decomp/bus_partition.hpp"
#include "fault/fault.hpp"
#include "fault/topology_replay.hpp"
#include "grid/state.hpp"
#include "io/synthetic.hpp"
#include "runtime/resilience.hpp"
#include "util/error.hpp"

namespace gridse::fault {
namespace {

TEST(TopologyReplayPlanTest, ParseRoundtripAndOrdering) {
  const std::string json =
      "{\"seed\":7,\"events\":["
      "{\"cycle\":3,\"kind\":\"bus_split\",\"bus\":5},"
      "{\"cycle\":1,\"kind\":\"line_outage\",\"branch\":17},"
      "{\"cycle\":3,\"kind\":\"line_restore\",\"branch\":17}]}";
  const TopologyReplayPlan plan = TopologyReplayPlan::parse(json);
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.events.size(), 3u);
  // Stable sort by cycle: the outage first, then the two cycle-3 events in
  // file order.
  EXPECT_EQ(plan.events[0].cycle, 1);
  EXPECT_EQ(plan.events[0].event.kind, grid::TopologyEventKind::kLineOutage);
  EXPECT_EQ(plan.events[0].event.branch, 17);
  EXPECT_EQ(plan.events[1].event.kind, grid::TopologyEventKind::kBusSplit);
  EXPECT_EQ(plan.events[1].event.bus, 5);
  EXPECT_EQ(plan.events[2].event.kind, grid::TopologyEventKind::kLineRestore);
  EXPECT_EQ(plan.last_cycle(), 3);

  // to_json → parse is the identity on (seed, events).
  const TopologyReplayPlan again = TopologyReplayPlan::parse(plan.to_json());
  EXPECT_EQ(again.seed, plan.seed);
  EXPECT_EQ(again.events, plan.events);
}

TEST(TopologyReplayPlanTest, MalformedPlansAreRejected) {
  EXPECT_THROW(TopologyReplayPlan::parse("[]"), InvalidInput);
  EXPECT_THROW(TopologyReplayPlan::parse("{\"seed\":1}"), InvalidInput);
  EXPECT_THROW(TopologyReplayPlan::parse(
                   "{\"events\":[{\"cycle\":1,\"kind\":\"nope\"}]}"),
               InvalidInput);
  // Branch events need a branch, bus events a bus.
  EXPECT_THROW(TopologyReplayPlan::parse(
                   "{\"events\":[{\"cycle\":1,\"kind\":\"line_outage\"}]}"),
               InvalidInput);
  EXPECT_THROW(TopologyReplayPlan::parse(
                   "{\"events\":[{\"cycle\":1,\"kind\":\"bus_split\"}]}"),
               InvalidInput);
}

TEST(TopologyReplayPlanTest, GeneratorIsSeedDeterministicAndArcShaped) {
  const io::GeneratedCase gc = io::ieee118_dse();
  const TopologyReplayPlan a =
      TopologyReplayPlan::generate(gc.kase.network, 11);
  const TopologyReplayPlan b =
      TopologyReplayPlan::generate(gc.kase.network, 11);
  EXPECT_EQ(a.events, b.events);
  const TopologyReplayPlan c =
      TopologyReplayPlan::generate(gc.kase.network, 12);
  EXPECT_NE(a.events, c.events);

  // Arc shape: outages, one split, then merge + restores back to base.
  int outages = 0;
  int restores = 0;
  int splits = 0;
  int merges = 0;
  for (const ScheduledTopologyEvent& e : a.events) {
    switch (e.event.kind) {
      case grid::TopologyEventKind::kLineOutage: ++outages; break;
      case grid::TopologyEventKind::kLineRestore: ++restores; break;
      case grid::TopologyEventKind::kBusSplit: ++splits; break;
      case grid::TopologyEventKind::kBusMerge: ++merges; break;
      default: break;
    }
  }
  EXPECT_EQ(outages, 2);
  EXPECT_EQ(restores, 2);
  EXPECT_EQ(splits, 1);
  EXPECT_EQ(merges, 1);
}

core::SystemConfig replay_config(std::string plan_json) {
  core::SystemConfig cfg;
  cfg.truth_mode = core::TruthMode::kDcLinearized;
  cfg.mapping.num_clusters = 3;
  cfg.topology.plan = std::move(plan_json);
  cfg.topology.repartition_threshold = 0.0;  // replay only, no repartition
  return cfg;
}

struct ReplayRun {
  std::vector<core::CycleReport> reports;
  std::string log_json;
};

/// Publish one applied-event log under $GRIDSE_CHAOS_REPORT_DIR/replay/ —
/// CI uploads the directory as the replay-report artifact so the
/// determinism witness of each run is diffable across commits.
void write_replay_report(const std::string& name, const std::string& log) {
  const auto dir = gridse::runtime::env_value("GRIDSE_CHAOS_REPORT_DIR");
  if (!dir) {
    return;
  }
  const std::filesystem::path out_dir = std::filesystem::path(*dir) / "replay";
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    return;
  }
  std::ofstream out(out_dir / (name + ".json"),
                    std::ios::binary | std::ios::trunc);
  if (out) {
    out << log << "\n";
  }
}

ReplayRun run_replay(core::DseSystem& sys, std::int64_t cycles) {
  ReplayRun out;
  for (std::int64_t c = 0; c < cycles; ++c) {
    out.reports.push_back(sys.run_cycle(static_cast<double>(c) * 60.0));
  }
  out.log_json = sys.replay_log_json();
  return out;
}

TEST(TopologyReplayDseTest, Ieee118OutageIslandRestoreArcConvergesEveryCycle) {
  const io::GeneratedCase gc = io::ieee118_dse();
  const TopologyReplayPlan plan =
      TopologyReplayPlan::generate(gc.kase.network, 5);
  core::DseSystem sys(io::ieee118_dse(), replay_config(plan.to_json()));
  ASSERT_TRUE(sys.topology_active());
  ASSERT_NE(sys.replay(), nullptr);

  const std::int64_t cycles = plan.last_cycle() + 2;
  const ReplayRun run = run_replay(sys, cycles);
  ASSERT_TRUE(sys.replay()->finished());
  EXPECT_EQ(sys.replay()->events_applied(), plan.events.size());

  bool saw_islanding = false;
  for (std::size_t c = 0; c < run.reports.size(); ++c) {
    const core::CycleReport& rep = run.reports[c];
    // Graceful degradation: every cycle of the arc completes and converges,
    // including the fully degraded hold.
    EXPECT_TRUE(rep.dse.all_converged) << "cycle " << c;
    EXPECT_LT(rep.max_vm_error, 0.05) << "cycle " << c;
    saw_islanding = saw_islanding || rep.topology.num_islands > 1;
  }
  // The generated arc splits a PQ bus: islanding must actually happen, and
  // with it masking and dead-bus pinning.
  EXPECT_TRUE(saw_islanding);
  std::size_t total_masked = 0;
  std::size_t total_anchors = 0;
  for (const core::CycleReport& rep : run.reports) {
    total_masked += rep.topology.masked_measurements;
    total_anchors += rep.topology.anchors_added;
  }
  EXPECT_GT(total_masked, 0u);
  EXPECT_GT(total_anchors, 0u);

  // After the final restore the grid is back to base topology.
  EXPECT_EQ(sys.live_topology()->num_out_of_service(), 0u);
  EXPECT_EQ(run.reports.back().topology.num_islands, 1);
}

TEST(TopologyReplayDseTest, AppliedEventLogBitIdenticalAcrossRunsAndThreads) {
  const io::GeneratedCase gc = io::ieee118_dse();
  const TopologyReplayPlan plan =
      TopologyReplayPlan::generate(gc.kase.network, 9);
  const std::int64_t cycles = plan.last_cycle() + 1;

  core::SystemConfig cfg1 = replay_config(plan.to_json());
  cfg1.dse.workers_per_cluster = 1;
  core::DseSystem sys1(io::ieee118_dse(), cfg1);
  const ReplayRun a = run_replay(sys1, cycles);

  core::SystemConfig cfg2 = replay_config(plan.to_json());
  cfg2.dse.workers_per_cluster = 1;
  core::DseSystem sys2(io::ieee118_dse(), cfg2);
  const ReplayRun b = run_replay(sys2, cycles);

  core::SystemConfig cfg3 = replay_config(plan.to_json());
  cfg3.dse.workers_per_cluster = 4;
  core::DseSystem sys3(io::ieee118_dse(), cfg3);
  const ReplayRun c = run_replay(sys3, cycles);

  // The determinism witness: same seed → byte-identical applied-event logs
  // across repeated runs AND across worker thread counts.
  EXPECT_EQ(a.log_json, b.log_json);
  EXPECT_EQ(a.log_json, c.log_json);
  write_replay_report("ieee118-seed9", a.log_json);
  // And the estimates agree exactly between the repeated single-thread runs.
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_DOUBLE_EQ(grid::max_vm_error(a.reports[i].dse.state,
                                        b.reports[i].dse.state),
                     0.0);
  }
}

TEST(TopologyReplayDseTest, ReplayRequiresDcTruth) {
  const io::GeneratedCase gc = io::ieee118_dse();
  const TopologyReplayPlan plan =
      TopologyReplayPlan::generate(gc.kase.network, 5);
  core::SystemConfig cfg = replay_config(plan.to_json());
  cfg.truth_mode = core::TruthMode::kAcPowerFlow;
  EXPECT_THROW(core::DseSystem(io::ieee118_dse(), cfg), InvalidInput);
}

TEST(TopologyReplayDseTest, DroppedEventIsLoggedNotApplied) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "built with GRIDSE_FAULT=OFF";
  }
  fault::clear();
  const io::GeneratedCase gc = io::ieee118_dse();
  TopologyReplayPlan plan;
  plan.seed = 3;
  plan.events.push_back(
      {1, {grid::TopologyEventKind::kLineOutage, 17, -1}});
  // Drop the one scheduled event: a lost switching/status update.
  FaultPlan chaos;
  chaos.seed = 3;
  FaultRule rule;
  rule.site = "topology.apply";
  chaos.rules.push_back(rule);
  fault::install(chaos);

  core::DseSystem sys(io::ieee118_dse(), replay_config(plan.to_json()));
  (void)sys.run_cycle(0.0);
  const core::CycleReport rep = sys.run_cycle(60.0);
  fault::clear();

  // The plan moved on, the grid did not.
  EXPECT_EQ(rep.topology.events_applied, 0);
  EXPECT_TRUE(rep.topology.changed_branches.empty());
  EXPECT_EQ(sys.live_topology()->num_out_of_service(), 0u);
  ASSERT_EQ(sys.replay()->log().size(), 1u);
  EXPECT_TRUE(sys.replay()->log()[0].dropped);
  EXPECT_NE(sys.replay_log_json().find("\"dropped\":true"), std::string::npos);
}

TEST(TopologyReplayDseTest, TenThousandBusTierSurvivesTheArc) {
  if (GRIDSE_TSAN_ENABLED) {
    GTEST_SKIP() << "10k replay arc runs in non-tsan legs";
  }
  io::GeneratedCase gc = io::interconnection10k();
  graph::PartitionOptions popts;
  popts.k = 32;
  popts.seed = 7;
  popts.objective = graph::PartitionObjective::kConvergenceAware;
  gc.subsystem_of_bus = decomp::partition_buses(gc.kase.network, popts);

  // Tighter arc than the default: one spaced outage per cycle plus the
  // guaranteed dead-island split, so the tier exercises every phase while
  // staying test-sized.
  ReplayScenarioOptions sopts;
  sopts.num_outages = 3;
  sopts.hold_cycles = 1;
  const TopologyReplayPlan plan =
      TopologyReplayPlan::generate(gc.kase.network, 10, sopts);

  core::SystemConfig cfg = replay_config(plan.to_json());
  cfg.mapping.num_clusters = 4;
  cfg.dse.workers_per_cluster = 4;
  core::DseSystem sys(std::move(gc), cfg);
  bool saw_islanding = false;
  for (std::int64_t c = 0; c <= plan.last_cycle() + 1; ++c) {
    const core::CycleReport rep = sys.run_cycle(static_cast<double>(c) * 60.0);
    EXPECT_TRUE(rep.dse.all_converged) << "cycle " << c;
    EXPECT_LT(rep.max_vm_error, 0.05) << "cycle " << c;
    saw_islanding = saw_islanding || rep.topology.num_islands > 1;
  }
  EXPECT_TRUE(saw_islanding);
  EXPECT_TRUE(sys.replay()->finished());
  EXPECT_EQ(sys.live_topology()->num_out_of_service(), 0u);
}

}  // namespace
}  // namespace gridse::fault
