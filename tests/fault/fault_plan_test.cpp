#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace gridse::fault {
namespace {

/// Every test leaves the process-wide fault layer clean.
class FaultPlanTest : public ::testing::Test {
 protected:
  void TearDown() override {
    clear();
    ::unsetenv("GRIDSE_FAULT_PLAN");
  }
};

TEST_F(FaultPlanTest, ParsesAllFields) {
  const FaultPlan plan = FaultPlan::parse(R"({
    "seed": 42,
    "rules": [{"site": "wire.write", "action": "bitflip",
               "probability": 0.25, "source": 1, "tag_min": 16,
               "tag_max": 400, "after": 2, "max": 10, "delay_ms": 50}]
  })");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.rules.size(), 1u);
  const FaultRule& rule = plan.rules[0];
  EXPECT_EQ(rule.site, "wire.write");
  EXPECT_EQ(rule.action, ActionKind::kBitFlip);
  EXPECT_DOUBLE_EQ(rule.probability, 0.25);
  EXPECT_EQ(rule.source, 1);
  EXPECT_EQ(rule.tag_min, 16);
  EXPECT_EQ(rule.tag_max, 400);
  EXPECT_EQ(rule.after, 2);
  EXPECT_EQ(rule.max_injections, 10);
  EXPECT_EQ(rule.delay.count(), 50);
}

TEST_F(FaultPlanTest, DefaultsAreWildcardDropAlways) {
  const FaultPlan plan =
      FaultPlan::parse(R"({"rules": [{"site": "mailbox.deliver"}]})");
  EXPECT_EQ(plan.seed, 1u);
  const FaultRule& rule = plan.rules[0];
  EXPECT_EQ(rule.action, ActionKind::kDrop);
  EXPECT_DOUBLE_EQ(rule.probability, 1.0);
  EXPECT_EQ(rule.source, kAnyValue);
  EXPECT_EQ(rule.tag_min, kAnyValue);
  EXPECT_EQ(rule.tag_max, kAnyValue);
  EXPECT_EQ(rule.after, 0);
  EXPECT_EQ(rule.max_injections, -1);
}

TEST_F(FaultPlanTest, TagShorthandSetsBothEnds) {
  const FaultPlan plan = FaultPlan::parse(
      R"({"rules": [{"site": "tcp.send", "tag": 7}]})");
  EXPECT_EQ(plan.rules[0].tag_min, 7);
  EXPECT_EQ(plan.rules[0].tag_max, 7);
}

TEST_F(FaultPlanTest, RejectsMalformedPlans) {
  EXPECT_THROW(FaultPlan::parse("[]"), InvalidInput);
  EXPECT_THROW(FaultPlan::parse("{}"), InvalidInput);
  EXPECT_THROW(FaultPlan::parse(R"({"rules": [{}]})"), InvalidInput);
  EXPECT_THROW(
      FaultPlan::parse(R"({"rules": [{"site": "x", "action": "explode"}]})"),
      InvalidInput);
  EXPECT_THROW(
      FaultPlan::parse(R"({"rules": [{"site": "x", "probability": 1.5}]})"),
      InvalidInput);
  EXPECT_THROW(
      FaultPlan::parse(R"({"rules": [{"site": "x", "after": -1}]})"),
      InvalidInput);
  EXPECT_THROW(
      FaultPlan::parse(R"({"rules": [{"site": "x", "delay_ms": -5}]})"),
      InvalidInput);
}

TEST_F(FaultPlanTest, ExactAndPrefixSiteMatching) {
  FaultPlan plan;
  plan.rules.push_back({.site = "wire.*", .action = ActionKind::kDrop});
  install(plan);
  EXPECT_TRUE(maybe("socket.send").none());  // no match, no action
  EXPECT_EQ(maybe("wire.write").kind, ActionKind::kDrop);
  EXPECT_EQ(maybe("wire.read").kind, ActionKind::kDrop);
  EXPECT_TRUE(maybe("wir").none());
}

TEST_F(FaultPlanTest, SourceAndTagWindowsFilter) {
  FaultPlan plan;
  plan.rules.push_back({.site = "tcp.send",
                        .action = ActionKind::kDrop,
                        .source = 1,
                        .tag_min = 10,
                        .tag_max = 20});
  install(plan);
  EXPECT_TRUE(maybe("tcp.send", 0, 15).none());   // wrong source
  EXPECT_TRUE(maybe("tcp.send", 1, 9).none());    // below window
  EXPECT_TRUE(maybe("tcp.send", 1, 21).none());   // above window
  EXPECT_EQ(maybe("tcp.send", 1, 10).kind, ActionKind::kDrop);
  EXPECT_EQ(maybe("tcp.send", 1, 20).kind, ActionKind::kDrop);
}

TEST_F(FaultPlanTest, AfterSkipsTheFirstHitsPerStream) {
  FaultPlan plan;
  plan.rules.push_back(
      {.site = "s", .action = ActionKind::kDrop, .after = 2});
  install(plan);
  // First two hits of the (0, 0) stream pass untouched, the third drops.
  EXPECT_TRUE(maybe("s", 0, 0).none());
  EXPECT_TRUE(maybe("s", 0, 0).none());
  EXPECT_EQ(maybe("s", 0, 0).kind, ActionKind::kDrop);
  // A different stream has its own counter.
  EXPECT_TRUE(maybe("s", 1, 0).none());
}

TEST_F(FaultPlanTest, MaxInjectionsCapsTheRule) {
  FaultPlan plan;
  plan.rules.push_back(
      {.site = "s", .action = ActionKind::kDrop, .max_injections = 2});
  install(plan);
  EXPECT_EQ(maybe("s").kind, ActionKind::kDrop);
  EXPECT_EQ(maybe("s").kind, ActionKind::kDrop);
  EXPECT_TRUE(maybe("s").none());
  EXPECT_EQ(injected_count(), 2u);
}

TEST_F(FaultPlanTest, ErrorActionThrowsCommError) {
  FaultPlan plan;
  plan.rules.push_back({.site = "s", .action = ActionKind::kError});
  install(plan);
  EXPECT_THROW(maybe("s"), CommError);
  EXPECT_EQ(injection_log().size(), 1u);
}

TEST_F(FaultPlanTest, InjectDropTreatsAnyActionAsDrop) {
  FaultPlan plan;
  plan.rules.push_back({.site = "s", .action = ActionKind::kBitFlip});
  install(plan);
  EXPECT_TRUE(inject_drop("s"));
}

TEST_F(FaultPlanTest, SameSeedSameDecisions) {
  const auto run = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.rules.push_back(
        {.site = "s", .action = ActionKind::kDrop, .probability = 0.5});
    install(plan);
    std::vector<bool> fired;
    for (int tag = 0; tag < 8; ++tag) {
      for (int hit = 0; hit < 32; ++hit) {
        fired.push_back(!maybe("s", 0, tag).none());
      }
    }
    const auto log = injection_log();
    clear();
    return std::make_pair(fired, log);
  };
  const auto [fired_a, log_a] = run(7);
  const auto [fired_b, log_b] = run(7);
  EXPECT_EQ(fired_a, fired_b);
  EXPECT_EQ(log_a, log_b);
  const auto [fired_c, log_c] = run(8);
  EXPECT_NE(fired_a, fired_c);  // a different seed changes the schedule
}

TEST_F(FaultPlanTest, DecisionsAreIndependentOfThreadInterleaving) {
  // Two threads hammer disjoint (source, tag) streams concurrently; the
  // sorted injection log must equal a single-threaded run of the same plan.
  const auto make_plan = [] {
    FaultPlan plan;
    plan.seed = 99;
    plan.rules.push_back(
        {.site = "s", .action = ActionKind::kDrop, .probability = 0.3});
    return plan;
  };
  install(make_plan());
  {
    std::thread a([] {
      for (int hit = 0; hit < 200; ++hit) (void)maybe("s", 0, 1);
    });
    std::thread b([] {
      for (int hit = 0; hit < 200; ++hit) (void)maybe("s", 1, 2);
    });
    a.join();
    b.join();
  }
  const auto threaded = injection_log();

  install(make_plan());
  for (int hit = 0; hit < 200; ++hit) (void)maybe("s", 0, 1);
  for (int hit = 0; hit < 200; ++hit) (void)maybe("s", 1, 2);
  const auto sequential = injection_log();

  EXPECT_EQ(threaded, sequential);
}

TEST_F(FaultPlanTest, FirstMatchingRuleWins) {
  FaultPlan plan;
  plan.rules.push_back(
      {.site = "s", .action = ActionKind::kDrop, .max_injections = 1});
  plan.rules.push_back({.site = "s", .action = ActionKind::kBitFlip});
  install(plan);
  EXPECT_EQ(maybe("s").kind, ActionKind::kDrop);
  // Rule 0 is capped out; rule 1 takes over.
  EXPECT_EQ(maybe("s").kind, ActionKind::kBitFlip);
}

TEST_F(FaultPlanTest, EnvPlanInstallsInlineJson) {
  ::setenv("GRIDSE_FAULT_PLAN",
           R"({"seed": 3, "rules": [{"site": "env.site"}]})", 1);
  EXPECT_TRUE(load_env_plan());
  EXPECT_TRUE(active());
  EXPECT_EQ(maybe("env.site").kind, ActionKind::kDrop);
}

TEST_F(FaultPlanTest, EnvPlanReportsMissingFile) {
  ::setenv("GRIDSE_FAULT_PLAN", "/nonexistent/fault_plan.json", 1);
  EXPECT_THROW(load_env_plan(), InvalidInput);
}

TEST_F(FaultPlanTest, BitflipIsDeterministicAndSingleBit) {
  std::vector<std::uint8_t> a(16, 0);
  std::vector<std::uint8_t> b(16, 0);
  apply_bitflip(12345, a);
  apply_bitflip(12345, b);
  EXPECT_EQ(a, b);
  int set_bits = 0;
  for (const std::uint8_t byte : a) set_bits += __builtin_popcount(byte);
  EXPECT_EQ(set_bits, 1);
  apply_bitflip(12345, {});  // empty span: no-op, no crash
}

TEST_F(FaultPlanTest, TruncateLengthIsAStrictNonemptyPrefix) {
  for (std::uint64_t mutation = 0; mutation < 64; ++mutation) {
    const std::size_t cut = truncate_length(mutation, 40);
    EXPECT_GE(cut, 1u);
    EXPECT_LT(cut, 40u);
  }
  EXPECT_EQ(truncate_length(0, 2), 1u);
}

TEST_F(FaultPlanTest, LogToJsonIsWellFormed) {
  FaultPlan plan;
  plan.rules.push_back({.site = "s", .action = ActionKind::kDrop});
  install(plan);
  (void)maybe("s", 2, 5);
  const std::string json = log_to_json();
  EXPECT_NE(json.find("\"site\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"source\":2"), std::string::npos);
  EXPECT_NE(json.find("\"tag\":5"), std::string::npos);
  EXPECT_NE(json.find("\"action\":\"drop\""), std::string::npos);
}

TEST_F(FaultPlanTest, ClearDeactivates) {
  FaultPlan plan;
  plan.rules.push_back({.site = "s"});
  install(plan);
  ASSERT_TRUE(active());
  clear();
  EXPECT_FALSE(active());
  EXPECT_TRUE(maybe("s").none());
  EXPECT_EQ(injected_count(), 0u);
}

}  // namespace
}  // namespace gridse::fault
