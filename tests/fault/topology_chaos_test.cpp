// Topology events under chaos: the event-driven repartition path (threshold
// trigger, checkpoint reseed, warm restart) and its composition with a
// cluster loss landing in the SAME cycle as a topology batch. Mirrors the
// recovery_chaos suite: recovery_config()-style setup, kill-rank-1 fault
// plan, GRIDSE_CHAOS_REPORT_DIR health reports for the CI chaos job.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/architecture.hpp"
#include "fault/fault.hpp"
#include "fault/topology_replay.hpp"
#include "io/synthetic.hpp"
#include "runtime/resilience.hpp"
#include "runtime/tcp_comm.hpp"

namespace gridse::core {
namespace {

/// One line outage at cycle 1 — enough to touch subsystems and (with a tiny
/// threshold) force the repartition path deterministically.
std::string outage_plan_json() {
  fault::TopologyReplayPlan plan;
  plan.seed = 21;
  plan.events.push_back(
      {1, {grid::TopologyEventKind::kLineOutage, 17, -1}});
  return plan.to_json();
}

/// IEEE-118, three clusters, TCP, recovery on (same tightened heartbeat as
/// the recovery_chaos suite) plus a topology plan whose threshold forces a
/// repartition on the first touched cycle: `score > 1e-9 * baseline` holds
/// for any positive score.
SystemConfig topo_recovery_config() {
  SystemConfig cfg;
  cfg.truth_mode = TruthMode::kDcLinearized;
  cfg.mapping.num_clusters = 3;
  cfg.transport = Transport::kTcp;
  cfg.resilience.barrier_timeout = std::chrono::milliseconds{30'000};
  cfg.resilience.exchange_deadline = std::chrono::milliseconds{2000};
  cfg.resilience.recovery.enabled = true;
  cfg.resilience.recovery.heartbeat_period = std::chrono::milliseconds{5};
  cfg.resilience.recovery.heartbeat_timeout = std::chrono::milliseconds{500};
  cfg.resilience.recovery.heartbeat_rounds = 2;
  cfg.topology.plan = outage_plan_json();
  cfg.topology.repartition_threshold = 1e-9;
  return cfg;
}

fault::FaultPlan kill_rank1_plan() {
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.rules.push_back({.site = "tcp.send",
                        .action = fault::ActionKind::kDrop,
                        .source = 1,
                        .tag_min = 0,
                        .tag_max = runtime::TcpWorld::kMaxUserTag});
  return plan;
}

int max_step1_iterations(const CycleReport& rep, bool warm_only) {
  int worst = 0;
  for (const SubsystemTrace& t : rep.dse.traces) {
    if (t.step1.gauss_newton_iterations == 0) continue;  // adopted, not run
    if (warm_only && !t.step1.warm_start) continue;
    worst = std::max(worst, t.step1.gauss_newton_iterations);
  }
  return worst;
}

/// Chaos health report with the topology block bench_gate.py reads
/// informationally (events_applied / repartitions / islands).
void write_health_report(const std::string& name, const DseSystem& sys,
                         const CycleReport& degraded_cycle,
                         const CycleReport& final_cycle,
                         std::uint64_t injected, double seconds) {
  const auto dir = gridse::runtime::env_value("GRIDSE_CHAOS_REPORT_DIR");
  if (!dir) {
    return;
  }
  std::ostringstream json;
  json << "{\"test\":\"" << name << "\",\"injected\":" << injected
       << ",\"retries\":0,\"seconds\":" << seconds << ",\"all_converged\":"
       << (final_cycle.dse.all_converged ? "true" : "false")
       << ",\"degraded\":[";
  for (std::size_t i = 0; i < degraded_cycle.dse.degraded.size(); ++i) {
    const DegradedStatus& st = degraded_cycle.dse.degraded[i];
    if (i > 0) json << ",";
    json << "{\"subsystem\":" << st.subsystem << ",\"missing_neighbors\":[";
    for (std::size_t j = 0; j < st.missing_neighbors.size(); ++j) {
      if (j > 0) json << ",";
      json << st.missing_neighbors[j];
    }
    json << "],\"missing_redistribution\":"
         << (st.missing_redistribution ? "true" : "false") << "}";
  }
  json << "],\"unresponsive_ranks\":[";
  for (std::size_t i = 0; i < degraded_cycle.dse.unresponsive_ranks.size();
       ++i) {
    if (i > 0) json << ",";
    json << degraded_cycle.dse.unresponsive_ranks[i];
  }
  const Supervisor* sup = sys.supervisor();
  json << "],\"injections\":" << fault::log_to_json()
       << ",\"recovery\":{\"remaps\":" << (sup ? sup->remaps() : 0)
       << ",\"rejoins\":" << (sup ? sup->rejoins() : 0)
       << ",\"checkpoint_bytes\":"
       << final_cycle.dse.recovery.checkpoint_bytes << "},\"topology\":{"
       << "\"events_applied\":"
       << (sys.replay() ? sys.replay()->events_applied() : 0)
       << ",\"repartitions\":" << sys.topology_repartitions()
       << ",\"islands\":" << final_cycle.topology.num_islands
       << "},\"replay\":" << sys.replay_log_json() << "}";
  std::ofstream out(*dir + "/" + name + ".json",
                    std::ios::binary | std::ios::trunc);
  if (out) {
    out << json.str() << "\n";
  }
}

class TopologyChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kEnabled) {
      GTEST_SKIP() << "built with GRIDSE_FAULT=OFF";
    }
    fault::clear();
  }
  void TearDown() override { fault::clear(); }
};

TEST_F(TopologyChaosTest, ThresholdRepartitionWarmStartsTheSameCycle) {
  DseSystem sys(io::ieee118_dse(), topo_recovery_config());
  ASSERT_TRUE(sys.recovery_enabled());

  // Cycle 0: base topology, no events yet, cold start, checkpoints seeded.
  const CycleReport cold = sys.run_cycle(0.0);
  EXPECT_TRUE(cold.dse.all_converged);
  EXPECT_FALSE(cold.topology.repartitioned);
  const int cold_iters = max_step1_iterations(cold, /*warm_only=*/false);
  ASSERT_GT(cold_iters, 0);

  // Cycle 1: the outage applies, the score trips the (tiny) threshold, the
  // system repartitions, reseeds the checkpoint store in the new numbering
  // — and the SAME cycle's restore phase warm-starts every estimator.
  const CycleReport repart = sys.run_cycle(60.0);
  EXPECT_EQ(repart.topology.events_applied, 1);
  EXPECT_TRUE(repart.topology.repartitioned);
  EXPECT_GT(repart.topology.partition_score, 0.0);
  EXPECT_GT(repart.topology.num_subsystems, 0);
  EXPECT_EQ(sys.topology_repartitions(), 1);
  EXPECT_EQ(sys.supervisor()->topology_repartitions(), 1);
  EXPECT_TRUE(repart.dse.all_converged);
  EXPECT_LT(repart.max_vm_error, 0.05);

  // Warm restart: reseeded checkpoints reached the estimators, and no warm
  // solve needed more Gauss-Newton iterations than the cold baseline.
  EXPECT_GT(repart.dse.recovery.warm_started, 0);
  EXPECT_LE(max_step1_iterations(repart, /*warm_only=*/true), cold_iters);

  // Cycle 2: no further events — no further repartition, still healthy.
  const CycleReport after = sys.run_cycle(120.0);
  EXPECT_FALSE(after.topology.repartitioned);
  EXPECT_EQ(sys.topology_repartitions(), 1);
  EXPECT_TRUE(after.dse.all_converged);
}

TEST_F(TopologyChaosTest, RepartitionCountsWithoutSupervisorToo) {
  // The repartition path must not depend on the recovery layer: with the
  // supervisor off it still triggers, still converges (flat restart), and
  // is still counted on the system.
  SystemConfig cfg;
  cfg.truth_mode = TruthMode::kDcLinearized;
  cfg.mapping.num_clusters = 3;
  cfg.topology.plan = outage_plan_json();
  cfg.topology.repartition_threshold = 1e-9;
  DseSystem sys(io::ieee118_dse(), cfg);
  EXPECT_FALSE(sys.recovery_enabled());

  (void)sys.run_cycle(0.0);
  const CycleReport repart = sys.run_cycle(60.0);
  EXPECT_TRUE(repart.topology.repartitioned);
  EXPECT_EQ(sys.topology_repartitions(), 1);
  EXPECT_TRUE(repart.dse.all_converged);
  EXPECT_LT(repart.max_vm_error, 0.05);
}

TEST_F(TopologyChaosTest, ClusterKillDuringTopologyBatchComposes) {
  DseSystem sys(io::ieee118_dse(), topo_recovery_config());
  ASSERT_TRUE(sys.recovery_enabled());
  const auto start = std::chrono::steady_clock::now();

  // Cycle 0: healthy baseline.
  const CycleReport healthy = sys.run_cycle(0.0);
  EXPECT_TRUE(healthy.dse.all_converged);
  const int cold_iters = max_step1_iterations(healthy, /*warm_only=*/false);

  // Cycle 1: rank 1 goes silent in the SAME cycle the topology batch
  // applies and trips the repartition. Both machineries fire: the event is
  // applied + repartitioned at the cycle top, the heartbeat condemns the
  // silenced rank mid-run, and the cycle finishes degraded — not failed.
  fault::install(kill_rank1_plan());
  const CycleReport killed = sys.run_cycle(60.0);
  const std::uint64_t injected = fault::injected_count();
  fault::clear();
  EXPECT_GT(injected, 0u);
  EXPECT_EQ(killed.topology.events_applied, 1);
  EXPECT_TRUE(killed.topology.repartitioned);
  EXPECT_TRUE(killed.dse.degraded_mode());
  EXPECT_EQ(killed.dse.unresponsive_ranks, (std::vector<int>{1}));
  const int dead_cluster = killed.participants.at(1);

  // Cycle 2: the recovery remap runs over the survivors while the grid is
  // still in its post-event (repartitioned) shape — the two compose, the
  // cycle is healthy, and warm solves stay within the cold baseline.
  const CycleReport remapped = sys.run_cycle(120.0);
  EXPECT_EQ(remapped.participants.size(), 2u);
  EXPECT_TRUE(remapped.dse.all_converged);
  EXPECT_TRUE(remapped.dse.degraded.empty());
  EXPECT_LT(remapped.max_vm_error, 0.05);
  EXPECT_GT(remapped.dse.recovery.warm_started, 0);
  EXPECT_LE(max_step1_iterations(remapped, /*warm_only=*/true), cold_iters);
  EXPECT_EQ(sys.supervisor()->remaps(), 1);
  EXPECT_EQ(sys.topology_repartitions(), 1);

  // Cycle 3: fold the revived cluster back in — full strength again on the
  // post-event topology.
  sys.announce_rejoin(dead_cluster);
  const CycleReport rejoined = sys.run_cycle(180.0);
  EXPECT_EQ(rejoined.participants, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(rejoined.dse.all_converged);
  EXPECT_TRUE(sys.replay()->finished());

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  write_health_report("topology_kill_compose", sys, killed, rejoined, injected,
                      seconds);
}

}  // namespace
}  // namespace gridse::core
