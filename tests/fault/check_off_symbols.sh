#!/usr/bin/env bash
# In a GRIDSE_FAULT=OFF build the transport libraries must carry no
# reference to the fault-injection layer at all — the FAULT_* macros expand
# to unevaluated sizeof, so even an undefined symbol against
# gridse::fault::maybe in libgridse_runtime.a means the compile-out leaked.
# (libgridse_fault itself still defines the layer — plan parsing stays
# testable in OFF builds — so only the hot-path archives are checked.)
#
# The topology-replay harness also lives in namespace gridse::fault but is
# NOT the injection layer: replay runs in OFF builds too (only its
# FAULT_DROP hook compiles out), so its symbols are exempt.
#
# Usage: check_off_symbols.sh <archive>...
set -euo pipefail

replay_exempt='TopologyReplay|ScheduledTopologyEvent|AppliedTopologyEvent|ReplayScenario|load_replay_plan'

status=0
for archive in "$@"; do
  if symbols=$(nm -C "${archive}" 2>/dev/null | grep "gridse::fault::" \
               | grep -vE "${replay_exempt}"); then
    echo "FAIL: ${archive} references the fault layer in a FAULT=OFF build:" >&2
    echo "${symbols}" | head -20 >&2
    status=1
  else
    echo "ok: ${archive} is free of gridse::fault symbols"
  fi
done
exit "${status}"
