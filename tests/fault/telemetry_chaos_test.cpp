#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/architecture.hpp"
#include "fault/fault.hpp"
#include "io/synthetic.hpp"
#include "obs/metrics.hpp"
#include "obs/trace/json_mini.hpp"
#include "runtime/resilience.hpp"
#include "runtime/tcp_comm.hpp"

namespace gridse::core {
namespace {

namespace fs = std::filesystem;
namespace jsonm = obs::jsonm;

/// Same chaos setup as recovery_chaos_test (ieee118, three clusters, TCP,
/// tight heartbeat), plus the telemetry sampler armed: the point under test
/// is that a mid-cycle kill leaves a flight-recorder post-mortem behind.
SystemConfig telemetry_recovery_config(const std::string& dir) {
  SystemConfig cfg;
  cfg.mapping.num_clusters = 3;
  cfg.transport = Transport::kTcp;
  cfg.resilience.barrier_timeout = std::chrono::milliseconds{30'000};
  cfg.resilience.exchange_deadline = std::chrono::milliseconds{2000};
  cfg.resilience.recovery.enabled = true;
  cfg.resilience.recovery.heartbeat_period = std::chrono::milliseconds{5};
  cfg.resilience.recovery.heartbeat_timeout = std::chrono::milliseconds{500};
  cfg.resilience.recovery.heartbeat_rounds = 2;
  cfg.telemetry.dir = dir;
  cfg.telemetry.flight_ring = 8;
  return cfg;
}

/// Silence comm-rank 1 for one cycle (the recovery chaos kill plan: drop
/// every user-tag frame it sends; barrier control is spared).
fault::FaultPlan kill_rank1_plan() {
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.rules.push_back({.site = "tcp.send",
                        .action = fault::ActionKind::kDrop,
                        .source = 1,
                        .tag_min = 0,
                        .tag_max = runtime::TcpWorld::kMaxUserTag});
  return plan;
}

/// Where the telemetry artifacts land. Under CI the chaos jobs set
/// GRIDSE_CHAOS_REPORT_DIR and upload it, so the flight files and the
/// time-series survive the run as artifacts; locally a temp dir suffices.
fs::path telemetry_output_dir() {
  if (const auto base = runtime::env_value("GRIDSE_CHAOS_REPORT_DIR")) {
    return fs::path(*base) / "telemetry";
  }
  return fs::temp_directory_path() / "gridse_telemetry_chaos_test";
}

jsonm::Value parse_file(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::string doc((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return jsonm::parse(doc);
}

class TelemetryChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kEnabled) {
      GTEST_SKIP() << "built with GRIDSE_FAULT=OFF";
    }
    if (!obs::kEnabled) {
      GTEST_SKIP() << "built with GRIDSE_OBS=OFF (no telemetry sampler)";
    }
    fault::clear();
  }
  void TearDown() override { fault::clear(); }
};

/// Kill during cycle 1 => flight-1.json names the dead cluster and carries
/// the degraded cycle's record, and the time-series tracks the shrinking
/// participant set across the remap/rejoin sequence.
TEST_F(TelemetryChaosTest, KillDuringCycleProducesFlightRecord) {
  const fs::path dir = telemetry_output_dir();
  fs::remove_all(dir);
  obs::MetricsRegistry::global().reset();

  int dead_cluster = -1;
  {
    DseSystem sys(io::ieee118_dse(),
                  telemetry_recovery_config(dir.string()));
    const CycleReport healthy = sys.run_cycle(0.0);
    EXPECT_TRUE(healthy.dse.all_converged);
    EXPECT_FALSE(fs::exists(dir / "flight-0.json"));

    fault::install(kill_rank1_plan());
    const CycleReport killed = sys.run_cycle(60.0);
    fault::clear();
    EXPECT_TRUE(killed.dse.degraded_mode());
    dead_cluster = killed.participants.at(1);

    const CycleReport remapped = sys.run_cycle(120.0);
    EXPECT_EQ(remapped.participants.size(), 2u);
    sys.announce_rejoin(dead_cluster);
    const CycleReport rejoined = sys.run_cycle(180.0);
    EXPECT_EQ(rejoined.participants.size(), 3u);
  }  // ~DseSystem flushes any pending flight + the sampler's files

  // The kill was detected by the heartbeat during cycle 1, so the flight
  // recorder must have dropped flight-1.json at that cycle's boundary.
  const fs::path flight = dir / "flight-1.json";
  ASSERT_TRUE(fs::exists(flight)) << flight;
  const jsonm::Value doc = parse_file(flight);
  EXPECT_EQ(doc.find("schema")->text, "gridse-flight/1");
  EXPECT_EQ(doc.find("cycle")->as_u64(), 1u);
  ASSERT_EQ(doc.find("dead_clusters")->array.size(), 1u);
  EXPECT_EQ(static_cast<int>(doc.find("dead_clusters")->array[0].number),
            dead_cluster);
  EXPECT_FALSE(doc.find("degraded_subsystems")->array.empty());
  bool saw_cluster_dead = false;
  for (const jsonm::Value& t : doc.find("triggers")->array) {
    if (t.find("kind")->text == "cluster_dead") {
      saw_cluster_dead = true;
      EXPECT_EQ(static_cast<int>(t.find("cluster")->number), dead_cluster);
    }
  }
  EXPECT_TRUE(saw_cluster_dead);
  // The post-mortem trace flush landed next to the flight file.
  EXPECT_TRUE(fs::is_directory(dir / "flight-1-trace"));

  // The remap (cycle 2) and rejoin (cycle 3) transitions each armed the
  // recorder as well.
  EXPECT_TRUE(fs::exists(dir / "flight-2.json"));
  EXPECT_TRUE(fs::exists(dir / "flight-3.json"));

  // Time-series: one record per cycle with the participant counts walking
  // through kill -> remap -> rejoin, and the kill cycle flagged degraded.
  std::ifstream in(dir / "timeseries.jsonl");
  ASSERT_TRUE(in.is_open());
  std::vector<std::size_t> participant_counts;
  std::vector<bool> degraded;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const jsonm::Value rec = jsonm::parse(line);
    const jsonm::Value* kind = rec.find("kind");
    if (kind == nullptr || kind->text != "cycle") continue;
    participant_counts.push_back(rec.find("participants")->array.size());
    degraded.push_back(!rec.find("degraded_subsystems")->array.empty());
  }
  EXPECT_EQ(participant_counts, (std::vector<std::size_t>{3, 3, 2, 3}));
  EXPECT_EQ(degraded, (std::vector<bool>{false, true, false, false}));
}

}  // namespace
}  // namespace gridse::core
