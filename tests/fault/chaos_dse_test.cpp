#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/debug_sync.hpp"
#include "core/dse_driver.hpp"
#include "decomp/sensitivity.hpp"
#include "fault/fault.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/synthetic.hpp"
#include "medici/medici_comm.hpp"
#include "runtime/resilience.hpp"
#include "runtime/tcp_comm.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace gridse::core {
namespace {

/// The IEEE-118 decomposition has 9 subsystems; pseudo-measurement tags
/// occupy [16, 16 + m*m + m] (see dse_driver.cpp's tag layout). Fault rules
/// scoped to this window never touch barriers, redistribution, or combine.
constexpr int kM = 9;
constexpr int kPseudoTagLo = 16;
constexpr int kPseudoTagHi = 16 + kM * kM + kM;

/// Chaos suite: the 2-cluster IEEE-118 system under seeded fault schedules.
/// Skipped (not failed) when the fault layer is compiled out.
class ChaosDseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kEnabled) {
      GTEST_SKIP() << "built with GRIDSE_FAULT=OFF";
    }
    fault::clear();
    generated_ = io::ieee118_dse();
    d_ = decomp::decompose(generated_.kase.network,
                           generated_.subsystem_of_bus);
    decomp::analyze_sensitivity(generated_.kase.network, d_, {});
    pf_ = grid::solve_power_flow(generated_.kase.network);
    grid::MeasurementPlan plan;
    for (const decomp::Subsystem& s : d_.subsystems) {
      plan.pmu_buses.push_back(s.buses.front());
    }
    grid::MeasurementGenerator gen(generated_.kase.network, plan);
    Rng rng(55);
    meas_ = gen.generate(pf_.state, rng);
    // Two clusters, the paper's smallest distributed configuration.
    assignment_ = {0, 0, 0, 0, 0, 1, 1, 1, 1};
  }

  void TearDown() override { fault::clear(); }

  struct ChaosRun {
    DseResult rank0;
    std::vector<fault::InjectionRecord> log;
    std::string log_json;
    std::uint64_t injected = 0;
    std::uint64_t retries = 0;
    double seconds = 0.0;
  };

  [[nodiscard]] static DseOptions chaos_options(
      std::chrono::milliseconds deadline) {
    DseOptions opts;
    opts.exchange_deadline = deadline;
    opts.degraded_step2 = true;
    return opts;
  }

  ChaosRun run_tcp(const fault::FaultPlan& plan, const DseOptions& opts) {
    fault::install(plan);
    DseDriver driver(generated_.kase.network, d_, opts);
    runtime::ResilienceConfig res;
    res.barrier_timeout = std::chrono::milliseconds{30'000};
    ChaosRun out;
    Timer timer;
    {
      runtime::TcpWorld world(2, res);
      analysis::Mutex mutex{"chaos_dse_test::mutex"};
      world.run([&](runtime::Communicator& c) {
        DseResult r = driver.run(c, meas_, assignment_);
        if (c.rank() == 0) {
          analysis::LockGuard lock(mutex);
          out.rank0 = std::move(r);
        }
      });
    }
    out.seconds = timer.seconds();
    out.log = fault::injection_log();
    out.log_json = fault::log_to_json();
    out.injected = fault::injected_count();
    fault::clear();
    return out;
  }

  ChaosRun run_medici(const fault::FaultPlan& plan, const DseOptions& opts,
                      int retry_attempts) {
    fault::install(plan);
    DseDriver driver(generated_.kase.network, d_, opts);
    runtime::ResilienceConfig res;
    res.barrier_timeout = std::chrono::milliseconds{30'000};
    res.send_retry.max_attempts = retry_attempts;
    res.send_retry.backoff_base = std::chrono::milliseconds{2};
    ChaosRun out;
    Timer timer;
    {
      medici::MediciWorld world(2, medici::TransportMode::kDirectTcp,
                                medici::medici_relay_model(),
                                medici::unshaped_model(), res);
      analysis::Mutex mutex{"chaos_dse_test::mutex"};
      world.run([&](runtime::Communicator& c) {
        DseResult r = driver.run(c, meas_, assignment_);
        if (c.rank() == 0) {
          analysis::LockGuard lock(mutex);
          out.rank0 = std::move(r);
        }
      });
      out.retries = world.total_retries();
    }
    out.seconds = timer.seconds();
    out.log = fault::injection_log();
    out.log_json = fault::log_to_json();
    out.injected = fault::injected_count();
    fault::clear();
    return out;
  }

  /// The healthy baseline the degraded runs are compared against.
  DseResult golden(const DseOptions& opts) {
    fault::clear();
    DseDriver driver(generated_.kase.network, d_, opts);
    runtime::TcpWorld world(2);
    analysis::Mutex mutex{"chaos_dse_test::mutex"};
    DseResult out;
    world.run([&](runtime::Communicator& c) {
      DseResult r = driver.run(c, meas_, assignment_);
      if (c.rank() == 0) {
        analysis::LockGuard lock(mutex);
        out = std::move(r);
      }
    });
    return out;
  }

  /// Subsystems hosted on rank 0 that depend on a rank-1 neighbour — the
  /// exact degradation set when every pseudo message out of rank 1 is lost.
  [[nodiscard]] std::vector<int> rank0_subsystems_with_rank1_neighbors()
      const {
    std::vector<int> out;
    for (int t = 0; t < kM; ++t) {
      if (assignment_[static_cast<std::size_t>(t)] != 0) continue;
      for (const int s : d_.neighbors_of(t)) {
        if (assignment_[static_cast<std::size_t>(s)] == 1) {
          out.push_back(t);
          break;
        }
      }
    }
    return out;
  }

  [[nodiscard]] static std::vector<int> degraded_subsystems(
      const DseResult& r) {
    std::vector<int> out;
    for (const DegradedStatus& st : r.degraded) {
      out.push_back(st.subsystem);
    }
    return out;
  }

  /// Max |state - golden| over the buses of non-degraded subsystems.
  [[nodiscard]] double undegraded_error(const DseResult& r,
                                        const DseResult& gold) const {
    std::set<int> degraded;
    for (const DegradedStatus& st : r.degraded) degraded.insert(st.subsystem);
    double err = 0.0;
    for (int s = 0; s < kM; ++s) {
      if (degraded.count(s) > 0) continue;
      for (const grid::BusIndex b :
           d_.subsystems[static_cast<std::size_t>(s)].buses) {
        const auto i = static_cast<std::size_t>(b);
        err = std::max(err, std::abs(r.state.vm[i] - gold.state.vm[i]));
        err = std::max(err, std::abs(r.state.theta[i] - gold.state.theta[i]));
      }
    }
    return err;
  }

  /// Chaos health report (uploaded by the CI chaos-smoke job). Written only
  /// when GRIDSE_CHAOS_REPORT_DIR is set; silently skipped otherwise.
  static void write_health_report(const std::string& name,
                                  const ChaosRun& run) {
    const auto dir = gridse::runtime::env_value("GRIDSE_CHAOS_REPORT_DIR");
    if (!dir) {
      return;
    }
    std::ostringstream json;
    json << "{\"test\":\"" << name << "\",\"injected\":" << run.injected
         << ",\"retries\":" << run.retries << ",\"seconds\":" << run.seconds
         << ",\"all_converged\":" << (run.rank0.all_converged ? "true"
                                                              : "false")
         << ",\"degraded\":[";
    for (std::size_t i = 0; i < run.rank0.degraded.size(); ++i) {
      const DegradedStatus& st = run.rank0.degraded[i];
      if (i > 0) json << ",";
      json << "{\"subsystem\":" << st.subsystem << ",\"missing_neighbors\":[";
      for (std::size_t j = 0; j < st.missing_neighbors.size(); ++j) {
        if (j > 0) json << ",";
        json << st.missing_neighbors[j];
      }
      json << "],\"missing_redistribution\":"
           << (st.missing_redistribution ? "true" : "false") << "}";
    }
    json << "],\"unresponsive_ranks\":[";
    for (std::size_t i = 0; i < run.rank0.unresponsive_ranks.size(); ++i) {
      if (i > 0) json << ",";
      json << run.rank0.unresponsive_ranks[i];
    }
    json << "],\"injections\":" << run.log_json << "}";
    std::ofstream out(*dir + "/" + name + ".json",
                      std::ios::binary | std::ios::trunc);
    if (out) {
      out << json.str() << "\n";
    }
  }

  io::GeneratedCase generated_;
  decomp::Decomposition d_;
  grid::PowerFlowResult pf_;
  grid::MeasurementSet meas_;
  std::vector<graph::PartId> assignment_;
};

TEST_F(ChaosDseTest, DropOnePeerDegradesExactlyTheBoundarySubsystems) {
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.rules.push_back({.site = "tcp.send",
                        .action = fault::ActionKind::kDrop,
                        .source = 1,
                        .tag_min = kPseudoTagLo,
                        .tag_max = kPseudoTagHi});
  const DseOptions opts = chaos_options(std::chrono::milliseconds{2000});

  const ChaosRun a = run_tcp(plan, opts);
  write_health_report("drop_one_peer", a);

  // Bounded completion: the cycle finishes instead of hanging on the lost
  // peer (the ctest timeout is the hard backstop; this is the soft one).
  EXPECT_LT(a.seconds, 120.0);
  EXPECT_GT(a.injected, 0u);

  // Exactly the rank-0 subsystems that needed a rank-1 neighbour degrade.
  EXPECT_EQ(degraded_subsystems(a.rank0),
            rank0_subsystems_with_rank1_neighbors());
  for (const DegradedStatus& st : a.rank0.degraded) {
    EXPECT_FALSE(st.missing_redistribution);
    EXPECT_FALSE(st.missing_neighbors.empty());
    for (const std::int32_t n : st.missing_neighbors) {
      EXPECT_EQ(assignment_[static_cast<std::size_t>(n)], 1);
    }
  }
  EXPECT_TRUE(a.rank0.degraded_mode());
  EXPECT_TRUE(a.rank0.unresponsive_ranks.empty());

  // Undegraded subsystems are untouched by the faults: they match a
  // fault-free run bit-for-bit (same inputs, deterministic solver).
  const DseResult gold = golden(opts);
  EXPECT_LT(undegraded_error(a.rank0, gold), 1e-9);

  // Reproducibility: the same seed produces the identical fault schedule
  // and the identical degradation report.
  const ChaosRun b = run_tcp(plan, opts);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(degraded_subsystems(a.rank0), degraded_subsystems(b.rank0));
}

TEST_F(ChaosDseTest, ThirtyPercentPseudoLossIsDeterministicPerSeed) {
  fault::FaultPlan plan;
  plan.seed = 77;
  plan.rules.push_back({.site = "tcp.send",
                        .action = fault::ActionKind::kDrop,
                        .probability = 0.3,
                        .tag_min = kPseudoTagLo,
                        .tag_max = kPseudoTagHi});
  const DseOptions opts = chaos_options(std::chrono::milliseconds{2000});

  const ChaosRun a = run_tcp(plan, opts);
  const ChaosRun b = run_tcp(plan, opts);
  write_health_report("pseudo_loss_30pct", a);

  EXPECT_GT(a.injected, 0u);
  EXPECT_EQ(a.log, b.log);  // identical fault schedule per seed
  EXPECT_EQ(degraded_subsystems(a.rank0), degraded_subsystems(b.rank0));
  EXPECT_TRUE(a.rank0.unresponsive_ranks.empty());
  EXPECT_LT(a.seconds, 120.0);

  // Whatever survived undegraded still matches the fault-free baseline.
  const DseResult gold = golden(opts);
  EXPECT_LT(undegraded_error(a.rank0, gold), 1e-9);
}

TEST_F(ChaosDseTest, DelayedFanInCompletesUndegraded) {
  fault::FaultPlan plan;
  plan.seed = 11;
  plan.rules.push_back({.site = "tcp.send",
                        .action = fault::ActionKind::kDelay,
                        .tag_min = kPseudoTagLo,
                        .tag_max = kPseudoTagHi,
                        .max_injections = 16,
                        .delay = std::chrono::milliseconds{40}});
  // The deadline comfortably covers the injected delays: slow, not lost.
  const DseOptions opts = chaos_options(std::chrono::milliseconds{20'000});

  const ChaosRun run = run_tcp(plan, opts);
  EXPECT_GT(run.injected, 0u);
  EXPECT_TRUE(run.rank0.degraded.empty());
  EXPECT_TRUE(run.rank0.unresponsive_ranks.empty());
  EXPECT_TRUE(run.rank0.all_converged);

  const DseResult gold = golden(opts);
  EXPECT_LT(undegraded_error(run.rank0, gold), 1e-9);
}

TEST_F(ChaosDseTest, CorruptedFramesNeverDesyncTheExchange) {
  // Bit-flips hit payloads on the wire; a flipped bus index is rejected or
  // ignored, a flipped double perturbs one pseudo measurement. Either way
  // the run completes and the schedule reproduces per seed.
  fault::FaultPlan plan;
  plan.seed = 23;
  plan.rules.push_back({.site = "wire.write",
                        .action = fault::ActionKind::kBitFlip,
                        .probability = 0.2,
                        .tag_min = kPseudoTagLo,
                        .tag_max = kPseudoTagHi});
  const DseOptions opts = chaos_options(std::chrono::milliseconds{5000});

  const ChaosRun a = run_medici(plan, opts, /*retry_attempts=*/3);
  const ChaosRun b = run_medici(plan, opts, /*retry_attempts=*/3);
  write_health_report("corrupt_frames", a);

  EXPECT_GT(a.injected, 0u);
  EXPECT_EQ(a.log, b.log);
  EXPECT_TRUE(a.rank0.unresponsive_ranks.empty());
  EXPECT_LT(a.seconds, 120.0);
  // The state is still a sane voltage profile on every bus.
  for (const double vm : a.rank0.state.vm) {
    EXPECT_GT(vm, 0.5);
    EXPECT_LT(vm, 1.5);
  }
}

TEST_F(ChaosDseTest, MidRunDisconnectIsRetriedTransparently) {
  // Two injected connection errors out of rank 0; the client's bounded
  // retry re-dials and the cycle finishes as if nothing happened.
  fault::FaultPlan plan;
  plan.seed = 31;
  plan.rules.push_back({.site = "wire.write",
                        .action = fault::ActionKind::kError,
                        .source = 0,
                        .max_injections = 2});
  const DseOptions opts = chaos_options(std::chrono::milliseconds{10'000});

  const ChaosRun run = run_medici(plan, opts, /*retry_attempts=*/4);
  write_health_report("mid_run_disconnect", run);

  EXPECT_EQ(run.injected, 2u);
  EXPECT_EQ(run.retries, 2u);  // exactly one retry per injected error
  EXPECT_TRUE(run.rank0.degraded.empty());
  EXPECT_TRUE(run.rank0.unresponsive_ranks.empty());
  EXPECT_TRUE(run.rank0.all_converged);
}

TEST_F(ChaosDseTest, TruncatedFramePoisonsOnlyOneConnection) {
  // A truncated frame kills the TCP stream mid-message. The reader rejects
  // the partial frame, the sender sees the failure and retries on a fresh
  // connection; nothing is lost and nothing degrades.
  fault::FaultPlan plan;
  plan.seed = 13;
  plan.rules.push_back({.site = "wire.write",
                        .action = fault::ActionKind::kTruncate,
                        .tag_min = kPseudoTagLo,
                        .tag_max = kPseudoTagHi,
                        .max_injections = 1});
  const DseOptions opts = chaos_options(std::chrono::milliseconds{10'000});

  const ChaosRun run = run_medici(plan, opts, /*retry_attempts=*/4);
  EXPECT_EQ(run.injected, 1u);
  EXPECT_GE(run.retries, 1u);
  EXPECT_TRUE(run.rank0.degraded.empty());
  EXPECT_TRUE(run.rank0.all_converged);
}

/// Seed-looping soak on a small synthetic ring — sized for the TSan preset,
/// where the full IEEE-118 matrix would be too slow to loop.
TEST(ChaosSoakTest, SeedLoopCompletesBoundedOnARing) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "built with GRIDSE_FAULT=OFF";
  }
  io::SyntheticSpec spec;
  spec.subsystem_sizes = {6, 6, 6, 6};
  spec.decomposition_edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  spec.seed = 9;
  const io::GeneratedCase generated = io::generate_synthetic(spec);
  decomp::Decomposition d =
      decomp::decompose(generated.kase.network, generated.subsystem_of_bus);
  decomp::analyze_sensitivity(generated.kase.network, d, {});
  const grid::PowerFlowResult pf =
      grid::solve_power_flow(generated.kase.network);
  grid::MeasurementPlan mplan;
  for (const decomp::Subsystem& s : d.subsystems) {
    mplan.pmu_buses.push_back(s.buses.front());
  }
  grid::MeasurementGenerator gen(generated.kase.network, mplan);
  Rng rng(4);
  const grid::MeasurementSet meas = gen.generate(pf.state, rng);
  const std::vector<graph::PartId> assignment{0, 1, 0, 1};
  constexpr int kRingM = 4;
  constexpr int kRingTagHi = 16 + kRingM * kRingM + kRingM;

  DseOptions opts;
  opts.exchange_deadline = std::chrono::milliseconds{1500};
  opts.degraded_step2 = true;
  DseDriver driver(generated.kase.network, d, opts);

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    fault::FaultPlan plan;
    plan.seed = seed;
    plan.rules.push_back({.site = "tcp.send",
                          .action = fault::ActionKind::kDrop,
                          .probability = 0.25,
                          .tag_min = 16,
                          .tag_max = kRingTagHi});
    fault::install(plan);
    runtime::ResilienceConfig res;
    res.barrier_timeout = std::chrono::milliseconds{30'000};
    runtime::TcpWorld world(2, res);
    analysis::Mutex mutex{"chaos_dse_test::mutex"};
    std::vector<DseResult> results(2);
    world.run([&](runtime::Communicator& c) {
      DseResult r = driver.run(c, meas, assignment);
      analysis::LockGuard lock(mutex);
      results[static_cast<std::size_t>(c.rank())] = std::move(r);
    });
    // Both ranks agree on the cluster-wide degradation report.
    EXPECT_EQ(results[0].degraded.size(), results[1].degraded.size())
        << "seed " << seed;
    fault::clear();
  }
}

}  // namespace
}  // namespace gridse::core
