#include "estimation/solver_cache.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace gridse::estimation {
namespace {

sparse::Csr random_spd(sparse::Index n, Rng& rng, double density = 0.3) {
  std::vector<sparse::Triplet<double>> t;
  for (sparse::Index i = 0; i < n; ++i) {
    for (sparse::Index j = 0; j <= i; ++j) {
      if (i == j || rng.bernoulli(density)) {
        const double v = (i == j) ? rng.uniform(2.0, 4.0) + n * 0.2
                                  : rng.uniform(-0.5, 0.5);
        t.push_back({i, j, v});
        if (i != j) t.push_back({j, i, v});
      }
    }
  }
  return sparse::Csr::from_triplets(n, n, std::move(t));
}

TEST(SolverCache, SecondLookupIsAHitReturningTheSamePlan) {
  Rng rng(51);
  const sparse::Csr a = random_spd(20, rng);
  SolverCache cache;
  const auto p1 = cache.plan_for(a);
  const auto p2 = cache.plan_for(a);
  EXPECT_EQ(p1.get(), p2.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.plan_misses, 1u);
  EXPECT_EQ(stats.plan_hits, 1u);
}

TEST(SolverCache, OrderedAndUnorderedPlansAreDistinctEntries) {
  Rng rng(52);
  const sparse::Csr a = random_spd(15, rng);
  SolverCache cache;
  const auto ordered = cache.plan_for(a, /*ordered=*/true);
  const auto unordered = cache.plan_for(a, /*ordered=*/false);
  EXPECT_NE(ordered.get(), unordered.get());
  EXPECT_TRUE(ordered->ordered());
  EXPECT_FALSE(unordered->ordered());
  // Both survive side by side.
  EXPECT_EQ(cache.plan_for(a, true).get(), ordered.get());
  EXPECT_EQ(cache.plan_for(a, false).get(), unordered.get());
}

TEST(SolverCache, InvalidateDropsEverything) {
  Rng rng(53);
  const sparse::Csr a = random_spd(12, rng);
  SolverCache cache;
  const auto before = cache.plan_for(a);
  const auto asm_before = cache.assembler_for(a);
  cache.invalidate();
  const auto after = cache.plan_for(a);
  const auto asm_after = cache.assembler_for(a);
  EXPECT_NE(before.get(), after.get());
  EXPECT_NE(asm_before.get(), asm_after.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.plan_misses, 2u);
  EXPECT_EQ(stats.plan_hits, 0u);
}

TEST(SolverCache, DifferentPatternsCoexist) {
  Rng rng(54);
  const sparse::Csr a = random_spd(10, rng);
  const sparse::Csr b = random_spd(11, rng);
  SolverCache cache;
  const auto pa = cache.plan_for(a);
  const auto pb = cache.plan_for(b);
  EXPECT_NE(pa.get(), pb.get());
  EXPECT_EQ(cache.plan_for(a).get(), pa.get());
  EXPECT_EQ(cache.plan_for(b).get(), pb.get());
}

TEST(SolverCache, FifoEvictionBoundsTheEntryCount) {
  // Nine distinct patterns overflow the 8-entry FIFO: the first one must be
  // re-analyzed on its next lookup.
  Rng rng(55);
  std::vector<sparse::Csr> mats;
  for (int i = 0; i < 9; ++i) {
    mats.push_back(random_spd(static_cast<sparse::Index>(5 + i), rng));
  }
  SolverCache cache;
  const auto first = cache.plan_for(mats[0]);
  for (std::size_t i = 1; i < mats.size(); ++i) {
    (void)cache.plan_for(mats[i]);
  }
  const auto again = cache.plan_for(mats[0]);
  EXPECT_NE(first.get(), again.get());
  EXPECT_EQ(cache.stats().plan_misses, 10u);
}

TEST(SolverCache, AssemblerProducesTheNormalMatrix) {
  // A rectangular "Jacobian": the cached assembler must reproduce
  // normal_matrix + add_diagonal exactly.
  Rng rng(56);
  std::vector<sparse::Triplet<double>> t;
  const sparse::Index rows = 12;
  const sparse::Index cols = 6;
  for (sparse::Index r = 0; r < rows; ++r) {
    for (sparse::Index c = 0; c < cols; ++c) {
      if (rng.bernoulli(0.4)) t.push_back({r, c, rng.uniform(-1, 1)});
    }
  }
  // Make every column touched so the plain normal matrix has a full diagonal.
  for (sparse::Index c = 0; c < cols; ++c) t.push_back({c, c, 1.5});
  const sparse::Csr h =
      sparse::Csr::from_triplets(rows, cols, std::move(t));
  std::vector<double> w(static_cast<std::size_t>(rows));
  for (auto& v : w) v = rng.uniform(0.5, 2.0);

  SolverCache cache;
  const auto assembler = cache.assembler_for(h);
  ASSERT_TRUE(assembler->matches(h));
  const sparse::Csr got = assembler->assemble(h, w, 0.125);
  const sparse::Csr want =
      sparse::add_diagonal(sparse::normal_matrix(h, w), 0.125);
  for (sparse::Index i = 0; i < cols; ++i) {
    for (sparse::Index j = 0; j < cols; ++j) {
      EXPECT_NEAR(got.value_at(i, j), want.value_at(i, j), 1e-12)
          << i << "," << j;
    }
  }
  EXPECT_EQ(cache.assembler_for(h).get(), assembler.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.assembler_misses, 1u);
  EXPECT_EQ(stats.assembler_hits, 1u);
}

}  // namespace
}  // namespace gridse::estimation
