#include "estimation/observability.hpp"

#include <gtest/gtest.h>

#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/case14.hpp"

namespace gridse::estimation {
namespace {

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kase_ = io::ieee14();
    pf_ = grid::solve_power_flow(kase_.network);
    index_ = grid::StateIndex(kase_.network.num_buses(),
                              kase_.network.slack_bus());
    model_ = std::make_unique<grid::MeasurementModel>(kase_.network, index_);
  }
  io::Case kase_;
  grid::PowerFlowResult pf_;
  grid::StateIndex index_;
  std::unique_ptr<grid::MeasurementModel> model_;
};

TEST_F(ObservabilityTest, FullPlanIsObservable) {
  const grid::MeasurementGenerator gen(kase_.network, {});
  const auto set = gen.generate_noiseless(pf_.state);
  const ObservabilityReport rep = check_observability(*model_, set);
  EXPECT_TRUE(rep.observable);
  EXPECT_GT(rep.redundancy, 3.0);
  EXPECT_GT(rep.min_pivot, 0.0);
}

TEST_F(ObservabilityTest, TooFewMeasurementsUnobservable) {
  grid::MeasurementSet set;
  for (int i = 0; i < 5; ++i) {
    set.items.push_back({grid::MeasType::kVMag, static_cast<grid::BusIndex>(i),
                         -1, true, 1.0, 0.01});
  }
  const ObservabilityReport rep = check_observability(*model_, set);
  EXPECT_FALSE(rep.observable);
}

TEST_F(ObservabilityTest, VoltagesOnlyCannotObserveAngles) {
  // One |V| at every bus plus padding duplicates: m >= n but the angle
  // subspace is untouched, so the gain matrix is singular.
  grid::MeasurementSet set;
  for (int rep = 0; rep < 3; ++rep) {
    for (grid::BusIndex b = 0; b < kase_.network.num_buses(); ++b) {
      set.items.push_back({grid::MeasType::kVMag, b, -1, true, 1.0, 0.01});
    }
  }
  const ObservabilityReport report = check_observability(*model_, set);
  EXPECT_FALSE(report.observable);
}

TEST_F(ObservabilityTest, FlowsAndVoltagesObserveEverything) {
  grid::MeasurementPlan plan;
  plan.bus_p_injections = false;
  plan.bus_q_injections = false;
  const grid::MeasurementGenerator gen(kase_.network, plan);
  const auto set = gen.generate_noiseless(pf_.state);
  const ObservabilityReport rep = check_observability(*model_, set);
  EXPECT_TRUE(rep.observable);
}

TEST_F(ObservabilityTest, ReportCountsAreConsistent) {
  const grid::MeasurementGenerator gen(kase_.network, {});
  const auto set = gen.generate_noiseless(pf_.state);
  const ObservabilityReport rep = check_observability(*model_, set);
  EXPECT_EQ(rep.num_measurements, static_cast<std::int32_t>(set.size()));
  EXPECT_EQ(rep.num_states, index_.size());
  EXPECT_NEAR(rep.redundancy,
              static_cast<double>(set.size()) / index_.size(), 1e-12);
}

}  // namespace
}  // namespace gridse::estimation
