#include "estimation/wls.hpp"

#include <gtest/gtest.h>

#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/case14.hpp"
#include "io/synthetic.hpp"
#include "util/rng.hpp"

namespace gridse::estimation {
namespace {

struct WlsFixtureData {
  io::Case kase;
  grid::PowerFlowResult pf;
  grid::MeasurementSet noisy;
  grid::MeasurementSet noiseless;
};

WlsFixtureData make_case14_data(std::uint64_t seed = 11) {
  WlsFixtureData d;
  d.kase = io::ieee14();
  d.pf = grid::solve_power_flow(d.kase.network);
  grid::MeasurementGenerator gen(d.kase.network, {});
  Rng rng(seed);
  d.noisy = gen.generate(d.pf.state, rng);
  d.noiseless = gen.generate_noiseless(d.pf.state);
  return d;
}

TEST(Wls, NoiselessMeasurementsRecoverTruthExactly) {
  const auto d = make_case14_data();
  WlsEstimator est(d.kase.network);
  const WlsResult r = est.estimate(d.noiseless);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(grid::max_vm_error(r.state, d.pf.state), 1e-7);
  EXPECT_LT(grid::max_angle_error(r.state, d.pf.state), 1e-7);
  EXPECT_LT(r.objective, 1e-8);
}

class WlsSolverSweep
    : public ::testing::TestWithParam<
          std::tuple<LinearSolver, sparse::PreconditionerKind>> {};

TEST_P(WlsSolverSweep, AllSolversAgree) {
  const auto [solver, precond] = GetParam();
  const auto d = make_case14_data();
  WlsOptions opts;
  opts.solver = solver;
  opts.preconditioner = precond;
  WlsEstimator est(d.kase.network, opts);
  const WlsResult r = est.estimate(d.noisy);
  ASSERT_TRUE(r.converged);
  // Every solver/preconditioner combination solves the same normal
  // equations; the estimates must agree to solver tolerance.
  WlsOptions ref_opts;
  ref_opts.solver = LinearSolver::kDense;
  WlsEstimator ref(d.kase.network, ref_opts);
  const WlsResult rr = ref.estimate(d.noisy);
  EXPECT_LT(grid::max_vm_error(r.state, rr.state), 1e-7);
  EXPECT_LT(grid::max_angle_error(r.state, rr.state), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Solvers, WlsSolverSweep,
    ::testing::Values(
        std::make_tuple(LinearSolver::kPcg, sparse::PreconditionerKind::kNone),
        std::make_tuple(LinearSolver::kPcg, sparse::PreconditionerKind::kJacobi),
        std::make_tuple(LinearSolver::kPcg, sparse::PreconditionerKind::kSsor),
        std::make_tuple(LinearSolver::kPcg, sparse::PreconditionerKind::kIc0),
        std::make_tuple(LinearSolver::kLdlt, sparse::PreconditionerKind::kNone),
        std::make_tuple(LinearSolver::kDense,
                        sparse::PreconditionerKind::kNone)),
    [](const auto& param_info) {
      const LinearSolver solver = std::get<0>(param_info.param);
      const sparse::PreconditionerKind precond = std::get<1>(param_info.param);
      std::string name = solver == LinearSolver::kPcg
                             ? "pcg"
                             : (solver == LinearSolver::kLdlt ? "ldlt" : "dense");
      switch (precond) {
        case sparse::PreconditionerKind::kNone:
          name += "_none";
          break;
        case sparse::PreconditionerKind::kJacobi:
          name += "_jacobi";
          break;
        case sparse::PreconditionerKind::kSsor:
          name += "_ssor";
          break;
        case sparse::PreconditionerKind::kIc0:
          name += "_ic0";
          break;
      }
      return name;
    });

TEST(Wls, EstimateErrorScalesWithNoise) {
  const auto d = make_case14_data();
  grid::MeasurementPlan loud;
  loud.noise_level = 5.0;
  grid::MeasurementGenerator gen(d.kase.network, loud);
  Rng rng(13);
  const grid::MeasurementSet noisy5 = gen.generate(d.pf.state, rng);

  WlsEstimator est(d.kase.network);
  const WlsResult r1 = est.estimate(d.noisy);
  const WlsResult r5 = est.estimate(noisy5);
  ASSERT_TRUE(r1.converged && r5.converged);
  EXPECT_GT(grid::max_vm_error(r5.state, d.pf.state),
            grid::max_vm_error(r1.state, d.pf.state));
}

TEST(Wls, UnderdeterminedSystemRejected) {
  const auto d = make_case14_data();
  grid::MeasurementSet tiny;
  tiny.items.assign(d.noisy.items.begin(), d.noisy.items.begin() + 5);
  WlsEstimator est(d.kase.network);
  EXPECT_THROW(est.estimate(tiny), InvalidInput);
}

TEST(Wls, MalformedMeasurementRejected) {
  const auto d = make_case14_data();
  grid::MeasurementSet bad = d.noisy;
  bad.items[0].bus = 99;
  WlsEstimator est(d.kase.network);
  EXPECT_THROW(est.estimate(bad), InvalidInput);
}

TEST(Wls, WarmStartReducesIterations) {
  const auto d = make_case14_data();
  WlsEstimator est(d.kase.network);
  const WlsResult cold = est.estimate(d.noisy);
  const WlsResult warm = est.estimate(d.noisy, cold.state);
  EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(Wls, AlternateReferenceBusGivesSameRelativeState) {
  const auto d = make_case14_data();
  WlsEstimator ref0(d.kase.network, 0, {});
  WlsEstimator ref5(d.kase.network, 5, {});
  // Pin reference 5's angle to the truth so both solutions share the global
  // frame.
  grid::GridState init5(d.kase.network.num_buses());
  init5.theta[5] = d.pf.state.theta[5];
  const WlsResult a = ref0.estimate(d.noiseless);
  const WlsResult b = ref5.estimate(d.noiseless, init5);
  ASSERT_TRUE(a.converged && b.converged);
  EXPECT_LT(grid::max_angle_error(a.state, b.state), 1e-6);
  EXPECT_LT(grid::max_vm_error(a.state, b.state), 1e-7);
}

TEST(Wls, ResidualsAreSmallAtNoiselessSolution) {
  const auto d = make_case14_data();
  WlsEstimator est(d.kase.network);
  const WlsResult r = est.estimate(d.noiseless);
  for (const double res : r.residuals) {
    EXPECT_LT(std::abs(res), 1e-6);
  }
}

TEST(Wls, Ieee118ScaleSolves) {
  const auto g = io::ieee118_dse();
  const grid::PowerFlowResult pf = grid::solve_power_flow(g.kase.network);
  grid::MeasurementGenerator gen(g.kase.network, {});
  Rng rng(3);
  const grid::MeasurementSet meas = gen.generate(pf.state, rng);
  WlsEstimator est(g.kase.network);
  const WlsResult r = est.estimate(meas);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(grid::max_vm_error(r.state, pf.state), 0.01);
}

TEST(Wls, RegularizationKeepsNearSingularSolvable) {
  const auto d = make_case14_data();
  WlsOptions opts;
  opts.regularization = 1e-6;
  WlsEstimator est(d.kase.network, opts);
  const WlsResult r = est.estimate(d.noisy);
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace gridse::estimation
