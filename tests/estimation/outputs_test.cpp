#include "estimation/outputs.hpp"

#include <gtest/gtest.h>

#include "estimation/wls.hpp"
#include "grid/dc_powerflow.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/case14.hpp"
#include "util/rng.hpp"

namespace gridse::estimation {
namespace {

class OutputsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kase_ = io::ieee14();
    pf_ = grid::solve_power_flow(kase_.network);
    report_ = build_solution_report(kase_.network, pf_.state);
  }
  io::Case kase_;
  grid::PowerFlowResult pf_;
  SolutionReport report_;
};

TEST_F(OutputsTest, LossesAreNonNegativePerBranch) {
  ASSERT_EQ(report_.flows.size(), kase_.network.num_branches());
  for (const BranchFlowEstimate& f : report_.flows) {
    EXPECT_GE(f.p_loss(), -1e-10) << "branch " << f.branch;
  }
  EXPECT_GT(report_.total_loss, 0.0);
}

TEST_F(OutputsTest, TotalLossEqualsGenerationMinusLoad) {
  // Sum of injections over all buses = total losses (power balance).
  double injection_sum = 0.0;
  for (const double p : report_.p_injection) {
    injection_sum += p;
  }
  EXPECT_NEAR(injection_sum, report_.total_loss, 1e-8);
}

TEST_F(OutputsTest, FlowsSumToInjections) {
  for (grid::BusIndex b = 0; b < kase_.network.num_buses(); ++b) {
    double from_flows = 0.0;
    for (const std::size_t bi : kase_.network.branches_at(b)) {
      const BranchFlowEstimate& f = report_.flows[bi];
      from_flows += (kase_.network.branch(bi).from == b) ? f.p_from : f.p_to;
    }
    const grid::Bus& bus = kase_.network.bus(b);
    const double shunt = bus.gs * pf_.state.vm[static_cast<std::size_t>(b)] *
                         pf_.state.vm[static_cast<std::size_t>(b)];
    EXPECT_NEAR(from_flows + shunt,
                report_.p_injection[static_cast<std::size_t>(b)], 1e-9)
        << "bus " << b;
  }
}

TEST_F(OutputsTest, LoadingsUseRatings) {
  grid::assign_ratings_from_base_case(kase_.network, 1.5, 0.2);
  const SolutionReport rated =
      build_solution_report(kase_.network, pf_.state);
  const auto loadings = rated.loadings(kase_.network);
  ASSERT_EQ(loadings.size(), kase_.network.num_branches());
  bool any_positive = false;
  for (const double l : loadings) {
    EXPECT_GE(l, 0.0);
    EXPECT_LE(l, 1.1);  // base case within its own margin-1.5 ratings
    any_positive |= l > 0.0;
  }
  EXPECT_TRUE(any_positive);
}

TEST_F(OutputsTest, EstimatedStateReportTracksTrueReport) {
  grid::MeasurementGenerator gen(kase_.network, {});
  Rng rng(31);
  const grid::MeasurementSet meas = gen.generate(pf_.state, rng);
  const WlsEstimator est(kase_.network);
  const WlsResult wls = est.estimate(meas);
  const SolutionReport estimated =
      build_solution_report(kase_.network, wls.state);
  for (std::size_t bi = 0; bi < report_.flows.size(); ++bi) {
    EXPECT_NEAR(estimated.flows[bi].p_from, report_.flows[bi].p_from, 0.05);
  }
  EXPECT_NEAR(estimated.total_loss, report_.total_loss, 0.02);
}

TEST_F(OutputsTest, ConfidenceIntervalsCoverTheTruth) {
  grid::MeasurementGenerator gen(kase_.network, {});
  Rng rng(41);
  const grid::MeasurementSet meas = gen.generate(pf_.state, rng);
  const WlsEstimator est(kase_.network);
  const WlsResult wls = est.estimate(meas);
  const StateConfidence conf =
      estimate_confidence(est.model(), meas, wls.state);

  const grid::BusIndex ref = kase_.network.slack_bus();
  EXPECT_DOUBLE_EQ(conf.theta_stddev[static_cast<std::size_t>(ref)], 0.0);
  int outside_4sigma = 0;
  for (grid::BusIndex b = 0; b < kase_.network.num_buses(); ++b) {
    const auto bi = static_cast<std::size_t>(b);
    EXPECT_GT(conf.vm_stddev[bi], 0.0);
    EXPECT_LT(conf.vm_stddev[bi], 0.01);  // dense redundancy: tight estimates
    if (std::abs(wls.state.vm[bi] - pf_.state.vm[bi]) >
        4.0 * conf.vm_stddev[bi]) {
      ++outside_4sigma;
    }
    if (b != ref && std::abs(wls.state.theta[bi] - pf_.state.theta[bi]) >
                        4.0 * conf.theta_stddev[bi] + 1e-6) {
      ++outside_4sigma;
    }
  }
  // 4-sigma misses should be essentially absent over ~27 states.
  EXPECT_LE(outside_4sigma, 1);
}

TEST_F(OutputsTest, ConfidenceShrinksWithMoreAccurateMeters) {
  grid::MeasurementPlan precise;
  precise.noise_level = 0.25;
  grid::MeasurementGenerator gen_precise(kase_.network, precise);
  grid::MeasurementGenerator gen_default(kase_.network, {});
  Rng rng(43);
  const grid::MeasurementSet meas_p = gen_precise.generate(pf_.state, rng);
  const grid::MeasurementSet meas_d = gen_default.generate(pf_.state, rng);
  const WlsEstimator est(kase_.network);
  const WlsResult rp = est.estimate(meas_p);
  const WlsResult rd = est.estimate(meas_d);
  const StateConfidence cp = estimate_confidence(est.model(), meas_p, rp.state);
  const StateConfidence cd = estimate_confidence(est.model(), meas_d, rd.state);
  for (std::size_t b = 0; b < cp.vm_stddev.size(); ++b) {
    EXPECT_LT(cp.vm_stddev[b], cd.vm_stddev[b]);
  }
}

TEST(Outputs, SizeMismatchRejected) {
  const io::Case c = io::ieee14();
  EXPECT_THROW(build_solution_report(c.network, grid::GridState(5)),
               InternalError);
}

}  // namespace
}  // namespace gridse::estimation
