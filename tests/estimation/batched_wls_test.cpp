#include "estimation/batched_wls.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "estimation/solver_cache.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/case14.hpp"
#include "io/synthetic.hpp"
#include "util/rng.hpp"

namespace gridse::estimation {
namespace {

struct LaneFixture {
  grid::Network network;
  grid::MeasurementSet set;
};

LaneFixture make_lane(grid::Network network, std::uint64_t seed) {
  LaneFixture fx{std::move(network), {}};
  const grid::PowerFlowResult pf = grid::solve_power_flow(fx.network);
  grid::MeasurementGenerator gen(fx.network, {});
  Rng rng(seed);
  fx.set = gen.generate(pf.state, rng);
  return fx;
}

WlsOptions ldlt_options() {
  WlsOptions opts;
  opts.solver = LinearSolver::kLdlt;
  return opts;
}

void expect_same_result(const WlsResult& got, const WlsResult& want) {
  ASSERT_EQ(got.converged, want.converged);
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_NEAR(got.objective, want.objective, 1e-9 * (1.0 + want.objective));
  EXPECT_LT(grid::max_vm_error(got.state, want.state), 1e-9);
  EXPECT_LT(grid::max_angle_error(got.state, want.state), 1e-9);
  ASSERT_EQ(got.residuals.size(), want.residuals.size());
  for (std::size_t i = 0; i < got.residuals.size(); ++i) {
    EXPECT_NEAR(got.residuals[i], want.residuals[i], 1e-9);
  }
}

TEST(BatchedWls, MatchesPerLaneEstimatorsOnHeterogeneousNetworks) {
  // Three lanes of very different sizes solved in one lockstep sweep must be
  // indistinguishable from three independent kLdlt estimators: the batched
  // path is an execution strategy, not a different algorithm.
  const std::vector<LaneFixture> fixtures = {
      make_lane(io::ieee14().network, 61),
      make_lane(io::ieee118_dse().kase.network, 62),
      make_lane(io::wecc37().kase.network, 63)};

  const WlsOptions opts = ldlt_options();
  std::vector<BatchedLaneProblem> lanes;
  for (const LaneFixture& fx : fixtures) {
    BatchedLaneProblem lane;
    lane.network = &fx.network;
    lane.reference_bus = fx.network.slack_bus();
    lane.set = &fx.set;
    lane.initial = grid::GridState(fx.network.num_buses());
    lanes.push_back(lane);
  }
  const std::vector<WlsResult> results = batched_estimate(lanes, opts);
  ASSERT_EQ(results.size(), fixtures.size());
  for (std::size_t i = 0; i < fixtures.size(); ++i) {
    const WlsEstimator ref(fixtures[i].network, opts);
    expect_same_result(results[i], ref.estimate(fixtures[i].set));
  }
}

TEST(BatchedWls, WarmStartWithReusedPlansMatchesFromScratch) {
  // Cycle 2 of a DSE run: warm initial state, every symbolic artifact
  // already cached. The answer must be identical to a cold run.
  const LaneFixture fx = make_lane(io::ieee118_dse().kase.network, 64);
  const WlsOptions opts = ldlt_options();

  const auto cache = std::make_shared<SolverCache>();
  BatchedLaneProblem lane;
  lane.network = &fx.network;
  lane.reference_bus = fx.network.slack_bus();
  lane.set = &fx.set;
  lane.initial = grid::GridState(fx.network.num_buses());
  const std::vector<std::shared_ptr<SolverCache>> caches = {cache};

  const auto cold = batched_estimate({&lane, 1}, opts, caches);
  ASSERT_TRUE(cold[0].converged);
  EXPECT_GT(cache->stats().plan_misses, 0u);

  BatchedLaneProblem warm = lane;
  warm.initial = cold[0].state;
  const auto stats_before = cache->stats();
  const auto warm_results = batched_estimate({&warm, 1}, opts, caches);
  // The warm sweep analyzed nothing new...
  EXPECT_EQ(cache->stats().plan_misses, stats_before.plan_misses);
  EXPECT_GT(cache->stats().plan_hits, stats_before.plan_hits);

  // ...and matches the plain estimator warm-started the same way.
  const WlsEstimator ref(fx.network, opts);
  expect_same_result(warm_results[0], ref.estimate(fx.set, cold[0].state));
}

TEST(BatchedWls, EmptyLaneListIsANoOp) {
  const std::vector<BatchedLaneProblem> lanes;
  EXPECT_TRUE(batched_estimate(lanes, ldlt_options()).empty());
}

TEST(BatchedWls, UnobservableLaneThrowsBeforeAnyLaneSolves) {
  const LaneFixture ok = make_lane(io::ieee14().network, 65);
  LaneFixture starved = make_lane(io::ieee14().network, 66);
  starved.set.items.resize(1);

  std::vector<BatchedLaneProblem> lanes(2);
  lanes[0].network = &ok.network;
  lanes[0].reference_bus = ok.network.slack_bus();
  lanes[0].set = &ok.set;
  lanes[0].initial = grid::GridState(ok.network.num_buses());
  lanes[1].network = &starved.network;
  lanes[1].reference_bus = starved.network.slack_bus();
  lanes[1].set = &starved.set;
  lanes[1].initial = grid::GridState(starved.network.num_buses());
  EXPECT_THROW(batched_estimate(lanes, ldlt_options()), InvalidInput);
}

TEST(BatchedWls, CacheCountMustMatchLaneCountWhenProvided) {
  const LaneFixture fx = make_lane(io::ieee14().network, 67);
  BatchedLaneProblem lane;
  lane.network = &fx.network;
  lane.reference_bus = fx.network.slack_bus();
  lane.set = &fx.set;
  lane.initial = grid::GridState(fx.network.num_buses());
  const std::vector<std::shared_ptr<SolverCache>> caches = {
      std::make_shared<SolverCache>(), std::make_shared<SolverCache>()};
  EXPECT_THROW(batched_estimate({&lane, 1}, ldlt_options(), caches),
               InternalError);
}

}  // namespace
}  // namespace gridse::estimation
