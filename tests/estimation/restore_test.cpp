#include "estimation/restore.hpp"

#include <gtest/gtest.h>

#include "estimation/wls.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/case14.hpp"
#include "util/error.hpp"

namespace gridse::estimation {
namespace {

class RestoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kase_ = io::ieee14();
    pf_ = grid::solve_power_flow(kase_.network);
    index_ = grid::StateIndex(kase_.network.num_buses(),
                              kase_.network.slack_bus());
    model_ = std::make_unique<grid::MeasurementModel>(kase_.network, index_);
  }
  io::Case kase_;
  grid::PowerFlowResult pf_;
  grid::StateIndex index_;
  std::unique_ptr<grid::MeasurementModel> model_;
};

TEST_F(RestoreTest, AlreadyObservableSetUntouched) {
  const grid::MeasurementGenerator gen(kase_.network, {});
  const grid::MeasurementSet set = gen.generate_noiseless(pf_.state);
  const RestorationResult r = restore_observability(*model_, set);
  EXPECT_TRUE(r.observable);
  EXPECT_TRUE(r.added.empty());
  EXPECT_EQ(r.augmented.size(), set.size());
}

TEST_F(RestoreTest, VoltageOnlySetGetsAnglePseudos) {
  // |V| everywhere observes magnitudes but no angles: restoration must add
  // angle pseudo measurements until the gain matrix is regular.
  grid::MeasurementSet set;
  for (int rep = 0; rep < 3; ++rep) {
    for (grid::BusIndex b = 0; b < kase_.network.num_buses(); ++b) {
      set.items.push_back({grid::MeasType::kVMag, b, -1, true, 1.0, 0.01});
    }
  }
  const RestorationResult r = restore_observability(*model_, set);
  EXPECT_TRUE(r.observable);
  EXPECT_FALSE(r.added.empty());
  for (const grid::Measurement& m : r.added) {
    EXPECT_EQ(m.type, grid::MeasType::kVAngle);
  }
  // The augmented set must actually estimate.
  const WlsEstimator est(kase_.network);
  const WlsResult result = est.estimate(r.augmented);
  EXPECT_TRUE(result.converged);
}

TEST_F(RestoreTest, PartialFlowCoverageRestored) {
  // Flows on the first five branches plus all magnitudes: a slice of the
  // network is angle-unobservable; restoration fixes it and WLS converges.
  const grid::MeasurementGenerator gen(kase_.network, {});
  const grid::MeasurementSet full = gen.generate_noiseless(pf_.state);
  grid::MeasurementSet partial;
  for (const grid::Measurement& m : full.items) {
    const bool keep_flow = (m.type == grid::MeasType::kPFlow ||
                            m.type == grid::MeasType::kQFlow) &&
                           m.branch < 5;
    const bool keep_vmag = m.type == grid::MeasType::kVMag;
    if (keep_flow || keep_vmag) partial.items.push_back(m);
  }
  // pad with duplicates of the magnitudes so m >= n (counting alone is not
  // the problem here)
  for (grid::BusIndex b = 0; b < kase_.network.num_buses(); ++b) {
    partial.items.push_back({grid::MeasType::kVMag, b, -1, true,
                             pf_.state.vm[static_cast<std::size_t>(b)], 0.01});
  }
  const ObservabilityReport before = check_observability(*model_, partial);
  ASSERT_FALSE(before.observable);
  const RestorationResult r = restore_observability(*model_, partial);
  EXPECT_TRUE(r.observable);
  const WlsEstimator est(kase_.network);
  EXPECT_TRUE(est.estimate(r.augmented).converged);
}

TEST_F(RestoreTest, PseudoSigmaPropagates) {
  grid::MeasurementSet set;
  for (int rep = 0; rep < 3; ++rep) {
    for (grid::BusIndex b = 0; b < kase_.network.num_buses(); ++b) {
      set.items.push_back({grid::MeasType::kVMag, b, -1, true, 1.0, 0.01});
    }
  }
  const RestorationResult r = restore_observability(*model_, set, 0.42);
  for (const grid::Measurement& m : r.added) {
    EXPECT_DOUBLE_EQ(m.sigma, 0.42);
  }
}

TEST_F(RestoreTest, RestoredSetWarmResolveTakesFewerIterations) {
  // Warm-start path: re-solving the restored (augmented) set from a prior
  // solution must converge in strictly fewer Gauss-Newton iterations than
  // the flat start — the property the cross-cycle checkpoint restore in the
  // DSE driver relies on.
  const grid::MeasurementGenerator gen(kase_.network, {});
  const grid::MeasurementSet set = gen.generate_noiseless(pf_.state);
  const RestorationResult r = restore_observability(*model_, set);
  ASSERT_TRUE(r.observable);
  const WlsEstimator est(kase_.network);
  const WlsResult cold = est.estimate(r.augmented);
  ASSERT_TRUE(cold.converged);
  ASSERT_GT(cold.iterations, 1);
  const WlsResult warm = est.estimate(r.augmented, cold.state);
  EXPECT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST_F(RestoreTest, WarmResolveIsDeterministic) {
  // Identical initial iterate => identical iterate count and identical
  // state, bit for bit: the restore path may ship the initial state over
  // the wire and must not introduce run-to-run drift.
  grid::MeasurementSet set;
  for (int rep = 0; rep < 3; ++rep) {
    for (grid::BusIndex b = 0; b < kase_.network.num_buses(); ++b) {
      set.items.push_back({grid::MeasType::kVMag, b, -1, true,
                           pf_.state.vm[static_cast<std::size_t>(b)], 0.01});
    }
  }
  const RestorationResult r = restore_observability(*model_, set);
  ASSERT_TRUE(r.observable);
  const WlsEstimator est(kase_.network);
  const WlsResult seed = est.estimate(r.augmented);
  const WlsResult a = est.estimate(r.augmented, seed.state);
  const WlsResult b = est.estimate(r.augmented, seed.state);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.state.theta, b.state.theta);
  EXPECT_EQ(a.state.vm, b.state.vm);
}

TEST_F(RestoreTest, RejectsBadArguments) {
  const grid::MeasurementSet set;
  EXPECT_THROW(restore_observability(*model_, set, 0.0), InternalError);
  EXPECT_THROW(restore_observability(*model_, set, 0.1, 0), InternalError);
}

}  // namespace
}  // namespace gridse::estimation
