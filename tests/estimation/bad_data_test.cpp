#include "estimation/bad_data.hpp"

#include <gtest/gtest.h>

#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/case14.hpp"
#include "util/rng.hpp"

namespace gridse::estimation {
namespace {

class BadDataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kase_ = io::ieee14();
    pf_ = grid::solve_power_flow(kase_.network);
    ASSERT_TRUE(pf_.converged);
    grid::MeasurementGenerator gen(kase_.network, {});
    Rng rng(21);
    clean_ = gen.generate(pf_.state, rng);
  }
  io::Case kase_;
  grid::PowerFlowResult pf_;
  grid::MeasurementSet clean_;
};

TEST(ChiSquareQuantile, MatchesTabulatedValues) {
  // Standard table values: χ²₀.₉₅ for various dof.
  EXPECT_NEAR(chi_square_quantile(10, 0.95), 18.31, 0.15);
  EXPECT_NEAR(chi_square_quantile(30, 0.95), 43.77, 0.2);
  EXPECT_NEAR(chi_square_quantile(100, 0.95), 124.34, 0.4);
  EXPECT_NEAR(chi_square_quantile(100, 0.99), 135.81, 0.5);
}

TEST(ChiSquareQuantile, RejectsBadArguments) {
  EXPECT_THROW(chi_square_quantile(0, 0.95), InternalError);
  EXPECT_THROW(chi_square_quantile(10, 0.0), InternalError);
  EXPECT_THROW(chi_square_quantile(10, 1.0), InternalError);
}

TEST_F(BadDataTest, CleanDataPassesChiSquare) {
  WlsEstimator est(kase_.network);
  const WlsResult r = est.estimate(clean_);
  const ChiSquareTest test =
      chi_square_test(r, est.model().state_index().size());
  EXPECT_FALSE(test.suspect_bad_data);
  EXPECT_GT(test.degrees_of_freedom, 0);
}

TEST_F(BadDataTest, GrossErrorTripsChiSquare) {
  grid::MeasurementSet bad = clean_;
  bad.items[10].value += 1.0;  // enormous vs sigma ~ 0.01
  WlsEstimator est(kase_.network);
  const WlsResult r = est.estimate(bad);
  const ChiSquareTest test =
      chi_square_test(r, est.model().state_index().size());
  EXPECT_TRUE(test.suspect_bad_data);
}

TEST_F(BadDataTest, LnrIdentifiesTheCorruptedMeasurement) {
  for (const std::size_t victim : {3u, 40u, 90u}) {
    grid::MeasurementSet bad = clean_;
    bad.items[victim].value += 0.5;
    WlsEstimator est(kase_.network);
    const WlsResult r = est.estimate(bad);
    const BadDataHit hit = largest_normalized_residual(est, bad, r);
    EXPECT_EQ(hit.measurement_index, victim);
    EXPECT_GT(hit.normalized_residual, 3.0);
  }
}

TEST_F(BadDataTest, CleanDataHasSmallNormalizedResiduals) {
  WlsEstimator est(kase_.network);
  const WlsResult r = est.estimate(clean_);
  const BadDataHit hit = largest_normalized_residual(est, clean_, r);
  EXPECT_LT(hit.normalized_residual, 4.5);  // ~N(0,1) max over ~122 samples
}

TEST_F(BadDataTest, DetectAndRemoveScrubsSingleBadPoint) {
  grid::MeasurementSet bad = clean_;
  bad.items[25].value -= 0.6;
  WlsEstimator est(kase_.network);
  const BadDataScrub scrub = detect_and_remove(est, bad);
  ASSERT_EQ(scrub.removed.size(), 1u);
  EXPECT_EQ(scrub.removed[0], 25u);
  EXPECT_TRUE(scrub.result.converged);
  EXPECT_LT(grid::max_vm_error(scrub.result.state, pf_.state), 0.01);
}

TEST_F(BadDataTest, DetectAndRemoveScrubsMultipleBadPoints) {
  grid::MeasurementSet bad = clean_;
  bad.items[5].value += 0.5;
  bad.items[60].value -= 0.7;
  WlsEstimator est(kase_.network);
  const BadDataScrub scrub = detect_and_remove(est, bad, 3.0, 5);
  EXPECT_EQ(scrub.removed.size(), 2u);
  const bool found5 = std::find(scrub.removed.begin(), scrub.removed.end(),
                                5u) != scrub.removed.end();
  const bool found60 = std::find(scrub.removed.begin(), scrub.removed.end(),
                                 60u) != scrub.removed.end();
  EXPECT_TRUE(found5);
  EXPECT_TRUE(found60);
}

TEST_F(BadDataTest, DetectAndRemoveLeavesCleanDataAlone) {
  WlsEstimator est(kase_.network);
  const BadDataScrub scrub = detect_and_remove(est, clean_, 4.5);
  EXPECT_TRUE(scrub.removed.empty());
  EXPECT_EQ(scrub.cleaned.size(), clean_.size());
}

TEST_F(BadDataTest, RemovalCapIsRespected) {
  grid::MeasurementSet bad = clean_;
  for (const std::size_t i : {3u, 17u, 44u, 71u}) {
    bad.items[i].value += 0.8;
  }
  WlsEstimator est(kase_.network);
  const BadDataScrub scrub = detect_and_remove(est, bad, 3.0, /*max=*/2);
  EXPECT_LE(scrub.removed.size(), 2u);
}

}  // namespace
}  // namespace gridse::estimation
