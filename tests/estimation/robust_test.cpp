#include "estimation/robust.hpp"

#include <gtest/gtest.h>

#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/case14.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gridse::estimation {
namespace {

class RobustTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kase_ = io::ieee14();
    pf_ = grid::solve_power_flow(kase_.network);
    grid::MeasurementGenerator gen(kase_.network, {});
    Rng rng(101);
    clean_ = gen.generate(pf_.state, rng);
  }
  io::Case kase_;
  grid::PowerFlowResult pf_;
  grid::MeasurementSet clean_;
};

TEST_F(RobustTest, MatchesWlsOnCleanData) {
  const HuberEstimator huber(kase_.network);
  const WlsEstimator wls(kase_.network);
  const RobustResult hr = huber.estimate(clean_);
  const WlsResult wr = wls.estimate(clean_);
  ASSERT_TRUE(hr.wls.converged);
  EXPECT_LT(grid::max_vm_error(hr.wls.state, wr.state), 5e-4);
  // Nearly every weight stays 1 on clean Gaussian data.
  int downweighted = 0;
  for (const double w : hr.influence) {
    if (w < 0.999) ++downweighted;
  }
  EXPECT_LT(downweighted, static_cast<int>(clean_.size()) / 5);
}

TEST_F(RobustTest, BoundsInfluenceOfGrossError) {
  grid::MeasurementSet bad = clean_;
  bad.items[8].value += 1.0;

  const WlsEstimator wls(kase_.network);
  const WlsResult contaminated = wls.estimate(bad);
  const HuberEstimator huber(kase_.network);
  const RobustResult robust = huber.estimate(bad);

  ASSERT_TRUE(robust.wls.converged);
  // The Huber estimate must be materially closer to the truth than raw WLS
  // on contaminated data.
  EXPECT_LT(grid::max_vm_error(robust.wls.state, pf_.state),
            grid::max_vm_error(contaminated.state, pf_.state));
  // ...and the outlier's influence weight must collapse.
  EXPECT_LT(robust.influence[8], 0.1);
}

TEST_F(RobustTest, MultipleOutliersAllDownweighted) {
  grid::MeasurementSet bad = clean_;
  const std::size_t victims[] = {4, 33, 77};
  for (const std::size_t v : victims) {
    bad.items[v].value -= 0.8;
  }
  const HuberEstimator huber(kase_.network);
  const RobustResult robust = huber.estimate(bad);
  for (const std::size_t v : victims) {
    EXPECT_LT(robust.influence[v], 0.15) << "victim " << v;
  }
  EXPECT_LT(grid::max_vm_error(robust.wls.state, pf_.state), 0.01);
}

TEST_F(RobustTest, GammaControlsAggressiveness) {
  grid::MeasurementSet bad = clean_;
  bad.items[8].value += 0.3;
  RobustOptions soft;
  soft.gamma = 6.0;  // nearly WLS
  RobustOptions hard;
  hard.gamma = 1.0;
  const RobustResult rs = HuberEstimator(kase_.network, soft).estimate(bad);
  const RobustResult rh = HuberEstimator(kase_.network, hard).estimate(bad);
  EXPECT_GE(rs.influence[8], rh.influence[8]);
}

TEST_F(RobustTest, ConvergesWithinIterationBudget) {
  const HuberEstimator huber(kase_.network);
  const RobustResult r = huber.estimate(clean_);
  EXPECT_LE(r.reweight_iterations, 10);
  EXPECT_GE(r.reweight_iterations, 1);
}

TEST(RobustOptionsValidation, RejectsBadParameters) {
  const io::Case c = io::ieee14();
  RobustOptions bad;
  bad.gamma = 0.0;
  EXPECT_THROW(HuberEstimator(c.network, bad), InternalError);
  bad.gamma = 1.5;
  bad.max_reweight_iterations = 0;
  EXPECT_THROW(HuberEstimator(c.network, bad), InternalError);
}

}  // namespace
}  // namespace gridse::estimation
