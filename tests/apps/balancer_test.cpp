#include "apps/balancer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "analysis/debug_sync.hpp"
#include "runtime/inproc_comm.hpp"
#include "runtime/tcp_comm.hpp"

namespace gridse::apps {
namespace {

TEST(StaticBalancer, EveryTaskRunsExactlyOnce) {
  runtime::InprocWorld world(4);
  std::vector<std::atomic<int>> hits(100);
  world.run([&](runtime::Communicator& c) {
    run_static(c, 100, [&](int t) { hits[static_cast<std::size_t>(t)]++; });
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(DynamicBalancer, EveryTaskRunsExactlyOnce) {
  runtime::InprocWorld world(4);
  std::vector<std::atomic<int>> hits(100);
  std::atomic<int> executed{0};
  world.run([&](runtime::Communicator& c) {
    const BalanceStats stats =
        run_dynamic(c, 100, [&](int t) { hits[static_cast<std::size_t>(t)]++; });
    executed.fetch_add(stats.tasks_executed);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  EXPECT_EQ(executed.load(), 100);
}

TEST(DynamicBalancer, SingleRankDegeneratesToLoop) {
  runtime::InprocWorld world(1);
  std::vector<int> order;
  world.run([&](runtime::Communicator& c) {
    const BalanceStats stats =
        run_dynamic(c, 10, [&](int t) { order.push_back(t); });
    EXPECT_EQ(stats.tasks_executed, 10);
  });
  EXPECT_EQ(order.size(), 10u);
}

TEST(DynamicBalancer, ZeroTasksTerminates) {
  runtime::InprocWorld world(3);
  world.run([&](runtime::Communicator& c) {
    const BalanceStats stats =
        run_dynamic(c, 0, [](int) { FAIL() << "no task should run"; });
    EXPECT_EQ(stats.tasks_executed, 0);
  });
}

TEST(DynamicBalancer, CounterRankExecutesNothing) {
  runtime::InprocWorld world(3);
  analysis::Mutex mutex{"balancer_test::mutex"};
  std::vector<int> per_rank(3, -1);
  world.run([&](runtime::Communicator& c) {
    const BalanceStats stats = run_dynamic(c, 20, [](int) {});
    analysis::LockGuard lock(mutex);
    per_rank[static_cast<std::size_t>(c.rank())] = stats.tasks_executed;
  });
  EXPECT_EQ(per_rank[0], 0);
  EXPECT_EQ(per_rank[1] + per_rank[2], 20);
}

TEST(DynamicBalancer, AdaptsToHeterogeneousCosts) {
  // Rank 1 is artificially slow; dynamic balancing must route most tasks to
  // rank 2, beating the static split on makespan for the same workload.
  runtime::InprocWorld world(3);
  analysis::Mutex mutex{"balancer_test::mutex"};
  std::vector<int> dynamic_counts(3, 0);
  const auto task = [](runtime::Communicator& c) {
    return [&c](int) {
      if (c.rank() == 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    };
  };
  world.run([&](runtime::Communicator& c) {
    const BalanceStats stats = run_dynamic(c, 60, task(c));
    analysis::LockGuard lock(mutex);
    dynamic_counts[static_cast<std::size_t>(c.rank())] = stats.tasks_executed;
  });
  EXPECT_GT(dynamic_counts[2], dynamic_counts[1] * 3);
}

TEST(DynamicBalancer, WorksOverTcpTransport) {
  runtime::TcpWorld world(3);
  std::vector<std::atomic<int>> hits(30);
  world.run([&](runtime::Communicator& c) {
    run_dynamic(c, 30, [&](int t) { hits[static_cast<std::size_t>(t)]++; });
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(StaticBalancer, StatsAreConsistent) {
  runtime::InprocWorld world(2);
  analysis::Mutex mutex{"balancer_test::mutex"};
  std::vector<BalanceStats> stats(2);
  world.run([&](runtime::Communicator& c) {
    BalanceStats s = run_static(c, 11, [](int) {});
    analysis::LockGuard lock(mutex);
    stats[static_cast<std::size_t>(c.rank())] = s;
  });
  EXPECT_EQ(stats[0].tasks_executed + stats[1].tasks_executed, 11);
  EXPECT_GE(stats[0].total_seconds, stats[0].busy_seconds);
}

}  // namespace
}  // namespace gridse::apps
