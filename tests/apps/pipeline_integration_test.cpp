// End-to-end integration across the whole stack: distributed state
// estimation produces the operating point, the solution report turns it
// into flows, ratings come from the estimated base case, and contingency
// screening consumes it — the paper's §I pipeline ("critical inputs for
// other power system operational tools") in one test.
#include <gtest/gtest.h>

#include "apps/contingency.hpp"
#include "core/architecture.hpp"
#include "estimation/outputs.hpp"
#include "grid/dc_powerflow.hpp"

namespace gridse::apps {
namespace {

TEST(PipelineIntegration, DseFeedsContingencyScreening) {
  // 1. distributed estimation of the operating state
  core::SystemConfig config;
  config.mapping.num_clusters = 3;
  core::DseSystem system(io::ieee118_dse(), config);
  const core::CycleReport cycle = system.run_cycle(0.0);
  ASSERT_TRUE(cycle.dse.all_converged);

  // 2. operating-point report from the ESTIMATED state
  const estimation::SolutionReport report =
      estimation::build_solution_report(system.network(), cycle.dse.state);
  EXPECT_GT(report.total_loss, 0.0);

  // 3. ratings derived from the estimated base case, then N-1 screening
  io::GeneratedCase rated = io::ieee118_dse();
  grid::assign_ratings_from_base_case(rated.kase.network, 1.4, 0.2);
  const ContingencyReport screen = screen_all_branches(rated.kase.network);
  EXPECT_EQ(screen.outcomes.size(), rated.kase.network.num_branches());

  // 4. cross-check: estimated flows agree with the true flows well inside
  // the contingency margin, so screening on the estimate is trustworthy.
  const estimation::SolutionReport truth =
      estimation::build_solution_report(system.network(), system.true_state());
  double worst_flow_error = 0.0;
  for (std::size_t bi = 0; bi < report.flows.size(); ++bi) {
    worst_flow_error =
        std::max(worst_flow_error, std::abs(report.flows[bi].p_from -
                                            truth.flows[bi].p_from));
  }
  EXPECT_LT(worst_flow_error, 0.05);  // << the 40% rating margin
}

TEST(PipelineIntegration, EstimatedLoadingsMatchTrueLoadings) {
  core::SystemConfig config;
  config.mapping.num_clusters = 3;
  core::DseSystem system(io::ieee118_dse(), config);
  const core::CycleReport cycle = system.run_cycle(0.0);
  ASSERT_TRUE(cycle.dse.all_converged);

  io::GeneratedCase rated = io::ieee118_dse();
  grid::assign_ratings_from_base_case(rated.kase.network, 1.3, 0.2);
  const estimation::SolutionReport est_report =
      estimation::build_solution_report(rated.kase.network, cycle.dse.state);
  const estimation::SolutionReport true_report =
      estimation::build_solution_report(rated.kase.network,
                                        system.true_state());
  const auto est_loadings = est_report.loadings(rated.kase.network);
  const auto true_loadings = true_report.loadings(rated.kase.network);
  for (std::size_t bi = 0; bi < est_loadings.size(); ++bi) {
    // Branches at the rating floor (0.2 p.u.) amplify small absolute flow
    // errors into loading points, hence the 0.25 band.
    EXPECT_NEAR(est_loadings[bi], true_loadings[bi], 0.25) << "branch " << bi;
  }
}

}  // namespace
}  // namespace gridse::apps
