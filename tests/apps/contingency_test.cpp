#include "apps/contingency.hpp"

#include <gtest/gtest.h>

#include "io/case14.hpp"
#include "util/error.hpp"
#include "io/synthetic.hpp"

namespace gridse::apps {
namespace {

class ContingencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kase_ = io::ieee14();
    grid::assign_ratings_from_base_case(kase_.network, 1.3, 0.2);
  }
  io::Case kase_;
};

TEST_F(ContingencyTest, ScreensEveryBranch) {
  const ContingencyReport report = screen_all_branches(kase_.network);
  EXPECT_EQ(report.outcomes.size(), kase_.network.num_branches());
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    EXPECT_EQ(report.outcomes[i].outaged_branch, i);
  }
}

TEST_F(ContingencyTest, RadialOutageIsIslanding) {
  // bus 8 hangs on a single line: its outage must be flagged as islanding.
  const auto idx8 = kase_.network.index_of(8);
  const std::size_t radial = kase_.network.branches_at(idx8).front();
  const ContingencyOutcome outcome =
      evaluate_contingency(kase_.network, radial);
  EXPECT_TRUE(outcome.islanding);
  EXPECT_FALSE(outcome.secure());
}

TEST_F(ContingencyTest, TightRatingsProduceOverloads) {
  // With margin barely above 1, outaging a heavy line must overload its
  // parallel path.
  auto tight = io::ieee14();
  grid::assign_ratings_from_base_case(tight.network, 1.05, 0.01);
  const ContingencyReport report = screen_all_branches(tight.network);
  EXPECT_GT(report.insecure_cases, report.islanding_cases);
}

TEST_F(ContingencyTest, GenerousRatingsAreSecureExceptIslanding) {
  auto loose = io::ieee14();
  grid::assign_ratings_from_base_case(loose.network, 10.0, 5.0);
  const ContingencyReport report = screen_all_branches(loose.network);
  for (const ContingencyOutcome& o : report.outcomes) {
    if (!o.islanding) {
      EXPECT_TRUE(o.secure()) << "branch " << o.outaged_branch;
    }
  }
  EXPECT_EQ(report.insecure_cases, report.islanding_cases);
}

TEST_F(ContingencyTest, WorstLoadingIsPopulated) {
  const ContingencyReport report = screen_all_branches(kase_.network);
  bool any_loading = false;
  for (const ContingencyOutcome& o : report.outcomes) {
    if (!o.islanding) {
      any_loading |= o.worst_loading > 0.0;
    }
  }
  EXPECT_TRUE(any_loading);
}

TEST_F(ContingencyTest, UnratedBranchesNeverAlarm) {
  auto unrated = io::ieee14();  // ratings all 0 = unlimited
  const ContingencyReport report = screen_all_branches(unrated.network);
  for (const ContingencyOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.overloaded_branches.empty());
  }
}

TEST_F(ContingencyTest, OutOfRangeBranchThrows) {
  EXPECT_THROW(evaluate_contingency(kase_.network, 12345), InternalError);
}

}  // namespace
}  // namespace gridse::apps
