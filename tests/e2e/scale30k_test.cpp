// End-to-end scale tier: one full DSE cycle on the 30k-bus hierarchical
// interconnection with DC-linearized truth. This is the largest case run
// end to end under ctest; it carries a non-default timeout and the
// "scale" label so CI lanes can include or exclude it explicitly
// (ctest -L scale / ctest -LE scale).
#include <gtest/gtest.h>

#include "analysis/tsan.hpp"
#include "core/architecture.hpp"
#include "decomp/bus_partition.hpp"
#include "io/synthetic.hpp"

namespace gridse::core {
namespace {

TEST(Scale30kTest, FullDcTruthCycleConverges) {
  if (GRIDSE_TSAN_ENABLED) {
    GTEST_SKIP() << "30k tier is too slow under tsan instrumentation";
  }
  io::GeneratedCase gc = io::interconnection30k();
  graph::PartitionOptions popts;
  popts.k = 48;
  popts.seed = 7;
  popts.objective = graph::PartitionObjective::kConvergenceAware;
  gc.subsystem_of_bus = decomp::partition_buses(gc.kase.network, popts);
  // The hierarchical generator targets 30k nominally; the exact count
  // depends on the zone recursion.
  ASSERT_GT(gc.kase.network.num_buses(), 25000);
  ASSERT_EQ(gc.num_subsystems(), 48);

  SystemConfig cfg;
  cfg.truth_mode = TruthMode::kDcLinearized;
  cfg.mapping.num_clusters = 8;
  cfg.dse.workers_per_cluster = 4;
  DseSystem sys(std::move(gc), cfg);
  const CycleReport rep = sys.run_cycle(0.0);

  EXPECT_TRUE(rep.dse.all_converged);
  EXPECT_LT(rep.max_vm_error, 0.05);
  // The report's traces cover the subsystems hosted on the reporting rank.
  EXPECT_FALSE(rep.dse.traces.empty());
}

}  // namespace
}  // namespace gridse::core
