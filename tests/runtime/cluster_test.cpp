#include "runtime/cluster.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "util/error.hpp"

namespace gridse::runtime {
namespace {

TEST(SimulatedCluster, RunsWorkOnWorkers) {
  SimulatedCluster cluster({"TestCluster", 4});
  EXPECT_EQ(cluster.name(), "TestCluster");
  EXPECT_EQ(cluster.workers().size(), 4u);
  std::atomic<int> done{0};
  cluster.workers().parallel_for(16, [&](std::size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 16);
}

TEST(SimulatedCluster, RejectsZeroWorkers) {
  EXPECT_THROW(SimulatedCluster({"bad", 0}), InternalError);
}

TEST(PnnlTestbed, HasThePapersThreeClusters) {
  const auto specs = pnnl_testbed_specs(2);
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "Nwiceb");
  EXPECT_EQ(specs[1].name, "Catamount");
  EXPECT_EQ(specs[2].name, "Chinook");
  for (const auto& s : specs) {
    EXPECT_EQ(s.worker_threads, 2);
  }
}

}  // namespace
}  // namespace gridse::runtime
