#include "runtime/inproc_comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/error.hpp"

namespace gridse::runtime {
namespace {

TEST(InprocWorld, SizeAndRanks) {
  InprocWorld world(3);
  EXPECT_EQ(world.size(), 3);
  const auto c = world.communicator(2);
  EXPECT_EQ(c->rank(), 2);
  EXPECT_EQ(c->size(), 3);
  EXPECT_THROW(world.communicator(3), InternalError);
}

TEST(InprocWorld, PointToPoint) {
  InprocWorld world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 7, {1, 2, 3});
    } else {
      const Message m = c.recv(0, 7);
      EXPECT_EQ(m.payload, (std::vector<std::uint8_t>{1, 2, 3}));
      EXPECT_EQ(m.source, 0);
    }
  });
}

TEST(InprocWorld, RingPassesLargePayload) {
  InprocWorld world(5);
  world.run([](Communicator& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    std::vector<std::uint8_t> data(1 << 18, static_cast<std::uint8_t>(c.rank()));
    c.send(next, 1, data);
    const Message m = c.recv(prev, 1);
    ASSERT_EQ(m.payload.size(), data.size());
    EXPECT_EQ(m.payload[0], static_cast<std::uint8_t>(prev));
  });
}

TEST(InprocWorld, MessagesFromSameSenderStayOrdered) {
  InprocWorld world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      for (std::uint8_t i = 0; i < 100; ++i) {
        c.send(1, 3, {i});
      }
    } else {
      for (std::uint8_t i = 0; i < 100; ++i) {
        EXPECT_EQ(c.recv(0, 3).payload[0], i);
      }
    }
  });
}

TEST(InprocWorld, SelectiveReceiveByTag) {
  InprocWorld world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 10, {10});
      c.send(1, 20, {20});
    } else {
      // receive out of order by tag selection
      EXPECT_EQ(c.recv(0, 20).payload[0], 20);
      EXPECT_EQ(c.recv(0, 10).payload[0], 10);
    }
  });
}

TEST(InprocWorld, BarrierSynchronizes) {
  InprocWorld world(4);
  std::atomic<int> before{0};
  std::atomic<int> failures{0};
  world.run([&](Communicator& c) {
    before.fetch_add(1);
    c.barrier();
    if (before.load() != 4) {
      failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(InprocWorld, RepeatedBarriers) {
  InprocWorld world(3);
  world.run([](Communicator& c) {
    for (int i = 0; i < 20; ++i) {
      c.barrier();
    }
  });
}

TEST(InprocWorld, SendToBadRankThrows) {
  InprocWorld world(2);
  const auto c = world.communicator(0);
  EXPECT_THROW(c->send(5, 1, {}), CommError);
  EXPECT_THROW(c->send(0, -2, {}), CommError);
}

TEST(InprocWorld, ExceptionsPropagateFromRun) {
  InprocWorld world(2);
  EXPECT_THROW(world.run([](Communicator& c) {
    if (c.rank() == 1) {
      throw InvalidInput("rank 1 exploded");
    }
  }),
               InvalidInput);
}

TEST(InprocWorld, BytesSentAccumulates) {
  InprocWorld world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<std::uint8_t>(100));
      c.send(1, 1, std::vector<std::uint8_t>(28));
      EXPECT_EQ(c.bytes_sent(), 128u);
    } else {
      (void)c.recv(0, 1);
      (void)c.recv(0, 1);
    }
  });
}

TEST(InprocWorld, SelfSendWorks) {
  InprocWorld world(1);
  world.run([](Communicator& c) {
    c.send(0, 4, {9});
    EXPECT_EQ(c.recv(0, 4).payload[0], 9);
  });
}

}  // namespace
}  // namespace gridse::runtime
