#include "runtime/mailbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "fault/fault.hpp"

namespace gridse::runtime {
namespace {

Message make(int source, int tag, std::uint8_t byte = 0) {
  return Message{source, tag, {byte}};
}

TEST(Mailbox, DeliverThenTake) {
  Mailbox box;
  box.deliver(make(1, 5, 42));
  const Message m = box.take(1, 5);
  EXPECT_EQ(m.source, 1);
  EXPECT_EQ(m.tag, 5);
  EXPECT_EQ(m.payload[0], 42);
}

TEST(Mailbox, SelectiveReceiveSkipsNonMatching) {
  Mailbox box;
  box.deliver(make(1, 5, 1));
  box.deliver(make(2, 7, 2));
  const Message m = box.take(2, 7);
  EXPECT_EQ(m.payload[0], 2);
  EXPECT_EQ(box.pending(), 1u);
}

TEST(Mailbox, WildcardsMatchAnything) {
  Mailbox box;
  box.deliver(make(3, 9, 7));
  const Message m = box.take(kAnySource, kAnyTag);
  EXPECT_EQ(m.source, 3);
  EXPECT_EQ(m.tag, 9);
}

TEST(Mailbox, FifoWithinMatchingStream) {
  Mailbox box;
  box.deliver(make(1, 5, 1));
  box.deliver(make(1, 5, 2));
  box.deliver(make(1, 5, 3));
  EXPECT_EQ(box.take(1, 5).payload[0], 1);
  EXPECT_EQ(box.take(1, 5).payload[0], 2);
  EXPECT_EQ(box.take(1, 5).payload[0], 3);
}

TEST(Mailbox, TryTakeNonBlocking) {
  Mailbox box;
  Message out;
  EXPECT_FALSE(box.try_take(1, 1, out));
  box.deliver(make(1, 1, 9));
  EXPECT_TRUE(box.try_take(1, 1, out));
  EXPECT_EQ(out.payload[0], 9);
  EXPECT_FALSE(box.try_take(1, 1, out));
}

TEST(Mailbox, TakeBlocksUntilDelivery) {
  Mailbox box;
  std::thread producer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    box.deliver(make(4, 2, 11));
  });
  const Message m = box.take(4, 2);  // must block then wake
  EXPECT_EQ(m.payload[0], 11);
  producer.join();
}

TEST(Mailbox, TakeForReturnsMatchImmediately) {
  Mailbox box;
  box.deliver(make(1, 5, 42));
  const auto m = box.take_for(1, 5, std::chrono::milliseconds(0));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload[0], 42);
}

TEST(Mailbox, TakeForTimesOutOnLostPeer) {
  Mailbox box;
  box.deliver(make(1, 5, 1));  // wrong tag: must not satisfy the take
  const auto m = box.take_for(1, 6, std::chrono::milliseconds(20));
  EXPECT_FALSE(m.has_value());
  EXPECT_EQ(box.pending(), 1u);  // non-matching message left queued
}

TEST(Mailbox, TakeForWakesOnLateDelivery) {
  Mailbox box;
  std::thread producer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.deliver(make(4, 2, 11));
  });
  const auto m = box.take_for(4, 2, std::chrono::seconds(10));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload[0], 11);
  producer.join();
}

TEST(Mailbox, ConcurrentProducersAllDelivered) {
  Mailbox box;
  constexpr int kThreads = 8;
  constexpr int kEach = 50;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&box, t] {
      for (int i = 0; i < kEach; ++i) {
        box.deliver(make(t, 1));
      }
    });
  }
  int received = 0;
  for (int i = 0; i < kThreads * kEach; ++i) {
    (void)box.take(kAnySource, 1);
    ++received;
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(received, kThreads * kEach);
  EXPECT_EQ(box.pending(), 0u);
}

// N producers x M selective consumers, disjoint tag selectors with a
// kAnySource wildcard each: every message has exactly one eligible consumer,
// so the whole load must drain with no message lost or double-taken. This is
// the contention pattern TSan exercises hardest (deliver scans vs erase).
TEST(Mailbox, StressSelectiveConsumersDisjointTags) {
  Mailbox box;
  constexpr int kSources = 3;
  constexpr int kTags = 3;
  constexpr int kEach = 40;  // per (source, tag) pair
  std::vector<std::thread> consumers;
  std::vector<int> taken(kTags, 0);
  for (int t = 0; t < kTags; ++t) {
    consumers.emplace_back([&box, &taken, t] {
      for (int i = 0; i < kSources * kEach; ++i) {
        const Message m = box.take(kAnySource, /*tag=*/t + 1);
        ASSERT_EQ(m.tag, t + 1);
        ++taken[static_cast<std::size_t>(t)];
      }
    });
  }
  std::vector<std::thread> producers;
  for (int s = 0; s < kSources; ++s) {
    producers.emplace_back([&box, s] {
      for (int i = 0; i < kEach; ++i) {
        for (int t = 0; t < kTags; ++t) {
          box.deliver(make(s, t + 1, static_cast<std::uint8_t>(i)));
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  for (auto& c : consumers) c.join();
  for (int t = 0; t < kTags; ++t) {
    EXPECT_EQ(taken[static_cast<std::size_t>(t)], kSources * kEach);
  }
  EXPECT_EQ(box.pending(), 0u);
}

// Full-wildcard consumer pool racing specific-selector consumers: wildcard
// takes may claim any message, so consumers coordinate through an atomic
// budget instead of fixed counts, and take_for keeps losers from hanging
// once the budget is spent.
TEST(Mailbox, StressWildcardAndSpecificConsumersShareLoad) {
  Mailbox box;
  constexpr int kProducers = 4;
  constexpr int kEach = 60;
  constexpr int kTotal = kProducers * kEach;
  std::atomic<int> consumed{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&box, &consumed, c] {
      // Even consumers use full wildcards; odd ones pin a source.
      const int source = (c % 2 == 0) ? kAnySource : c / 2;
      while (consumed.load() < kTotal) {
        const auto m = box.take_for(source, kAnyTag,
                                    std::chrono::milliseconds(20));
        if (m.has_value()) {
          ASSERT_TRUE(source == kAnySource || m->source == source);
          consumed.fetch_add(1);
        }
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kEach; ++i) {
        box.deliver(make(p, 1 + (i % 3)));
      }
    });
  }
  for (auto& p : producers) p.join();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(consumed.load(), kTotal);
  EXPECT_EQ(box.pending(), 0u);
}

// Regression for the take_for timeout path: a deliver that lands between
// the cv wait timing out and take_for returning must either be claimed by
// the final scan or left intact for the next take — a message is never
// lost. Timeout and delivery are deliberately raced at the same ~1 ms mark.
TEST(Mailbox, TakeForLastScanNeverLosesARacingDeliver) {
  Mailbox box;
  constexpr int kRounds = 200;
  int taken = 0;
  int drained = 0;
  for (int i = 0; i < kRounds; ++i) {
    std::thread producer([&box] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      box.deliver(make(1, 7));
    });
    const auto m = box.take_for(1, 7, std::chrono::milliseconds(1));
    producer.join();
    if (m.has_value()) {
      ++taken;
    } else {
      // The timed take gave up before the deliver: the message must still
      // be sitting in the queue, not dropped on the floor.
      (void)box.take(1, 7);
      ++drained;
    }
  }
  EXPECT_EQ(taken + drained, kRounds);
  EXPECT_EQ(box.pending(), 0u);
}

// A zero timeout still performs the final scan, so an already-queued match
// is returned instead of reporting a spurious timeout.
TEST(Mailbox, TakeForZeroTimeoutStillScans) {
  Mailbox box;
  box.deliver(make(2, 3, 5));
  const auto m = box.take_for(2, 3, std::chrono::milliseconds(0));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload[0], 5);
}

// The mailbox.deliver fault hook drops only deliveries matched by the rule;
// other streams are untouched and the loss is visible in the injection log.
TEST(Mailbox, FaultDropLosesOnlyTheMatchedStream) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "built with GRIDSE_FAULT=OFF";
  }
  fault::FaultPlan plan;
  plan.rules.push_back({.site = "mailbox.deliver",
                        .action = fault::ActionKind::kDrop,
                        .source = 1});
  fault::install(plan);
  Mailbox box;
  box.deliver(make(1, 5, 1));  // dropped by the rule
  box.deliver(make(2, 5, 9));  // different source: delivered
  EXPECT_EQ(box.pending(), 1u);
  EXPECT_EQ(box.take(2, 5).payload[0], 9);
  EXPECT_EQ(fault::injected_count(), 1u);
  fault::clear();
}

}  // namespace
}  // namespace gridse::runtime
