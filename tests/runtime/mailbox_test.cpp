#include "runtime/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace gridse::runtime {
namespace {

Message make(int source, int tag, std::uint8_t byte = 0) {
  return Message{source, tag, {byte}};
}

TEST(Mailbox, DeliverThenTake) {
  Mailbox box;
  box.deliver(make(1, 5, 42));
  const Message m = box.take(1, 5);
  EXPECT_EQ(m.source, 1);
  EXPECT_EQ(m.tag, 5);
  EXPECT_EQ(m.payload[0], 42);
}

TEST(Mailbox, SelectiveReceiveSkipsNonMatching) {
  Mailbox box;
  box.deliver(make(1, 5, 1));
  box.deliver(make(2, 7, 2));
  const Message m = box.take(2, 7);
  EXPECT_EQ(m.payload[0], 2);
  EXPECT_EQ(box.pending(), 1u);
}

TEST(Mailbox, WildcardsMatchAnything) {
  Mailbox box;
  box.deliver(make(3, 9, 7));
  const Message m = box.take(kAnySource, kAnyTag);
  EXPECT_EQ(m.source, 3);
  EXPECT_EQ(m.tag, 9);
}

TEST(Mailbox, FifoWithinMatchingStream) {
  Mailbox box;
  box.deliver(make(1, 5, 1));
  box.deliver(make(1, 5, 2));
  box.deliver(make(1, 5, 3));
  EXPECT_EQ(box.take(1, 5).payload[0], 1);
  EXPECT_EQ(box.take(1, 5).payload[0], 2);
  EXPECT_EQ(box.take(1, 5).payload[0], 3);
}

TEST(Mailbox, TryTakeNonBlocking) {
  Mailbox box;
  Message out;
  EXPECT_FALSE(box.try_take(1, 1, out));
  box.deliver(make(1, 1, 9));
  EXPECT_TRUE(box.try_take(1, 1, out));
  EXPECT_EQ(out.payload[0], 9);
  EXPECT_FALSE(box.try_take(1, 1, out));
}

TEST(Mailbox, TakeBlocksUntilDelivery) {
  Mailbox box;
  std::thread producer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    box.deliver(make(4, 2, 11));
  });
  const Message m = box.take(4, 2);  // must block then wake
  EXPECT_EQ(m.payload[0], 11);
  producer.join();
}

TEST(Mailbox, ConcurrentProducersAllDelivered) {
  Mailbox box;
  constexpr int kThreads = 8;
  constexpr int kEach = 50;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&box, t] {
      for (int i = 0; i < kEach; ++i) {
        box.deliver(make(t, 1));
      }
    });
  }
  int received = 0;
  for (int i = 0; i < kThreads * kEach; ++i) {
    (void)box.take(kAnySource, 1);
    ++received;
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(received, kThreads * kEach);
  EXPECT_EQ(box.pending(), 0u);
}

}  // namespace
}  // namespace gridse::runtime
