#include "runtime/resilience.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/error.hpp"

namespace gridse::runtime {
namespace {

/// Clear every env var with_env_overrides reads, restore nothing: tests set
/// exactly what they need and the fixture guarantees a clean slate.
class ResilienceEnvTest : public ::testing::Test {
 protected:
  void SetUp() override { clear(); }
  void TearDown() override { clear(); }

  static void clear() {
    for (const char* name :
         {"GRIDSE_BARRIER_TIMEOUT_MS", "GRIDSE_EXCHANGE_DEADLINE_MS",
          "GRIDSE_RECOVERY", "GRIDSE_HEARTBEAT_PERIOD_MS",
          "GRIDSE_HEARTBEAT_TIMEOUT_MS", "GRIDSE_HEARTBEAT_ROUNDS",
          "GRIDSE_REJOIN_EPOCH", "GRIDSE_CHECKPOINT_DIR"}) {
      ::unsetenv(name);
    }
  }
};

TEST(ParseEnvMs, AcceptsNonNegativeIntegers) {
  EXPECT_EQ(parse_env_ms("X", "0"), std::chrono::milliseconds{0});
  EXPECT_EQ(parse_env_ms("X", "1500"), std::chrono::milliseconds{1500});
}

TEST(ParseEnvMs, RejectsNegative) {
  EXPECT_THROW(parse_env_ms("GRIDSE_EXCHANGE_DEADLINE_MS", "-1"),
               InvalidInput);
}

TEST(ParseEnvMs, RejectsNonNumeric) {
  EXPECT_THROW(parse_env_ms("X", "soon"), InvalidInput);
  EXPECT_THROW(parse_env_ms("X", "12abc"), InvalidInput);
  EXPECT_THROW(parse_env_ms("X", ""), InvalidInput);
  EXPECT_THROW(parse_env_ms("X", "1.5"), InvalidInput);
}

TEST(ParseEnvMs, ErrorNamesTheVariable) {
  try {
    parse_env_ms("GRIDSE_BARRIER_TIMEOUT_MS", "nope");
    FAIL() << "expected InvalidInput";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("GRIDSE_BARRIER_TIMEOUT_MS"),
              std::string::npos);
  }
}

TEST(ParseEnvInt, EnforcesMinimum) {
  EXPECT_EQ(parse_env_int("X", "3", 1), 3);
  EXPECT_EQ(parse_env_int("X", "1", 1), 1);
  EXPECT_THROW(parse_env_int("X", "0", 1), InvalidInput);
  EXPECT_THROW(parse_env_int("X", "-4", 1), InvalidInput);
}

TEST(ParseEnvInt, RejectsNonNumericAndOverflow) {
  EXPECT_THROW(parse_env_int("X", "two", 0), InvalidInput);
  EXPECT_THROW(parse_env_int("X", "99999999999999999999", 0), InvalidInput);
}

TEST(ParseEnvFlag, AcceptsCanonicalSpellings) {
  EXPECT_TRUE(parse_env_flag("X", "1"));
  EXPECT_TRUE(parse_env_flag("X", "on"));
  EXPECT_TRUE(parse_env_flag("X", "true"));
  EXPECT_FALSE(parse_env_flag("X", "0"));
  EXPECT_FALSE(parse_env_flag("X", "off"));
  EXPECT_FALSE(parse_env_flag("X", "false"));
}

TEST(ParseEnvFlag, RejectsAnythingElse) {
  EXPECT_THROW(parse_env_flag("X", "yes"), InvalidInput);
  EXPECT_THROW(parse_env_flag("X", "ON"), InvalidInput);
  EXPECT_THROW(parse_env_flag("X", ""), InvalidInput);
  EXPECT_THROW(parse_env_flag("X", "2"), InvalidInput);
}

TEST_F(ResilienceEnvTest, NoOverridesLeavesConfigUntouched) {
  ResilienceConfig base;
  base.exchange_deadline = std::chrono::milliseconds{123};
  base.recovery.heartbeat_rounds = 5;
  const ResilienceConfig out = with_env_overrides(base);
  EXPECT_EQ(out.exchange_deadline, std::chrono::milliseconds{123});
  EXPECT_EQ(out.barrier_timeout, base.barrier_timeout);
  EXPECT_FALSE(out.recovery.enabled);
  EXPECT_EQ(out.recovery.heartbeat_rounds, 5);
}

TEST_F(ResilienceEnvTest, AppliesEveryRecoveryOverride) {
  ::setenv("GRIDSE_BARRIER_TIMEOUT_MS", "777", 1);
  ::setenv("GRIDSE_EXCHANGE_DEADLINE_MS", "888", 1);
  ::setenv("GRIDSE_RECOVERY", "on", 1);
  ::setenv("GRIDSE_HEARTBEAT_PERIOD_MS", "7", 1);
  ::setenv("GRIDSE_HEARTBEAT_TIMEOUT_MS", "99", 1);
  ::setenv("GRIDSE_HEARTBEAT_ROUNDS", "4", 1);
  ::setenv("GRIDSE_REJOIN_EPOCH", "2", 1);
  ::setenv("GRIDSE_CHECKPOINT_DIR", "/tmp/ckpt", 1);
  const ResilienceConfig out = with_env_overrides(ResilienceConfig{});
  EXPECT_EQ(out.barrier_timeout, std::chrono::milliseconds{777});
  EXPECT_EQ(out.exchange_deadline, std::chrono::milliseconds{888});
  EXPECT_TRUE(out.recovery.enabled);
  EXPECT_EQ(out.recovery.heartbeat_period, std::chrono::milliseconds{7});
  EXPECT_EQ(out.recovery.heartbeat_timeout, std::chrono::milliseconds{99});
  EXPECT_EQ(out.recovery.heartbeat_rounds, 4);
  EXPECT_EQ(out.recovery.rejoin_epoch, 2);
  EXPECT_EQ(out.recovery.checkpoint_dir, "/tmp/ckpt");
}

TEST_F(ResilienceEnvTest, RejectsMalformedValuesLoudly) {
  ::setenv("GRIDSE_EXCHANGE_DEADLINE_MS", "-50", 1);
  EXPECT_THROW(with_env_overrides(ResilienceConfig{}), InvalidInput);
  clear();
  ::setenv("GRIDSE_BARRIER_TIMEOUT_MS", "fast", 1);
  EXPECT_THROW(with_env_overrides(ResilienceConfig{}), InvalidInput);
  clear();
  ::setenv("GRIDSE_HEARTBEAT_ROUNDS", "0", 1);
  EXPECT_THROW(with_env_overrides(ResilienceConfig{}), InvalidInput);
  clear();
  ::setenv("GRIDSE_RECOVERY", "maybe", 1);
  EXPECT_THROW(with_env_overrides(ResilienceConfig{}), InvalidInput);
}

TEST_F(ResilienceEnvTest, EmptyValueIsIgnored) {
  ::setenv("GRIDSE_EXCHANGE_DEADLINE_MS", "", 1);
  const ResilienceConfig out = with_env_overrides(ResilienceConfig{});
  EXPECT_EQ(out.exchange_deadline, std::chrono::milliseconds{0});
}

}  // namespace
}  // namespace gridse::runtime
