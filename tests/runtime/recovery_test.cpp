#include "runtime/recovery.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analysis/debug_sync.hpp"
#include "fault/fault.hpp"
#include "runtime/inproc_comm.hpp"
#include "runtime/tcp_comm.hpp"
#include "util/error.hpp"

namespace gridse::runtime {
namespace {

HeartbeatSettings fast_settings() {
  HeartbeatSettings s;
  s.period = std::chrono::milliseconds{5};
  s.timeout = std::chrono::milliseconds{400};
  s.rounds = 2;
  return s;
}

/// Run probe_membership on every rank of `world`, collect the per-rank views.
template <typename World>
std::vector<MembershipView> probe_all(World& world, int size,
                                      const HeartbeatSettings& settings) {
  std::vector<MembershipView> views(static_cast<std::size_t>(size));
  analysis::Mutex mutex{"recovery_test::mutex"};
  world.run([&](Communicator& comm) {
    MembershipView v = probe_membership(comm, settings);
    analysis::LockGuard lock(mutex);
    views[static_cast<std::size_t>(comm.rank())] = std::move(v);
  });
  return views;
}

class RecoveryProbeTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::clear(); }
};

TEST_F(RecoveryProbeTest, SingleRankIsTriviallyAlive) {
  InprocWorld world(1);
  const auto views = probe_all(world, 1, fast_settings());
  ASSERT_EQ(views[0].states.size(), 1u);
  EXPECT_TRUE(views[0].all_alive());
  EXPECT_TRUE(views[0].consensus);
}

TEST_F(RecoveryProbeTest, HealthyWorldAgreesAllAlive) {
  InprocWorld world(3);
  const auto views = probe_all(world, 3, fast_settings());
  for (const MembershipView& v : views) {
    ASSERT_EQ(v.states.size(), 3u);
    EXPECT_TRUE(v.all_alive());
    EXPECT_TRUE(v.consensus);
    EXPECT_EQ(v.num_alive(), 3);
  }
}

TEST_F(RecoveryProbeTest, HealthyTcpWorldAgreesAllAlive) {
  ResilienceConfig resilience;
  resilience.barrier_timeout = std::chrono::milliseconds{30'000};
  TcpWorld world(3, resilience);
  const auto views = probe_all(world, 3, fast_settings());
  for (const MembershipView& v : views) {
    EXPECT_TRUE(v.all_alive());
    EXPECT_TRUE(v.consensus);
  }
}

TEST_F(RecoveryProbeTest, SilentRankIsDeadOnEveryView) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "built with GRIDSE_FAULT=OFF";
  }
  // Drop every heartbeat-layer frame rank 1 sends (beats + its membership
  // report): all peers observe zero beats, the consensus marks it dead.
  fault::FaultPlan plan;
  plan.seed = 7;
  fault::FaultRule rule;
  rule.site = "tcp.send";
  rule.source = 1;
  rule.tag_min = kHeartbeatTagBase;
  rule.tag_max = kMembershipViewTag;
  plan.rules.push_back(rule);
  fault::install(plan);

  ResilienceConfig resilience;
  resilience.barrier_timeout = std::chrono::milliseconds{30'000};
  TcpWorld world(3, resilience);
  const auto views = probe_all(world, 3, fast_settings());
  for (const MembershipView& v : views) {
    ASSERT_EQ(v.states.size(), 3u);
    EXPECT_TRUE(v.consensus);
    EXPECT_EQ(v.states[1], RankState::kDead);
    EXPECT_FALSE(v.alive(1));
    EXPECT_TRUE(v.alive(0));
    EXPECT_TRUE(v.alive(2));
    EXPECT_EQ(v.dead_ranks(), (std::vector<int>{1}));
  }
}

TEST_F(RecoveryProbeTest, PartialBeatsMeanSuspectNotDead) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "built with GRIDSE_FAULT=OFF";
  }
  // Drop only round 1 of rank 1's beats: peers see one of two rounds, so
  // rank 1 is suspect — still alive for exchange purposes.
  fault::FaultPlan plan;
  plan.seed = 7;
  fault::FaultRule rule;
  rule.site = "tcp.send";
  rule.source = 1;
  rule.tag_min = heartbeat_tag(1);
  rule.tag_max = heartbeat_tag(1);
  plan.rules.push_back(rule);
  fault::install(plan);

  ResilienceConfig resilience;
  resilience.barrier_timeout = std::chrono::milliseconds{30'000};
  TcpWorld world(3, resilience);
  const auto views = probe_all(world, 3, fast_settings());
  for (const MembershipView& v : views) {
    EXPECT_TRUE(v.consensus);
    EXPECT_EQ(v.states[1], RankState::kSuspect);
    EXPECT_TRUE(v.alive(1));
    EXPECT_EQ(v.suspect_ranks(), (std::vector<int>{1}));
    EXPECT_TRUE(v.dead_ranks().empty());
  }
}

TEST_F(RecoveryProbeTest, ViewIsDeterministicPerSeed) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "built with GRIDSE_FAULT=OFF";
  }
  fault::FaultPlan plan;
  plan.seed = 21;
  fault::FaultRule rule;
  rule.site = "tcp.send";
  rule.source = 2;
  rule.tag_min = kHeartbeatTagBase;
  rule.tag_max = kMembershipViewTag;
  plan.rules.push_back(rule);

  std::vector<std::vector<MembershipView>> runs;
  for (int attempt = 0; attempt < 2; ++attempt) {
    fault::install(plan);
    ResilienceConfig resilience;
    resilience.barrier_timeout = std::chrono::milliseconds{30'000};
    TcpWorld world(3, resilience);
    runs.push_back(probe_all(world, 3, fast_settings()));
    fault::clear();
  }
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(runs[0][static_cast<std::size_t>(r)].states,
              runs[1][static_cast<std::size_t>(r)].states)
        << "rank " << r;
  }
}

TEST(MembershipCodec, RoundTrips) {
  MembershipView view;
  view.states = {RankState::kAlive, RankState::kSuspect, RankState::kDead,
                 RankState::kRejoining};
  const auto bytes = encode_membership(view);
  const MembershipView decoded = decode_membership(bytes);
  EXPECT_EQ(decoded.states, view.states);
  EXPECT_TRUE(decoded.consensus);
}

TEST(MembershipCodec, RejectsMalformedFrames) {
  MembershipView view;
  view.states = {RankState::kAlive, RankState::kDead};
  auto bytes = encode_membership(view);
  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_THROW((void)decode_membership(truncated), gridse::InvalidInput);
  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW((void)decode_membership(trailing), gridse::InvalidInput);
  auto bad_state = bytes;
  bad_state.back() = 200;  // not a RankState
  EXPECT_THROW((void)decode_membership(bad_state), gridse::InvalidInput);
}

TEST(RankStateNames, AreStable) {
  EXPECT_STREQ(to_string(RankState::kAlive), "alive");
  EXPECT_STREQ(to_string(RankState::kSuspect), "suspect");
  EXPECT_STREQ(to_string(RankState::kDead), "dead");
  EXPECT_STREQ(to_string(RankState::kRejoining), "rejoining");
}

}  // namespace
}  // namespace gridse::runtime
