#include "runtime/tcp_comm.hpp"

#include <gtest/gtest.h>

#include "runtime/socket.hpp"
#include "util/error.hpp"

namespace gridse::runtime {
namespace {

TEST(Socket, ListenConnectSendRecv) {
  std::uint16_t port = 0;
  Socket listener = Socket::listen_loopback(port);
  ASSERT_GT(port, 0);
  Socket client = Socket::connect_loopback(port);
  Socket server = listener.accept();

  const char msg[] = "hello sockets";
  client.send_all(msg, sizeof msg);
  char buf[sizeof msg] = {};
  server.recv_all(buf, sizeof msg);
  EXPECT_STREQ(buf, msg);
}

TEST(Socket, RecvAllDetectsClosedPeer) {
  std::uint16_t port = 0;
  Socket listener = Socket::listen_loopback(port);
  Socket client = Socket::connect_loopback(port);
  Socket server = listener.accept();
  client.close();
  char buf[4];
  EXPECT_THROW(server.recv_all(buf, 4), CommError);
}

TEST(Socket, RecvSomeReturnsZeroOnEof) {
  std::uint16_t port = 0;
  Socket listener = Socket::listen_loopback(port);
  Socket client = Socket::connect_loopback(port);
  Socket server = listener.accept();
  client.close();
  char buf[4];
  EXPECT_EQ(server.recv_some(buf, 4), 0u);
}

TEST(Socket, MoveTransfersOwnership) {
  std::uint16_t port = 0;
  Socket a = Socket::listen_loopback(port);
  const int fd = a.fd();
  Socket b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing move
  EXPECT_EQ(b.fd(), fd);
}

TEST(Socket, BindingBusyPortFails) {
  std::uint16_t port = 0;
  Socket first = Socket::listen_loopback(port);
  std::uint16_t same = port;
  EXPECT_THROW((void)Socket::listen_loopback(same), CommError);
}

TEST(Socket, ConnectToDeadPortFails) {
  // Grab a free port, close the listener, then connect: must refuse.
  std::uint16_t port = 0;
  {
    Socket probe = Socket::listen_loopback(port);
  }
  EXPECT_THROW((void)Socket::connect_loopback(port), CommError);
}

TEST(TcpWorld, SingleRankWorld) {
  TcpWorld world(1);
  world.run([](Communicator& c) {
    EXPECT_EQ(c.size(), 1);
    c.send(0, 1, {7});
    EXPECT_EQ(c.recv(0, 1).payload[0], 7);
    c.barrier();
  });
}

TEST(TcpWorld, PointToPointOverRealSockets) {
  TcpWorld world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 5, {7, 8, 9});
    } else {
      const Message m = c.recv(0, 5);
      EXPECT_EQ(m.payload, (std::vector<std::uint8_t>{7, 8, 9}));
    }
  });
}

TEST(TcpWorld, AllToAllExchange) {
  TcpWorld world(4);
  world.run([](Communicator& c) {
    for (int dest = 0; dest < c.size(); ++dest) {
      if (dest == c.rank()) continue;
      c.send(dest, 2, {static_cast<std::uint8_t>(c.rank())});
    }
    int received = 0;
    for (int src = 0; src < c.size(); ++src) {
      if (src == c.rank()) continue;
      const Message m = c.recv(src, 2);
      EXPECT_EQ(m.payload[0], static_cast<std::uint8_t>(src));
      ++received;
    }
    EXPECT_EQ(received, 3);
  });
}

TEST(TcpWorld, LargeMessageSurvivesFraming) {
  TcpWorld world(2);
  world.run([](Communicator& c) {
    std::vector<std::uint8_t> data(4 << 20);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(i * 31);
    }
    if (c.rank() == 0) {
      c.send(1, 1, data);
    } else {
      const Message m = c.recv(0, 1);
      ASSERT_EQ(m.payload.size(), data.size());
      EXPECT_EQ(m.payload, data);
    }
  });
}

TEST(TcpWorld, EmptyPayloadDelivered) {
  TcpWorld world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 3, {});
    } else {
      EXPECT_TRUE(c.recv(0, 3).payload.empty());
    }
  });
}

TEST(TcpWorld, BarrierAndOrdering) {
  TcpWorld world(3);
  world.run([](Communicator& c) {
    for (int round = 0; round < 5; ++round) {
      if (c.rank() == 0) {
        c.send(1, 9, {static_cast<std::uint8_t>(round)});
      } else if (c.rank() == 1) {
        EXPECT_EQ(c.recv(0, 9).payload[0], static_cast<std::uint8_t>(round));
      }
      c.barrier();
    }
  });
}

TEST(TcpWorld, SelfSendShortCircuits) {
  TcpWorld world(2);
  world.run([](Communicator& c) {
    c.send(c.rank(), 4, {42});
    EXPECT_EQ(c.recv(c.rank(), 4).payload[0], 42);
  });
}

TEST(TcpWorld, ReservedTagRejected) {
  TcpWorld world(2);
  const auto c = world.communicator(0);
  EXPECT_THROW(c->send(1, TcpWorld::kMaxUserTag + 1, {}), CommError);
}

}  // namespace
}  // namespace gridse::runtime
