#include "mapping/redistribution.hpp"

#include <gtest/gtest.h>

#include "decomp/sensitivity.hpp"
#include "util/error.hpp"
#include "io/synthetic.hpp"

namespace gridse::mapping {
namespace {

class RedistributionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    generated_ = io::ieee118_dse();
    d_ = decomp::decompose(generated_.kase.network, generated_.subsystem_of_bus);
    decomp::analyze_sensitivity(generated_.kase.network, d_, {});
  }
  io::GeneratedCase generated_;
  decomp::Decomposition d_;
};

TEST_F(RedistributionTest, NoChangesMeansEmptyPlan) {
  const std::vector<graph::PartId> a{0, 0, 0, 1, 1, 1, 2, 2, 2};
  const RedistributionPlan plan = plan_redistribution(d_, a, a);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.total_bytes(), 0u);
}

TEST_F(RedistributionTest, RecordsEachMovedSubsystem) {
  const std::vector<graph::PartId> before{0, 0, 0, 1, 1, 1, 2, 2, 2};
  std::vector<graph::PartId> after = before;
  after[3] = 2;  // the paper's subsystem-4 re-mapping
  after[4] = 0;  // and subsystem-5
  const RedistributionPlan plan = plan_redistribution(d_, before, after);
  ASSERT_EQ(plan.moves.size(), 2u);
  EXPECT_EQ(plan.moves[0].subsystem, 3);
  EXPECT_EQ(plan.moves[0].from_cluster, 1);
  EXPECT_EQ(plan.moves[0].to_cluster, 2);
  EXPECT_EQ(plan.moves[1].subsystem, 4);
  EXPECT_GT(plan.total_bytes(), 0u);
}

TEST_F(RedistributionTest, BytesScaleWithGsAndCalibration) {
  const std::vector<graph::PartId> before{0, 0, 0, 1, 1, 1, 2, 2, 2};
  std::vector<graph::PartId> after = before;
  after[4] = 0;
  const RedistributionPlan small = plan_redistribution(d_, before, after, 100, 1);
  const RedistributionPlan big = plan_redistribution(d_, before, after, 1000, 1);
  ASSERT_EQ(small.moves.size(), 1u);
  EXPECT_NEAR(static_cast<double>(big.moves[0].estimated_bytes) /
                  static_cast<double>(small.moves[0].estimated_bytes),
              10.0, 0.5);
  // gs governs the raw-measurement part of the payload
  const int gs = d_.subsystems[4].gs();
  EXPECT_EQ(small.moves[0].estimated_bytes,
            static_cast<std::size_t>(gs) * 100 + d_.subsystems[4].buses.size());
}

TEST_F(RedistributionTest, SizeMismatchThrows) {
  const std::vector<graph::PartId> nine(9, 0);
  const std::vector<graph::PartId> eight(8, 0);
  EXPECT_THROW(plan_redistribution(d_, eight, nine), InternalError);
  EXPECT_THROW(plan_redistribution(d_, nine, eight), InternalError);
}

}  // namespace
}  // namespace gridse::mapping
