#include "mapping/mapper.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "decomp/sensitivity.hpp"
#include "util/error.hpp"
#include "io/synthetic.hpp"
#include "util/error.hpp"

namespace gridse::mapping {
namespace {

class MapperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    generated_ = io::ieee118_dse();
    d_ = decomp::decompose(generated_.kase.network, generated_.subsystem_of_bus);
    decomp::analyze_sensitivity(generated_.kase.network, d_, {});
  }
  io::GeneratedCase generated_;
  decomp::Decomposition d_;
};

TEST_F(MapperTest, InitialGraphMatchesTableI) {
  MappingOptions opts;
  const ClusterMapper mapper(d_, opts);
  const graph::WeightedGraph g = mapper.initial_graph();
  // Table I vertex weights
  const double expected[] = {14, 13, 13, 13, 13, 12, 14, 13, 13};
  for (graph::VertexId v = 0; v < 9; ++v) {
    EXPECT_DOUBLE_EQ(g.vertex_weight(v), expected[v]);
  }
  // Table I edge weights = bus-count sums
  for (const graph::Edge& e : g.edges()) {
    EXPECT_DOUBLE_EQ(e.weight, expected[e.u] + expected[e.v]);
  }
  EXPECT_EQ(g.num_edges(), 12u);
}

TEST_F(MapperTest, Step1MappingBalancesLikeFigure4) {
  MappingOptions opts;
  opts.num_clusters = 3;
  const ClusterMapper mapper(d_, opts);
  const MappingResult r = mapper.map_before_step1(0.0);
  // Paper Fig. 4: METIS achieved 1.035; the optimal split of these weights
  // can only be at least as balanced.
  EXPECT_LE(r.partition.load_imbalance, 1.035 + 1e-9);
  EXPECT_TRUE(graph::is_valid_partition(r.weighted_graph,
                                        r.partition.assignment, 3));
  // Step-1 edges are uniform (no communication in Step 1).
  for (const graph::Edge& e : r.weighted_graph.edges()) {
    EXPECT_DOUBLE_EQ(e.weight, 1.0);
  }
}

TEST_F(MapperTest, Step2MappingUsesCommunicationWeights) {
  MappingOptions opts;
  opts.num_clusters = 3;
  const ClusterMapper mapper(d_, opts);
  const MappingResult r1 = mapper.map_before_step1(0.0);
  const MappingResult r2 =
      mapper.map_before_step2(0.0, r1.partition.assignment);
  // Fig. 5: stays within (a hair above) the balance threshold; the paper
  // reports 1.079 against the 1.05 suggestion.
  EXPECT_LE(r2.partition.load_imbalance, 1.12);
  // Edge weights now reflect Expression (5)'s upper bound.
  bool any_heavy = false;
  for (const graph::Edge& e : r2.weighted_graph.edges()) {
    any_heavy |= e.weight > 20.0;
  }
  EXPECT_TRUE(any_heavy);
}

TEST_F(MapperTest, GsEdgeWeightsWhenUpperBoundDisabled) {
  MappingOptions opts;
  opts.num_clusters = 3;
  opts.edge_upper_bound = false;
  const ClusterMapper mapper(d_, opts);
  const MappingResult r1 = mapper.map_before_step1(0.0);
  const MappingResult r2 =
      mapper.map_before_step2(0.0, r1.partition.assignment);
  for (const graph::Edge& e : r2.weighted_graph.edges()) {
    const int gs_sum = d_.subsystems[static_cast<std::size_t>(e.u)].gs() +
                       d_.subsystems[static_cast<std::size_t>(e.v)].gs();
    EXPECT_DOUBLE_EQ(e.weight, gs_sum);
  }
}

TEST_F(MapperTest, VertexWeightsFollowNoiseLevel) {
  MappingOptions opts;
  opts.num_clusters = 3;
  WeightModelParams params;
  const ClusterMapper mapper(d_, opts, params);
  const MappingResult quiet = mapper.map_before_step1(0.0);
  // Pick a frame with materially different noise.
  const MappingResult loud = mapper.map_before_step1(60.0);
  EXPECT_NE(quiet.noise_level, loud.noise_level);
  const double ratio0 = loud.weighted_graph.vertex_weight(0) /
                        quiet.weighted_graph.vertex_weight(0);
  const double expected = predicted_iterations(loud.noise_level, params) /
                          predicted_iterations(quiet.noise_level, params);
  EXPECT_NEAR(ratio0, expected, 1e-9);
}

TEST_F(MapperTest, RepartitionFromPreviousKeepsMigrationLow) {
  MappingOptions opts;
  opts.num_clusters = 3;
  const ClusterMapper mapper(d_, opts);
  const MappingResult first = mapper.map_before_step1(0.0);
  const MappingResult second =
      mapper.map_before_step1(30.0, &first.partition.assignment);
  EXPECT_LE(graph::migration_count(first.partition.assignment,
                                   second.partition.assignment),
            4);
}

TEST_F(MapperTest, RejectsBadClusterCounts) {
  MappingOptions opts;
  opts.num_clusters = 0;
  EXPECT_THROW(ClusterMapper(d_, opts), InternalError);
  opts.num_clusters = 100;
  EXPECT_THROW(ClusterMapper(d_, opts), InternalError);
}

TEST_F(MapperTest, ContiguousMappingMatchesTableIIBaselineShape) {
  const auto naive = contiguous_mapping(9, 3);
  EXPECT_EQ(naive, (std::vector<graph::PartId>{0, 0, 0, 1, 1, 1, 2, 2, 2}));
  const auto counts = cluster_bus_counts(d_, naive, 3);
  int total = 0;
  for (const int c : counts) total += c;
  EXPECT_EQ(total, 118);
}

TEST_F(MapperTest, MappedBusCountsMatchTableII) {
  // Table II "w/ mapping": 40 / 40 / 38 buses.
  MappingOptions opts;
  opts.num_clusters = 3;
  const ClusterMapper mapper(d_, opts);
  const MappingResult r = mapper.map_before_step1(0.0);
  auto counts = cluster_bus_counts(d_, r.partition.assignment, 3);
  std::sort(counts.begin(), counts.end());
  EXPECT_EQ(counts, (std::vector<int>{38, 40, 40}));
}

TEST(ContiguousMapping, HandlesRemainders) {
  const auto m = contiguous_mapping(7, 3);
  EXPECT_EQ(m, (std::vector<graph::PartId>{0, 0, 0, 1, 1, 2, 2}));
}

}  // namespace
}  // namespace gridse::mapping
