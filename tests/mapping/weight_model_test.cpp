#include "mapping/weight_model.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace gridse::mapping {
namespace {

TEST(WeightModel, PaperCalibrationForFourteenBusSubsystem) {
  // §IV-B2: "for a 14-bus subsystem, empirical studies show that
  // g1 = 3.7579 and g2 = 5.2464".
  const WeightModelParams params;
  EXPECT_DOUBLE_EQ(params.g1, 3.7579);
  EXPECT_DOUBLE_EQ(params.g2, 5.2464);
  // Expression (2) at x = 1: Ni = g1 + g2 ≈ 9 iterations.
  EXPECT_NEAR(predicted_iterations(1.0, params), 9.0043, 1e-4);
  // Expression (4): Wv = Nb * Ni.
  EXPECT_NEAR(vertex_weight(14, 1.0, params), 14.0 * 9.0043, 1e-3);
}

TEST(WeightModel, IterationsGrowWithNoise) {
  const WeightModelParams params;
  EXPECT_LT(predicted_iterations(0.5, params),
            predicted_iterations(1.0, params));
  EXPECT_LT(predicted_iterations(1.0, params),
            predicted_iterations(2.0, params));
}

TEST(WeightModel, NoiseProfileIsPeriodicAndNonNegative) {
  const WeightModelParams params;
  for (double t = 0.0; t < 1000.0; t += 13.0) {
    const double x = noise_from_time_frame(t, params);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, params.base_noise + params.noise_amplitude + 1e-12);
    EXPECT_NEAR(noise_from_time_frame(t + params.noise_period_sec, params), x,
                1e-9);
  }
}

TEST(WeightModel, NoiseVariesAcrossTimeFrames) {
  const WeightModelParams params;
  const double a = noise_from_time_frame(0.0, params);
  const double b = noise_from_time_frame(params.noise_period_sec / 4.0, params);
  EXPECT_GT(std::abs(a - b), 0.1);
}

TEST(WeightModel, EdgeWeightIsGsSum) {
  EXPECT_DOUBLE_EQ(edge_weight(5, 7), 12.0);
  EXPECT_DOUBLE_EQ(edge_weight(0, 0), 0.0);
}

TEST(WeightModel, EdgeWeightUpperBoundMatchesTableI) {
  // Table I: edge (1,2) weight 27 = 14 + 13 buses, edge (2,3) = 26, etc.
  EXPECT_DOUBLE_EQ(edge_weight_upper_bound(14, 13), 27.0);
  EXPECT_DOUBLE_EQ(edge_weight_upper_bound(13, 13), 26.0);
  EXPECT_DOUBLE_EQ(edge_weight_upper_bound(13, 12), 25.0);
}

TEST(WeightModel, RejectsBadArguments) {
  const WeightModelParams params;
  EXPECT_THROW(predicted_iterations(-1.0, params), InternalError);
  EXPECT_THROW(vertex_weight(0, 1.0, params), InternalError);
  EXPECT_THROW(edge_weight(-1, 2), InternalError);
  EXPECT_THROW(edge_weight_upper_bound(0, 5), InternalError);
  WeightModelParams bad;
  bad.noise_period_sec = 0.0;
  EXPECT_THROW(noise_from_time_frame(1.0, bad), InternalError);
}

}  // namespace
}  // namespace gridse::mapping
