#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace gridse::log {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_level(Level::kWarn); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_level(Level::kDebug);
  EXPECT_EQ(level(), Level::kDebug);
  set_level(Level::kError);
  EXPECT_EQ(level(), Level::kError);
}

TEST_F(LoggingTest, MacroCompilesAndRespectsLevel) {
  set_level(Level::kOff);
  // Nothing to assert about output (stderr); the point is the statement is
  // valid and safe at any level.
  GRIDSE_DEBUG << "hidden " << 1;
  GRIDSE_ERROR << "also hidden at kOff " << 2.5;
}

TEST_F(LoggingTest, ConcurrentWritesDoNotRace) {
  set_level(Level::kOff);  // keep test output clean; write() still runs
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 100; ++i) {
        write(Level::kDebug, "thread " + std::to_string(t));
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace gridse::log
