#include "util/byte_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace gridse {
namespace {

TEST(ByteBuffer, RoundTripsScalars) {
  ByteWriter w;
  w.write<std::int32_t>(-42);
  w.write<double>(3.14159);
  w.write<std::uint8_t>(255);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read<std::int32_t>(), -42);
  EXPECT_DOUBLE_EQ(r.read<double>(), 3.14159);
  EXPECT_EQ(r.read<std::uint8_t>(), 255);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuffer, RoundTripsStrings) {
  ByteWriter w;
  w.write_string("hello world");
  w.write_string("");
  w.write_string(std::string("\0binary\0", 8));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), std::string("\0binary\0", 8));
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuffer, RoundTripsVectors) {
  ByteWriter w;
  const std::vector<double> doubles{1.5, -2.25, 0.0, 1e300};
  const std::vector<std::int16_t> shorts{-1, 0, 32767};
  w.write_vector(doubles);
  w.write_vector(shorts);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_vector<double>(), doubles);
  EXPECT_EQ(r.read_vector<std::int16_t>(), shorts);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuffer, RoundTripsEmptyVector) {
  ByteWriter w;
  w.write_vector(std::vector<double>{});
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.read_vector<double>().empty());
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuffer, TruncatedScalarThrows) {
  ByteWriter w;
  w.write<std::int16_t>(7);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.read<std::int64_t>(), InvalidInput);
}

TEST(ByteBuffer, TruncatedVectorThrows) {
  ByteWriter w;
  w.write<std::uint64_t>(1000);  // claims 1000 doubles follow
  w.write<double>(1.0);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.read_vector<double>(), InvalidInput);
}

TEST(ByteBuffer, TruncatedStringThrows) {
  ByteWriter w;
  w.write<std::uint64_t>(std::numeric_limits<std::uint64_t>::max());
  ByteReader r(w.bytes());
  EXPECT_THROW(r.read_string(), InvalidInput);
}

TEST(ByteBuffer, RemainingTracksPosition) {
  ByteWriter w;
  w.write<std::uint32_t>(1);
  w.write<std::uint32_t>(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.read<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 4u);
  (void)r.read<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteBuffer, TakeMovesBytesOut) {
  ByteWriter w;
  w.write<std::uint32_t>(0xdeadbeef);
  const auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
}

TEST(ByteBuffer, WriteRawAppendsVerbatim) {
  ByteWriter w;
  const std::uint8_t raw[] = {1, 2, 3};
  w.write_raw(raw, sizeof raw);
  EXPECT_EQ(w.bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
}

}  // namespace
}  // namespace gridse
