#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace gridse {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.018);
  EXPECT_LT(s, 1.0);
  EXPECT_NEAR(t.millis(), t.seconds() * 1e3, 5.0);
}

TEST(Timer, ResetRestartsFromZero) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(Timer, Monotonic) {
  Timer t;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = t.seconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(ErrorHierarchy, SubtypesCatchAsBase) {
  EXPECT_THROW(throw InvalidInput("x"), Error);
  EXPECT_THROW(throw ConvergenceFailure("x"), Error);
  EXPECT_THROW(throw CommError("x"), Error);
  EXPECT_THROW(throw InternalError("x"), Error);
  EXPECT_THROW(throw Error("x"), std::runtime_error);
}

TEST(ErrorHierarchy, WhatCarriesTheMessage) {
  try {
    throw InvalidInput("the exact message");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "the exact message");
  }
}

TEST(CheckMacro, PassesAndFails) {
  GRIDSE_CHECK(1 + 1 == 2);  // no throw
  try {
    GRIDSE_CHECK_MSG(false, "broken invariant");
    FAIL() << "expected InternalError";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("broken invariant"), std::string::npos);
    EXPECT_NE(what.find("timer_error_test.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace gridse
