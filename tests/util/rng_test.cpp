#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace gridse {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1000000) == b.uniform_int(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 5);
    saw_lo |= v == 0;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(123);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian(2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, GaussianWithMean) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    sum += rng.gaussian(10.0, 0.5);
  }
  EXPECT_NEAR(sum / 20000, 10.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(77);
  Rng child = parent.fork();
  // The child stream must not replay the parent stream.
  Rng parent2(77);
  (void)parent2.engine()();  // advance like fork did
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.uniform_int(0, 1 << 30) == parent.uniform_int(0, 1 << 30)) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace gridse
