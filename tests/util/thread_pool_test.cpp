#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/error.hpp"

namespace gridse {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForZeroIterations) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ExceptionsPropagateFromSubmit) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw InvalidInput("boom"); });
  EXPECT_THROW(f.get(), InvalidInput);
}

TEST(ThreadPool, ExceptionsPropagateFromParallelFor) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) throw InvalidInput("boom");
                                 }),
               InvalidInput);
}

TEST(ThreadPool, ZeroThreadsRejected) {
  EXPECT_THROW(ThreadPool(0), InternalError);
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins; queued work must have run
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), InternalError);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();  // second call must be a no-op, not a double join
  SUCCEED();
}

TEST(ThreadPool, ShutdownDrainsAcceptedTasks) {
  std::atomic<int> executed{0};
  ThreadPool pool(2);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&executed] { executed.fetch_add(1); });
  }
  pool.shutdown();
  EXPECT_EQ(executed.load(), 100);
}

// The shutdown race class from the issue: submitters hammering the pool
// while shutdown begins must either get their task executed or get a clean
// InternalError — never a task silently swallowed by a dying pool.
TEST(ThreadPool, StressShutdownWhileSubmitting) {
  std::atomic<int> accepted{0};
  std::atomic<int> executed{0};
  std::atomic<int> rejected{0};
  ThreadPool pool(3);
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (;;) {
        try {
          pool.submit([&executed] { executed.fetch_add(1); });
          accepted.fetch_add(1);
        } catch (const InternalError&) {
          rejected.fetch_add(1);
          return;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  pool.shutdown();
  for (auto& t : submitters) t.join();
  EXPECT_EQ(rejected.load(), 4);            // every submitter saw the stop
  EXPECT_EQ(executed.load(), accepted.load());  // accepted => executed
}

}  // namespace
}  // namespace gridse
