#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace gridse {
namespace {

TEST(Split, BasicFields) {
  EXPECT_EQ(split("a b c", ' '),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, DropsEmptyFieldsByDefault) {
  EXPECT_EQ(split("a   b", ' '), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split("  a  ", ' '), (std::vector<std::string>{"a"}));
}

TEST(Split, KeepsEmptyFieldsWhenAsked) {
  EXPECT_EQ(split("a,,b", ',', /*keep_empty=*/true),
            (std::vector<std::string>{"a", "", "b"}));
}

TEST(Split, EmptyInput) {
  EXPECT_TRUE(split("", ' ').empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("branch 1 2", "branch"));
  EXPECT_FALSE(starts_with("bra", "branch"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(strfmt("%.3f", 2.0 / 3.0), "0.667");
  EXPECT_EQ(strfmt("%s", ""), "");
}

TEST(FormatBytes, PicksHumanUnits) {
  EXPECT_EQ(format_bytes(100), "100 B");
  EXPECT_EQ(format_bytes(100 * 1024), "100 KB");
  EXPECT_EQ(format_bytes(100ull * 1024 * 1024), "100 MB");
  EXPECT_EQ(format_bytes(2ull * 1024 * 1024 * 1024), "2.0 GB");
}

}  // namespace
}  // namespace gridse
