#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace gridse {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Name  | Value"), std::string::npos);
  EXPECT_NE(s.find("alpha | 1"), std::string::npos);
  EXPECT_NE(s.find("b     | 22"), std::string::npos);
  EXPECT_NE(s.find("------+------"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTable, RowArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), InternalError);
}

TEST(TextTable, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), InternalError);
}

TEST(TextTable, NoRowsStillRendersHeader) {
  TextTable t({"x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find('x'), std::string::npos);
  EXPECT_NE(s.find('-'), std::string::npos);
}

}  // namespace
}  // namespace gridse
