#include "core/architecture.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gridse::core {
namespace {

SystemConfig small_config(Transport transport = Transport::kInproc) {
  SystemConfig cfg;
  cfg.mapping.num_clusters = 3;
  cfg.transport = transport;
  return cfg;
}

TEST(DseSystem, FullCycleOnIeee118) {
  DseSystem sys(io::ieee118_dse(), small_config());
  const CycleReport rep = sys.run_cycle(0.0);
  EXPECT_TRUE(rep.dse.all_converged);
  EXPECT_LT(rep.max_vm_error, 0.02);
  EXPECT_LT(rep.max_angle_error, 0.02);
  EXPECT_LE(rep.map_step1.partition.load_imbalance, 1.05 + 1e-9);
}

TEST(DseSystem, RepeatedCyclesRemapAdaptively) {
  DseSystem sys(io::ieee118_dse(), small_config());
  CycleReport first = sys.run_cycle(0.0);
  CycleReport second = sys.run_cycle(60.0);
  EXPECT_TRUE(second.dse.all_converged);
  // Noise differs across frames, so the weight model must produce different
  // vertex weights.
  EXPECT_NE(first.map_step1.noise_level, second.map_step1.noise_level);
}

TEST(DseSystem, CyclesAreDeterministicGivenSeed) {
  DseSystem a(io::ieee118_dse(), small_config());
  DseSystem b(io::ieee118_dse(), small_config());
  const CycleReport ra = a.run_cycle(0.0);
  const CycleReport rb = b.run_cycle(0.0);
  EXPECT_DOUBLE_EQ(grid::max_vm_error(ra.dse.state, rb.dse.state), 0.0);
}

TEST(DseSystem, CentralizedReferenceAvailableAfterCycle) {
  DseSystem sys(io::ieee118_dse(), small_config());
  EXPECT_THROW(sys.centralized_reference(), InternalError);
  sys.run_cycle(0.0);
  const estimation::WlsResult central = sys.centralized_reference();
  EXPECT_TRUE(central.converged);
}

TEST(DseSystem, SmallerSystemsAndDifferentClusterCounts) {
  SystemConfig cfg;
  cfg.mapping.num_clusters = 2;
  DseSystem sys(io::generate_synthetic(io::make_ring_spec(4, 10, 1)), cfg);
  const CycleReport rep = sys.run_cycle(0.0);
  EXPECT_TRUE(rep.dse.all_converged);
  EXPECT_LT(rep.max_vm_error, 0.03);
}

TEST(DseSystem, TcpTransportProducesSameEstimateAsInproc) {
  DseSystem inproc(io::ieee118_dse(), small_config(Transport::kInproc));
  DseSystem tcp(io::ieee118_dse(), small_config(Transport::kTcp));
  const CycleReport a = inproc.run_cycle(0.0);
  const CycleReport b = tcp.run_cycle(0.0);
  EXPECT_LT(grid::max_vm_error(a.dse.state, b.dse.state), 1e-12);
}

TEST(DseSystem, LoadProfileMovesTheOperatingPoint) {
  SystemConfig cfg = small_config();
  cfg.load_profile = [](double t) {
    return 1.0 + 0.12 * std::sin(t / 200.0);  // gentle diurnal swing
  };
  DseSystem sys(io::ieee118_dse(), cfg);

  const CycleReport base = sys.run_cycle(0.0);  // factor 1.0
  const grid::GridState truth0 = sys.true_state();
  const CycleReport peak = sys.run_cycle(314.0);  // factor ~1.12
  const grid::GridState truth1 = sys.true_state();

  // The true state must have moved between the frames...
  EXPECT_GT(grid::max_angle_error(truth0, truth1), 1e-3);
  // ...and the DSE must track both operating points.
  EXPECT_TRUE(base.dse.all_converged);
  EXPECT_TRUE(peak.dse.all_converged);
  EXPECT_LT(base.max_vm_error, 0.02);
  EXPECT_LT(peak.max_vm_error, 0.02);
}

TEST(DseSystem, InfeasibleLoadProfileDiagnosed) {
  SystemConfig cfg = small_config();
  cfg.load_profile = [](double) { return 50.0; };  // collapse-level loading
  DseSystem sys(io::ieee118_dse(), cfg);
  EXPECT_THROW(sys.run_cycle(0.0), Error);
}

TEST(DseSystem, MediciTransportWorksEndToEnd) {
  DseSystem sys(io::ieee118_dse(), small_config(Transport::kMedici));
  const CycleReport rep = sys.run_cycle(0.0);
  EXPECT_TRUE(rep.dse.all_converged);
  EXPECT_LT(rep.max_vm_error, 0.02);
}

}  // namespace
}  // namespace gridse::core
