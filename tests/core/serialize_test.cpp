#include "core/serialize.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace gridse::core {
namespace {

TEST(Serialize, BusStatesRoundTrip) {
  const std::vector<BusStateRecord> records{
      {0, 0.1, 1.02}, {17, -0.25, 0.98}, {117, 0.0, 1.0}};
  const auto bytes = encode_bus_states(records);
  const auto back = decode_bus_states(bytes);
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back[i].bus, records[i].bus);
    EXPECT_DOUBLE_EQ(back[i].theta, records[i].theta);
    EXPECT_DOUBLE_EQ(back[i].vm, records[i].vm);
  }
}

TEST(Serialize, EmptyBusStates) {
  const auto bytes = encode_bus_states({});
  EXPECT_TRUE(decode_bus_states(bytes).empty());
}

TEST(Serialize, BusStatesRejectTrailingGarbage) {
  auto bytes = encode_bus_states({{1, 0.0, 1.0}});
  bytes.push_back(0xff);
  EXPECT_THROW(decode_bus_states(bytes), InvalidInput);
}

TEST(Serialize, MeasurementsRoundTrip) {
  grid::MeasurementSet set;
  set.timestamp = 42.5;
  set.items.push_back({grid::MeasType::kPFlow, 3, 7, true, 0.5, 0.01});
  set.items.push_back({grid::MeasType::kQFlow, 9, 7, false, -0.2, 0.02});
  set.items.push_back({grid::MeasType::kVAngle, 0, -1, true, 0.05, 0.001});
  const auto bytes = encode_measurements(set);
  const grid::MeasurementSet back = decode_measurements(bytes);
  EXPECT_DOUBLE_EQ(back.timestamp, 42.5);
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back.items[i].type, set.items[i].type);
    EXPECT_EQ(back.items[i].bus, set.items[i].bus);
    EXPECT_EQ(back.items[i].branch, set.items[i].branch);
    EXPECT_EQ(back.items[i].at_from_side, set.items[i].at_from_side);
    EXPECT_DOUBLE_EQ(back.items[i].value, set.items[i].value);
    EXPECT_DOUBLE_EQ(back.items[i].sigma, set.items[i].sigma);
  }
}

TEST(Serialize, MeasurementsRejectUnknownType) {
  grid::MeasurementSet set;
  set.items.push_back({grid::MeasType::kVMag, 0, -1, true, 1.0, 0.01});
  auto bytes = encode_measurements(set);
  // Corrupt the type byte of the first wire record. Layout after the
  // timestamp (8) and the vector length (8) begins with the type byte.
  bytes[16] = 0x7f;
  EXPECT_THROW(decode_measurements(bytes), InvalidInput);
}

TEST(Serialize, StateRoundTrip) {
  grid::GridState s(3);
  s.theta = {0.1, -0.2, 0.3};
  s.vm = {1.01, 0.99, 1.05};
  const auto bytes = encode_state(s);
  const grid::GridState back = decode_state(bytes);
  EXPECT_EQ(back.theta, s.theta);
  EXPECT_EQ(back.vm, s.vm);
}

TEST(Serialize, StateRejectsMismatchedArrays) {
  ByteWriter w;
  w.write_vector(std::vector<double>{1.0, 2.0});
  w.write_vector(std::vector<double>{1.0});
  EXPECT_THROW(decode_state(w.take()), InvalidInput);
}

TEST(Serialize, TruncatedFrameRejected) {
  const auto bytes = encode_bus_states({{1, 0.5, 1.0}, {2, 0.1, 1.0}});
  const std::vector<std::uint8_t> cut(bytes.begin(), bytes.end() - 5);
  EXPECT_THROW(decode_bus_states(cut), InvalidInput);
}

TEST(Serialize, CheckpointRoundTrips) {
  EstimatorCheckpoint ckpt;
  ckpt.subsystem = 4;
  ckpt.cycle = 12;
  ckpt.reuse_gain = true;
  ckpt.step1_states = {{0, 0.1, 1.02}, {7, -0.25, 0.98}, {117, 0.0, 1.0}};
  ckpt.boundary_states = {{7, -0.25, 0.98}};
  const auto bytes = encode_checkpoint(ckpt);
  const EstimatorCheckpoint back = decode_checkpoint(bytes);
  EXPECT_EQ(back.subsystem, 4);
  EXPECT_EQ(back.cycle, 12);
  EXPECT_TRUE(back.reuse_gain);
  ASSERT_EQ(back.step1_states.size(), ckpt.step1_states.size());
  for (std::size_t i = 0; i < ckpt.step1_states.size(); ++i) {
    EXPECT_EQ(back.step1_states[i].bus, ckpt.step1_states[i].bus);
    EXPECT_DOUBLE_EQ(back.step1_states[i].theta, ckpt.step1_states[i].theta);
    EXPECT_DOUBLE_EQ(back.step1_states[i].vm, ckpt.step1_states[i].vm);
  }
  ASSERT_EQ(back.boundary_states.size(), 1u);
  EXPECT_EQ(back.boundary_states[0].bus, 7);
}

TEST(Serialize, DefaultCheckpointRoundTrips) {
  const EstimatorCheckpoint back = decode_checkpoint(
      encode_checkpoint(EstimatorCheckpoint{}));
  EXPECT_EQ(back.subsystem, -1);
  EXPECT_EQ(back.cycle, -1);
  EXPECT_FALSE(back.reuse_gain);
  EXPECT_TRUE(back.step1_states.empty());
  EXPECT_TRUE(back.boundary_states.empty());
}

TEST(Serialize, CheckpointRejectsMalformedFrames) {
  EstimatorCheckpoint ckpt;
  ckpt.subsystem = 2;
  ckpt.step1_states = {{1, 0.0, 1.0}};
  const auto bytes = encode_checkpoint(ckpt);
  auto truncated = std::vector<std::uint8_t>(bytes.begin(), bytes.end() - 3);
  EXPECT_THROW(decode_checkpoint(truncated), InvalidInput);
  auto trailing = bytes;
  trailing.push_back(0xee);
  EXPECT_THROW(decode_checkpoint(trailing), InvalidInput);
  EXPECT_THROW(decode_checkpoint({}), InvalidInput);
}

}  // namespace
}  // namespace gridse::core
