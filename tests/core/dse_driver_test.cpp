#include "core/dse_driver.hpp"

#include <gtest/gtest.h>


#include "analysis/debug_sync.hpp"
#include "decomp/sensitivity.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/synthetic.hpp"
#include "runtime/inproc_comm.hpp"
#include "runtime/tcp_comm.hpp"
#include "util/rng.hpp"

namespace gridse::core {
namespace {

class DseDriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    generated_ = io::ieee118_dse();
    d_ = decomp::decompose(generated_.kase.network,
                           generated_.subsystem_of_bus);
    decomp::analyze_sensitivity(generated_.kase.network, d_, {});
    pf_ = grid::solve_power_flow(generated_.kase.network);
    grid::MeasurementPlan plan;
    for (const decomp::Subsystem& s : d_.subsystems) {
      plan.pmu_buses.push_back(s.buses.front());
    }
    gen_ = std::make_unique<grid::MeasurementGenerator>(
        generated_.kase.network, plan);
    Rng rng(55);
    meas_ = gen_->generate(pf_.state, rng);
    assignment_ = {0, 0, 0, 1, 1, 1, 2, 2, 2};
  }

  std::vector<DseResult> run_all_ranks(
      const std::vector<graph::PartId>& step1,
      const std::vector<graph::PartId>& step2, int ranks = 3) {
    DseDriver driver(generated_.kase.network, d_, {});
    std::vector<DseResult> results(static_cast<std::size_t>(ranks));
    analysis::Mutex mutex{"dse_driver_test::mutex"};
    runtime::InprocWorld world(ranks);
    world.run([&](runtime::Communicator& c) {
      DseResult r = driver.run(c, meas_, step1, step2);
      analysis::LockGuard lock(mutex);
      results[static_cast<std::size_t>(c.rank())] = std::move(r);
    });
    return results;
  }

  io::GeneratedCase generated_;
  decomp::Decomposition d_;
  grid::PowerFlowResult pf_;
  std::unique_ptr<grid::MeasurementGenerator> gen_;
  grid::MeasurementSet meas_;
  std::vector<graph::PartId> assignment_;
};

TEST_F(DseDriverTest, ConvergesAndTracksTruth) {
  const auto results = run_all_ranks(assignment_, assignment_);
  for (const DseResult& r : results) {
    EXPECT_TRUE(r.all_converged);
    EXPECT_LT(grid::max_vm_error(r.state, pf_.state), 0.02);
    EXPECT_LT(grid::max_angle_error(r.state, pf_.state), 0.02);
  }
}

TEST_F(DseDriverTest, AllRanksAgreeOnTheCombinedState) {
  const auto results = run_all_ranks(assignment_, assignment_);
  for (int r = 1; r < 3; ++r) {
    EXPECT_LT(grid::max_vm_error(results[0].state,
                                 results[static_cast<std::size_t>(r)].state),
              1e-12);
    EXPECT_LT(grid::max_angle_error(results[0].state,
                                    results[static_cast<std::size_t>(r)].state),
              1e-12);
  }
}

TEST_F(DseDriverTest, CloseToCentralizedSolution) {
  const auto results = run_all_ranks(assignment_, assignment_);
  const estimation::WlsResult central =
      centralized_estimate(generated_.kase.network, meas_, {});
  ASSERT_TRUE(central.converged);
  // The paper's premise: distribution trades a small accuracy delta for
  // scalability. The DSE estimate must stay within a small factor of the
  // centralized error.
  const double dse_err = grid::max_vm_error(results[0].state, pf_.state);
  const double central_err = grid::max_vm_error(central.state, pf_.state);
  EXPECT_LT(dse_err, central_err * 5.0 + 0.005);
}

TEST_F(DseDriverTest, RemappingBetweenStepsRedistributesAndStillConverges) {
  std::vector<graph::PartId> step2 = assignment_;
  std::swap(step2[3], step2[4]);  // a paper-style subsystem swap
  step2[7] = 0;
  const auto results = run_all_ranks(assignment_, step2);
  for (const DseResult& r : results) {
    EXPECT_TRUE(r.all_converged);
    EXPECT_LT(grid::max_vm_error(r.state, pf_.state), 0.02);
  }
  // the movers shipped their Step-1 payload
  EXPECT_GT(results[1].bytes_sent, 0u);
}

TEST_F(DseDriverTest, TracesCoverHostedSubsystems) {
  const auto results = run_all_ranks(assignment_, assignment_);
  std::vector<int> seen;
  for (const DseResult& r : results) {
    for (const SubsystemTrace& t : r.traces) {
      seen.push_back(t.subsystem);
      EXPECT_TRUE(t.step1.converged);
      EXPECT_TRUE(t.step2.converged);
      EXPECT_GT(t.step2.num_measurements, t.step1.num_measurements);
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST_F(DseDriverTest, SingleRankDegeneratesToSequentialDse) {
  const std::vector<graph::PartId> all_zero(9, 0);
  DseDriver driver(generated_.kase.network, d_, {});
  runtime::InprocWorld world(1);
  world.run([&](runtime::Communicator& c) {
    const DseResult r = driver.run(c, meas_, all_zero);
    EXPECT_TRUE(r.all_converged);
    EXPECT_LT(grid::max_vm_error(r.state, pf_.state), 0.02);
  });
}

TEST_F(DseDriverTest, WorksOverTcpTransport) {
  DseDriver driver(generated_.kase.network, d_, {});
  runtime::TcpWorld world(3);
  analysis::Mutex mutex{"dse_driver_test::mutex"};
  grid::GridState state0;
  world.run([&](runtime::Communicator& c) {
    const DseResult r = driver.run(c, meas_, assignment_);
    EXPECT_TRUE(r.all_converged);
    if (c.rank() == 0) {
      analysis::LockGuard lock(mutex);
      state0 = r.state;
    }
  });
  EXPECT_LT(grid::max_vm_error(state0, pf_.state), 0.02);
}

TEST_F(DseDriverTest, RedistributionToggleOnlyChangesTraffic) {
  std::vector<graph::PartId> step2 = assignment_;
  std::swap(step2[2], step2[3]);  // move subsystem 3 (rank 0) <-> 4 (rank 1)
  const auto run_with = [&](bool ship) {
    DseOptions opts;
    opts.ship_redistribution = ship;
    DseDriver driver(generated_.kase.network, d_, opts);
    runtime::InprocWorld world(3);
    analysis::Mutex mutex{"dse_driver_test::mutex"};
    DseResult out;
    std::size_t total_bytes = 0;
    world.run([&](runtime::Communicator& c) {
      DseResult r = driver.run(c, meas_, assignment_, step2);
      analysis::LockGuard lock(mutex);
      total_bytes += r.bytes_sent;
      if (c.rank() == 0) out = std::move(r);
    });
    return std::make_pair(std::move(out), total_bytes);
  };
  const auto [with_ship, bytes_with] = run_with(true);
  const auto [without_ship, bytes_without] = run_with(false);
  EXPECT_TRUE(with_ship.all_converged);
  EXPECT_TRUE(without_ship.all_converged);
  // identical estimates either way (the payload is costed, not consumed)
  EXPECT_LT(grid::max_vm_error(with_ship.state, without_ship.state), 1e-12);
  // but the raw-measurement shipment shows up in the traffic accounting
  EXPECT_GT(bytes_with, bytes_without);
}

TEST_F(DseDriverTest, NonConvergenceIsReportedNotHidden) {
  // Starve the local solvers of iterations: every rank must see
  // all_converged == false in the combined result (a silent bad estimate is
  // the one unacceptable outcome for a control-room tool).
  DseOptions crippled;
  crippled.local.wls.max_iterations = 1;
  crippled.local.wls.tolerance = 1e-14;
  DseDriver driver(generated_.kase.network, d_, crippled);
  runtime::InprocWorld world(3);
  analysis::Mutex mutex{"dse_driver_test::mutex"};
  std::vector<bool> converged(3, true);
  world.run([&](runtime::Communicator& c) {
    const DseResult r = driver.run(c, meas_, assignment_);
    analysis::LockGuard lock(mutex);
    converged[static_cast<std::size_t>(c.rank())] = r.all_converged;
  });
  for (const bool ok : converged) {
    EXPECT_FALSE(ok);
  }
}

TEST_F(DseDriverTest, RejectsBadAssignments) {
  DseDriver driver(generated_.kase.network, d_, {});
  runtime::InprocWorld world(2);
  const std::vector<graph::PartId> bad{0, 0, 0, 1, 1, 1, 2, 2, 2};  // rank 2 absent
  world.run([&](runtime::Communicator& c) {
    EXPECT_THROW(driver.run(c, meas_, bad), InternalError);
  });
}

TEST_F(DseDriverTest, MultiRoundStepTwoConvergesAndNeverHurts) {
  DseOptions multi;
  multi.step2_rounds = 3;
  DseDriver driver(generated_.kase.network, d_, multi);
  runtime::InprocWorld world(3);
  analysis::Mutex mutex{"dse_driver_test::mutex"};
  DseResult multi_result;
  world.run([&](runtime::Communicator& c) {
    DseResult r = driver.run(c, meas_, assignment_);
    if (c.rank() == 0) {
      analysis::LockGuard lock(mutex);
      multi_result = std::move(r);
    }
  });
  EXPECT_TRUE(multi_result.all_converged);

  const auto single = run_all_ranks(assignment_, assignment_);
  // Extra exchange rounds must not degrade the estimate materially.
  EXPECT_LE(grid::max_vm_error(multi_result.state, pf_.state),
            grid::max_vm_error(single[0].state, pf_.state) * 1.2 + 1e-6);
  // ...and they do cost additional traffic.
  EXPECT_GT(multi_result.bytes_sent, single[0].bytes_sent);
}

TEST_F(DseDriverTest, WeccScaleScenarioConverges) {
  const io::GeneratedCase wecc = io::wecc37();
  decomp::Decomposition wd =
      decomp::decompose(wecc.kase.network, wecc.subsystem_of_bus);
  decomp::analyze_sensitivity(wecc.kase.network, wd, {});
  const grid::PowerFlowResult wpf = grid::solve_power_flow(wecc.kase.network);
  grid::MeasurementPlan plan;
  for (const decomp::Subsystem& s : wd.subsystems) {
    plan.pmu_buses.push_back(s.buses.front());
  }
  grid::MeasurementGenerator gen(wecc.kase.network, plan);
  Rng rng(3);
  const grid::MeasurementSet meas = gen.generate(wpf.state, rng);

  std::vector<graph::PartId> assignment(37);
  for (int s = 0; s < 37; ++s) {
    assignment[static_cast<std::size_t>(s)] = static_cast<graph::PartId>(s % 4);
  }
  DseDriver driver(wecc.kase.network, wd, {});
  runtime::InprocWorld world(4);
  analysis::Mutex mutex{"dse_driver_test::mutex"};
  DseResult result;
  world.run([&](runtime::Communicator& c) {
    DseResult r = driver.run(c, meas, assignment);
    if (c.rank() == 0) {
      analysis::LockGuard lock(mutex);
      result = std::move(r);
    }
  });
  EXPECT_TRUE(result.all_converged);
  EXPECT_LT(grid::max_vm_error(result.state, wpf.state), 0.02);
  EXPECT_LT(grid::max_angle_error(result.state, wpf.state), 0.03);
}

TEST_F(DseDriverTest, BatchedStepOneMatchesSequential) {
  // The batched lockstep sweep is an execution strategy, not an algorithm
  // change: with the same direct solver the combined estimate must be
  // bit-identical to the per-subsystem loop.
  const auto run_with = [&](bool batched) {
    DseOptions opts;
    opts.local.wls.solver = estimation::LinearSolver::kLdlt;
    opts.batched_step1 = batched;
    DseDriver driver(generated_.kase.network, d_, opts);
    runtime::InprocWorld world(3);
    analysis::Mutex mutex{"dse_driver_test::mutex"};
    DseResult out;
    world.run([&](runtime::Communicator& c) {
      DseResult r = driver.run(c, meas_, assignment_);
      if (c.rank() == 0) {
        analysis::LockGuard lock(mutex);
        out = std::move(r);
      }
    });
    return out;
  };
  const DseResult batched = run_with(true);
  const DseResult sequential = run_with(false);
  EXPECT_TRUE(batched.all_converged);
  EXPECT_TRUE(sequential.all_converged);
  EXPECT_LT(grid::max_vm_error(batched.state, sequential.state), 1e-12);
  EXPECT_LT(grid::max_angle_error(batched.state, sequential.state), 1e-12);
}

TEST_F(DseDriverTest, CondensationShrinksPseudoTrafficAndTracksTruth) {
  const auto run_with = [&](bool condense) {
    DseOptions opts;
    opts.condense_boundary = condense;
    DseDriver driver(generated_.kase.network, d_, opts);
    runtime::InprocWorld world(3);
    analysis::Mutex mutex{"dse_driver_test::mutex"};
    DseResult out;
    std::size_t total_bytes = 0;
    world.run([&](runtime::Communicator& c) {
      DseResult r = driver.run(c, meas_, assignment_);
      analysis::LockGuard lock(mutex);
      total_bytes += r.bytes_sent;
      if (c.rank() == 0) out = std::move(r);
    });
    return std::make_pair(std::move(out), total_bytes);
  };
  const auto [condensed, bytes_condensed] = run_with(true);
  const auto [plain, bytes_plain] = run_with(false);
  EXPECT_TRUE(condensed.all_converged);
  EXPECT_TRUE(plain.all_converged);
  // The condensed estimate still tracks the truth...
  EXPECT_LT(grid::max_vm_error(condensed.state, pf_.state), 0.02);
  EXPECT_LT(grid::max_angle_error(condensed.state, pf_.state), 0.02);
  // ...while Step 2 ships condensed boundary info only: the
  // sensitive-internal records of the plain exchange are folded into the
  // boundary marginals, so the cycle's total traffic drops.
  EXPECT_LT(bytes_condensed, bytes_plain);
}

TEST_F(DseDriverTest, SharedPlanRegistryIsReusedAcrossCycles) {
  const auto registry = std::make_shared<PlanRegistry>();
  DseOptions opts;
  opts.plan_registry = registry;
  DseDriver driver(generated_.kase.network, d_, opts);
  grid::GridState first_state;
  grid::GridState second_state;
  for (int cycle = 0; cycle < 2; ++cycle) {
    runtime::InprocWorld world(3);
    analysis::Mutex mutex{"dse_driver_test::mutex"};
    world.run([&](runtime::Communicator& c) {
      DseResult r = driver.run(c, meas_, assignment_);
      EXPECT_TRUE(r.all_converged);
      if (c.rank() == 0) {
        analysis::LockGuard lock(mutex);
        (cycle == 0 ? first_state : second_state) = std::move(r.state);
      }
    });
  }
  // Same measurements, same topology: the warm cycle reuses every symbolic
  // plan (no new analyses) and reproduces the estimate exactly.
  const auto stats = registry->stats();
  EXPECT_EQ(stats.subsystems, 9u);
  EXPECT_GT(stats.cache.plan_hits, 0u);
  EXPECT_LT(grid::max_vm_error(first_state, second_state), 1e-12);

  // The remap hook: invalidation drops the cached plans, the next cycle
  // re-analyzes from scratch and still agrees.
  registry->invalidate_all();
  const auto misses_after_invalidate = registry->stats().cache.plan_misses;
  runtime::InprocWorld world(3);
  analysis::Mutex mutex{"dse_driver_test::mutex"};
  grid::GridState third_state;
  world.run([&](runtime::Communicator& c) {
    DseResult r = driver.run(c, meas_, assignment_);
    if (c.rank() == 0) {
      analysis::LockGuard lock(mutex);
      third_state = std::move(r.state);
    }
  });
  EXPECT_GT(registry->stats().cache.plan_misses, misses_after_invalidate);
  EXPECT_LT(grid::max_vm_error(first_state, third_state), 1e-12);
}

TEST_F(DseDriverTest, BatchedCondensedCombinationConverges) {
  // The two fast-path features compose.
  DseOptions opts;
  opts.local.wls.solver = estimation::LinearSolver::kLdlt;
  opts.batched_step1 = true;
  opts.condense_boundary = true;
  opts.plan_registry = std::make_shared<PlanRegistry>();
  DseDriver driver(generated_.kase.network, d_, opts);
  runtime::InprocWorld world(3);
  analysis::Mutex mutex{"dse_driver_test::mutex"};
  DseResult result;
  world.run([&](runtime::Communicator& c) {
    DseResult r = driver.run(c, meas_, assignment_);
    if (c.rank() == 0) {
      analysis::LockGuard lock(mutex);
      result = std::move(r);
    }
  });
  EXPECT_TRUE(result.all_converged);
  EXPECT_LT(grid::max_vm_error(result.state, pf_.state), 0.02);
  EXPECT_LT(grid::max_angle_error(result.state, pf_.state), 0.02);
}

TEST_F(DseDriverTest, ExchangeVolumeIsSmall) {
  // The paper's selling point: only pseudo measurements move between
  // clusters, not raw SCADA. Total traffic for the whole cycle must be tiny
  // relative to the raw measurement volume.
  const auto results = run_all_ranks(assignment_, assignment_);
  std::size_t total = 0;
  for (const DseResult& r : results) total += r.bytes_sent;
  const std::size_t raw_size = meas_.size() * sizeof(grid::Measurement);
  EXPECT_LT(total, raw_size * 3);
}

}  // namespace
}  // namespace gridse::core
