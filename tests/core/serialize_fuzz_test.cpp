// Fuzz-style robustness tests for the wire format: arbitrary truncation and
// byte corruption must never crash or return garbage silently — decoding
// either succeeds on intact frames or throws InvalidInput.
#include <gtest/gtest.h>

#include "core/serialize.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gridse::core {
namespace {

std::vector<BusStateRecord> sample_records(Rng& rng, int n) {
  std::vector<BusStateRecord> records;
  for (int i = 0; i < n; ++i) {
    records.push_back({static_cast<std::int32_t>(rng.uniform_int(0, 500)),
                       rng.uniform(-1.0, 1.0), rng.uniform(0.8, 1.2)});
  }
  return records;
}

grid::MeasurementSet sample_measurements(Rng& rng, int n) {
  grid::MeasurementSet set;
  set.timestamp = rng.uniform(0, 1e6);
  for (int i = 0; i < n; ++i) {
    grid::Measurement m;
    m.type = static_cast<grid::MeasType>(rng.uniform_int(0, 5));
    m.bus = static_cast<grid::BusIndex>(rng.uniform_int(0, 200));
    m.branch = static_cast<std::int32_t>(rng.uniform_int(-1, 300));
    m.at_from_side = rng.bernoulli(0.5);
    m.value = rng.uniform(-5, 5);
    m.sigma = rng.uniform(1e-4, 1.0);
    set.items.push_back(m);
  }
  return set;
}

TEST(SerializeFuzz, TruncationAlwaysThrowsNeverCrashes) {
  Rng rng(909);
  for (int trial = 0; trial < 50; ++trial) {
    const auto records = sample_records(rng, static_cast<int>(rng.uniform_int(0, 40)));
    const auto bytes = encode_bus_states(records);
    for (std::size_t cut = 0; cut < bytes.size(); cut += 3) {
      const std::vector<std::uint8_t> truncated(bytes.begin(),
                                                bytes.begin() + cut);
      EXPECT_THROW((void)decode_bus_states(truncated), InvalidInput)
          << "cut at " << cut << " of " << bytes.size();
    }
  }
}

TEST(SerializeFuzz, MeasurementTruncationThrows) {
  Rng rng(911);
  const auto set = sample_measurements(rng, 25);
  const auto bytes = encode_measurements(set);
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + cut);
    EXPECT_THROW((void)decode_measurements(truncated), InvalidInput);
  }
}

TEST(SerializeFuzz, RandomCorruptionThrowsOrDecodesConsistentSizes) {
  // Flipping bytes may corrupt values (undetectable without checksums) but
  // must never crash, loop, or return an impossible structure.
  Rng rng(913);
  for (int trial = 0; trial < 200; ++trial) {
    const auto records = sample_records(rng, 10);
    auto bytes = encode_bus_states(records);
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    try {
      const auto decoded = decode_bus_states(bytes);
      // If the length prefix survived, the count must match.
      EXPECT_LE(decoded.size(), bytes.size());
    } catch (const InvalidInput&) {
      // acceptable: corruption detected
    }
  }
}

TEST(SerializeFuzz, MeasurementRoundTripRandomized) {
  Rng rng(915);
  for (int trial = 0; trial < 50; ++trial) {
    const auto set = sample_measurements(rng, static_cast<int>(rng.uniform_int(0, 60)));
    const grid::MeasurementSet back = decode_measurements(encode_measurements(set));
    ASSERT_EQ(back.size(), set.size());
    for (std::size_t i = 0; i < set.size(); ++i) {
      EXPECT_EQ(back.items[i].type, set.items[i].type);
      EXPECT_EQ(back.items[i].bus, set.items[i].bus);
      EXPECT_DOUBLE_EQ(back.items[i].value, set.items[i].value);
    }
  }
}

TEST(SerializeFuzz, StateRoundTripRandomized) {
  Rng rng(917);
  for (int trial = 0; trial < 50; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 300));
    grid::GridState s(static_cast<grid::BusIndex>(n));
    for (auto& th : s.theta) th = rng.uniform(-3, 3);
    for (auto& v : s.vm) v = rng.uniform(0.5, 1.5);
    const grid::GridState back = decode_state(encode_state(s));
    EXPECT_EQ(back.theta, s.theta);
    EXPECT_EQ(back.vm, s.vm);
  }
}

TEST(SerializeFuzz, EmptyPayloadRejectedCleanly) {
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW((void)decode_bus_states(empty), InvalidInput);
  EXPECT_THROW((void)decode_measurements(empty), InvalidInput);
  EXPECT_THROW((void)decode_state(empty), InvalidInput);
}

}  // namespace
}  // namespace gridse::core
