// Property sweep: the full DSE pipeline across random interconnections,
// seeds and cluster counts — the invariants that must hold for ANY valid
// decomposition, not just the paper's case study.
#include <gtest/gtest.h>


#include "analysis/debug_sync.hpp"
#include "core/dse_driver.hpp"
#include "decomp/sensitivity.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/synthetic.hpp"
#include "mapping/mapper.hpp"
#include "runtime/inproc_comm.hpp"
#include "util/rng.hpp"

namespace gridse::core {
namespace {

struct SweepCase {
  int subsystems;
  int buses_per;
  int clusters;
  std::uint64_t seed;
};

class DseSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(DseSweep, EndToEndInvariantsHold) {
  const SweepCase sc = GetParam();
  const io::SyntheticSpec spec =
      io::make_ring_spec(sc.subsystems, sc.buses_per, sc.subsystems / 4,
                         sc.seed);
  const io::GeneratedCase generated = io::generate_synthetic(spec);
  decomp::Decomposition d =
      decomp::decompose(generated.kase.network, generated.subsystem_of_bus);
  decomp::analyze_sensitivity(generated.kase.network, d, {});

  const grid::PowerFlowResult pf =
      grid::solve_power_flow(generated.kase.network);
  ASSERT_TRUE(pf.converged);

  grid::MeasurementPlan plan;
  for (const decomp::Subsystem& s : d.subsystems) {
    plan.pmu_buses.push_back(s.buses.front());
  }
  grid::MeasurementGenerator gen(generated.kase.network, plan);
  Rng rng(sc.seed * 7 + 1);
  const grid::MeasurementSet meas = gen.generate(pf.state, rng);

  // Mapping invariants.
  mapping::MappingOptions mopts;
  mopts.num_clusters = sc.clusters;
  mopts.seed = sc.seed;
  const mapping::ClusterMapper mapper(d, mopts);
  const mapping::MappingResult map1 = mapper.map_before_step1(0.0);
  const mapping::MappingResult map2 =
      mapper.map_before_step2(0.0, map1.partition.assignment);
  EXPECT_TRUE(graph::is_valid_partition(map1.weighted_graph,
                                        map1.partition.assignment,
                                        sc.clusters));
  EXPECT_TRUE(graph::is_valid_partition(map2.weighted_graph,
                                        map2.partition.assignment,
                                        sc.clusters));
  EXPECT_LE(map1.partition.load_imbalance, 1.6);

  // DSE invariants: convergence, identical state on all ranks, accuracy.
  DseDriver driver(generated.kase.network, d, {});
  runtime::InprocWorld world(sc.clusters);
  analysis::Mutex mutex{"dse_sweep_test::mutex"};
  std::vector<DseResult> results(static_cast<std::size_t>(sc.clusters));
  world.run([&](runtime::Communicator& c) {
    DseResult r = driver.run(c, meas, map1.partition.assignment,
                             map2.partition.assignment);
    analysis::LockGuard lock(mutex);
    results[static_cast<std::size_t>(c.rank())] = std::move(r);
  });
  for (const DseResult& r : results) {
    EXPECT_TRUE(r.all_converged);
    EXPECT_LT(grid::max_vm_error(r.state, results[0].state), 1e-12);
    EXPECT_LT(grid::max_vm_error(r.state, pf.state), 0.03);
    EXPECT_LT(grid::max_angle_error(r.state, pf.state), 0.05);
  }
  // traces cover exactly the subsystem set
  std::vector<int> hosted;
  for (const DseResult& r : results) {
    for (const SubsystemTrace& t : r.traces) {
      hosted.push_back(t.subsystem);
    }
  }
  std::sort(hosted.begin(), hosted.end());
  for (int s = 0; s < sc.subsystems; ++s) {
    EXPECT_EQ(hosted[static_cast<std::size_t>(s)], s);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, DseSweep,
    ::testing::Values(SweepCase{6, 10, 2, 1}, SweepCase{6, 10, 3, 2},
                      SweepCase{8, 8, 4, 3}, SweepCase{12, 14, 3, 4},
                      SweepCase{12, 14, 6, 5}, SweepCase{16, 9, 4, 6}),
    [](const auto& param_info) {
      return "m" + std::to_string(param_info.param.subsystems) + "_b" +
             std::to_string(param_info.param.buses_per) + "_k" +
             std::to_string(param_info.param.clusters) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace gridse::core
