// Concurrency regression tests for the Supervisor and CheckpointStore.
//
// The supervisor is documented as thread-safe — operator actions
// (kill_cluster / announce_rejoin, the consoles) and status probes race the
// cycle thread's begin_cycle/absorb — but until the lock-discipline pass it
// synchronized nothing: states_, epoch_ and the checkpoint map were written
// bare.  These tests drive exactly those races; under the tsan preset they
// fail on any regression, and under every preset they pin down the
// invariants the synchronized implementation must keep.
#include "core/supervisor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace gridse::core {
namespace {

using runtime::RankState;

EstimatorCheckpoint make_ckpt(int subsystem, std::int64_t cycle) {
  EstimatorCheckpoint ckpt;
  ckpt.subsystem = subsystem;
  ckpt.cycle = cycle;
  ckpt.step1_states = {{subsystem, 0.01 * static_cast<double>(cycle), 1.0}};
  return ckpt;
}

TEST(SupervisorStress, OperatorActionsRaceCycleThread) {
  constexpr int kClusters = 8;
  constexpr int kCycles = 200;
  Supervisor sup(kClusters, runtime::RecoveryConfig{});
  std::atomic<bool> done{false};

  // Cycle thread: the begin_cycle -> absorb loop the DseSystem runs.
  std::thread cycle([&] {
    for (int c = 0; c < kCycles; ++c) {
      const std::vector<int> participants = sup.begin_cycle();
      DseRecoveryResult recovery;
      recovery.enabled = true;
      recovery.membership.states.assign(participants.size(),
                                        RankState::kAlive);
      recovery.checkpoints.push_back(make_ckpt(c % 16, c));
      sup.absorb(recovery, participants);
    }
    done.store(true, std::memory_order_release);
  });

  // Operator thread: kills and rejoins clusters while cycles run.
  std::thread operator_console([&] {
    int k = 1;
    while (!done.load(std::memory_order_acquire)) {
      const int cluster = 1 + (k % (kClusters - 1));  // never cluster 0
      sup.kill_cluster(cluster);
      std::this_thread::yield();
      sup.announce_rejoin(cluster);
      ++k;
    }
  });

  // Status probes: the dashboards' read path.
  std::thread monitor([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::vector<RankState> states = sup.cluster_states();
      ASSERT_EQ(states.size(), static_cast<std::size_t>(kClusters));
      for (const RankState s : states) {
        ASSERT_LE(static_cast<int>(s), static_cast<int>(RankState::kRejoining));
      }
      (void)sup.remaps();
      (void)sup.rejoins();
      (void)sup.epoch();
      (void)sup.plan_restore();
      (void)sup.checkpoints().latest(3);
      std::this_thread::yield();
    }
  });

  cycle.join();
  operator_console.join();
  monitor.join();

  EXPECT_EQ(sup.num_clusters(), kClusters);
  EXPECT_EQ(sup.epoch(), kCycles);
  // Cluster 0 was never killed; every participant list contains it, so it
  // must end the run alive.
  EXPECT_EQ(sup.state_of(0), RankState::kAlive);
  // Checkpoints for all 16 subsystems eventually landed.
  EXPECT_EQ(sup.plan_restore().size(), 16u);
  // begin_cycle after the dust settles returns a sorted participant set.
  const std::vector<int> final_participants = sup.begin_cycle();
  EXPECT_TRUE(std::is_sorted(final_participants.begin(),
                             final_participants.end()));
}

TEST(SupervisorStress, CheckpointStoreConcurrentStoreAndQuery) {
  constexpr int kWriters = 4;
  constexpr int kCyclesPerWriter = 300;
  constexpr int kSubsystems = 6;
  CheckpointStore store;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      for (int c = 0; c < kCyclesPerWriter; ++c) {
        // Writers start at staggered subsystems so stores collide.
        for (int s = 0; s < kSubsystems; ++s) {
          store.store(make_ckpt((w + s) % kSubsystems, c));
        }
      }
    });
  }

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (int s = 0; s < kSubsystems; ++s) {
        const std::optional<EstimatorCheckpoint> ckpt = store.latest(s);
        if (ckpt.has_value()) {
          // A returned copy is internally consistent even while writers
          // replace the stored entry.
          ASSERT_EQ(ckpt->subsystem, s);
          ASSERT_GE(ckpt->cycle, 0);
        }
      }
      (void)store.snapshot();
      (void)store.size();
      std::this_thread::yield();
    }
  });

  for (std::thread& t : writers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  reader.join();

  // Newest-wins survived the contention: every subsystem holds the highest
  // cycle any writer produced for it.
  ASSERT_EQ(store.size(), static_cast<std::size_t>(kSubsystems));
  for (int s = 0; s < kSubsystems; ++s) {
    ASSERT_TRUE(store.latest(s).has_value());
    EXPECT_EQ(store.latest(s)->cycle, kCyclesPerWriter - 1);
  }
}

}  // namespace
}  // namespace gridse::core
