// End-to-end payoff test for the convergence-aware partition objective on
// the 10k-bus hierarchical tier: partition the bus coupling graph under
// both objectives, run one full estimation cycle per partition through
// DseSystem, and require the convergence-aware split to (a) report strictly
// lower boundary coupling and predicted Gauss-Newton iteration count, and
// (b) spend no more inner (PCG) iterations end to end. Outer GN counts
// quantize coarsely (every subsystem rounds to a small integer), so the
// inner-iteration total is the sensitive measured signal.
#include <gtest/gtest.h>

#include <utility>

#include "analysis/tsan.hpp"
#include "core/architecture.hpp"
#include "decomp/bus_partition.hpp"
#include "io/synthetic.hpp"

namespace gridse::core {
namespace {

struct ObjectiveRun {
  graph::Partition partition;
  int outer_iterations = 0;
  int inner_iterations = 0;
  double max_vm_error = 0.0;
  double max_angle_error = 0.0;
};

ObjectiveRun run_objective(const io::GeneratedCase& base,
                           graph::PartitionObjective objective) {
  graph::PartitionOptions popts;
  popts.k = 32;
  popts.seed = 7;
  popts.objective = objective;

  ObjectiveRun out;
  out.partition =
      graph::partition(decomp::bus_coupling_graph(base.kase.network), popts);

  io::GeneratedCase gc = base;
  gc.subsystem_of_bus = decomp::partition_buses(base.kase.network, popts);

  SystemConfig cfg;
  // DC-linearized truth keeps the 10k case tractable in a unit test (an AC
  // power flow at this scale dominates the runtime and adds nothing to the
  // objective comparison).
  cfg.truth_mode = TruthMode::kDcLinearized;
  cfg.mapping.num_clusters = 1;
  DseSystem sys(std::move(gc), cfg);
  const CycleReport rep = sys.run_cycle(0.0);
  EXPECT_TRUE(rep.dse.all_converged);
  for (const SubsystemTrace& tr : rep.dse.traces) {
    out.outer_iterations +=
        tr.step1.gauss_newton_iterations + tr.step2.gauss_newton_iterations;
    out.inner_iterations +=
        tr.step1.inner_iterations + tr.step2.inner_iterations;
  }
  out.max_vm_error = rep.max_vm_error;
  out.max_angle_error = rep.max_angle_error;
  return out;
}

TEST(ConvergenceObjective, BeatsEdgeCutOnTenThousandBusTier) {
  if (GRIDSE_TSAN_ENABLED) {
    // Two full 10k-bus cycles under TSan take minutes and exercise no
    // concurrency beyond what partition_stress_test already covers.
    GTEST_SKIP() << "10k e2e comparison runs in non-tsan legs";
  }
  const io::GeneratedCase base = io::interconnection10k();

  const ObjectiveRun cut =
      run_objective(base, graph::PartitionObjective::kEdgeCut);
  const ObjectiveRun conv =
      run_objective(base, graph::PartitionObjective::kConvergenceAware);

  // The objective the partitioner optimized must show up in its report:
  // strictly weaker boundary coupling and a strictly better predicted GN
  // iteration count than the edge-cut-only split.
  EXPECT_LT(conv.partition.boundary_coupling, cut.partition.boundary_coupling);
  EXPECT_LT(conv.partition.expected_gn_iterations,
            cut.partition.expected_gn_iterations);

  // Measured solver effort: outer GN totals tie (quantization), inner PCG
  // iterations must not regress — on this case they improve by ~2-3%.
  EXPECT_LE(conv.outer_iterations, cut.outer_iterations);
  EXPECT_LE(conv.inner_iterations, cut.inner_iterations);

  // Both partitions must deliver an accurate estimate; the objective trades
  // cut weight, not solution quality.
  EXPECT_LT(cut.max_vm_error, 0.05);
  EXPECT_LT(conv.max_vm_error, 0.05);
  EXPECT_LT(cut.max_angle_error, 0.05);
  EXPECT_LT(conv.max_angle_error, 0.05);
}

}  // namespace
}  // namespace gridse::core
