#include "core/local_estimator.hpp"

#include <gtest/gtest.h>

#include "decomp/sensitivity.hpp"
#include "util/error.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/synthetic.hpp"
#include "util/rng.hpp"

namespace gridse::core {
namespace {

class LocalEstimatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    generated_ = io::ieee118_dse();
    d_ = decomp::decompose(generated_.kase.network,
                           generated_.subsystem_of_bus);
    decomp::analyze_sensitivity(generated_.kase.network, d_, {});
    pf_ = grid::solve_power_flow(generated_.kase.network);
    ASSERT_TRUE(pf_.converged);
    grid::MeasurementPlan plan;
    for (const decomp::Subsystem& s : d_.subsystems) {
      plan.pmu_buses.push_back(s.buses.front());
    }
    gen_ = std::make_unique<grid::MeasurementGenerator>(
        generated_.kase.network, plan);
    Rng rng(33);
    meas_ = gen_->generate(pf_.state, rng);
  }

  io::GeneratedCase generated_;
  decomp::Decomposition d_;
  grid::PowerFlowResult pf_;
  std::unique_ptr<grid::MeasurementGenerator> gen_;
  grid::MeasurementSet meas_;
};

TEST_F(LocalEstimatorTest, Step1ConvergesOnEverySubsystem) {
  for (int s = 0; s < d_.num_subsystems(); ++s) {
    LocalEstimator est(generated_.kase.network, d_, s, {});
    const LocalSolveInfo info = est.run_step1(meas_);
    EXPECT_TRUE(info.converged) << "subsystem " << s;
    EXPECT_GT(info.num_measurements, 0u);
    // Step-1 solution accuracy on own buses: internal buses should be close
    // to the truth even before Step 2.
    double max_vm_err = 0.0;
    for (const BusStateRecord& rec : est.step1_all_states()) {
      max_vm_err = std::max(
          max_vm_err, std::abs(rec.vm - pf_.state.vm[static_cast<std::size_t>(
                                            rec.bus)]));
    }
    EXPECT_LT(max_vm_err, 0.05) << "subsystem " << s;
  }
}

TEST_F(LocalEstimatorTest, BoundaryStatesCoverGsBuses) {
  LocalEstimator est(generated_.kase.network, d_, 2, {});
  est.run_step1(meas_);
  const auto records = est.step1_boundary_states();
  EXPECT_EQ(static_cast<int>(records.size()), d_.subsystems[2].gs());
}

TEST_F(LocalEstimatorTest, Step2RequiresStep1) {
  LocalEstimator est(generated_.kase.network, d_, 1, {});
  EXPECT_THROW(est.run_step2(meas_, std::vector<core::BusStateRecord>{}), InternalError);
}

TEST_F(LocalEstimatorTest, Step2ImprovesBoundaryAccuracy) {
  // Aggregate over all subsystems: boundary-bus error after Step 2 with
  // neighbour pseudo measurements must beat Step 1 alone.
  std::vector<std::unique_ptr<LocalEstimator>> estimators;
  for (int s = 0; s < d_.num_subsystems(); ++s) {
    estimators.push_back(std::make_unique<LocalEstimator>(
        generated_.kase.network, d_, s, LocalEstimatorOptions{}));
    estimators.back()->run_step1(meas_);
  }
  double step1_err = 0.0;
  double step2_err = 0.0;
  int boundary_count = 0;
  for (int s = 0; s < d_.num_subsystems(); ++s) {
    std::vector<BusStateRecord> neighbor_states;
    for (const int t : d_.neighbors_of(s)) {
      const auto recs = estimators[static_cast<std::size_t>(t)]
                            ->step1_boundary_states();
      neighbor_states.insert(neighbor_states.end(), recs.begin(), recs.end());
    }
    const LocalSolveInfo info =
        estimators[static_cast<std::size_t>(s)]->run_step2(meas_,
                                                           neighbor_states);
    EXPECT_TRUE(info.converged) << "subsystem " << s;

    const auto before = estimators[static_cast<std::size_t>(s)]->step1_all_states();
    const auto after = estimators[static_cast<std::size_t>(s)]->final_states();
    const auto& boundary = d_.subsystems[static_cast<std::size_t>(s)].boundary_buses;
    for (std::size_t i = 0; i < before.size(); ++i) {
      if (std::find(boundary.begin(), boundary.end(), before[i].bus) ==
          boundary.end()) {
        continue;
      }
      const auto bi = static_cast<std::size_t>(before[i].bus);
      step1_err += std::abs(before[i].vm - pf_.state.vm[bi]) +
                   std::abs(before[i].theta - pf_.state.theta[bi]);
      step2_err += std::abs(after[i].vm - pf_.state.vm[bi]) +
                   std::abs(after[i].theta - pf_.state.theta[bi]);
      ++boundary_count;
    }
  }
  ASSERT_GT(boundary_count, 0);
  EXPECT_LT(step2_err, step1_err);
}

TEST_F(LocalEstimatorTest, AdoptStep1MatchesLocalRun) {
  LocalEstimator a(generated_.kase.network, d_, 3, {});
  a.run_step1(meas_);
  const auto records = a.step1_all_states();

  LocalEstimator b(generated_.kase.network, d_, 3, {});
  b.adopt_step1(records);
  const auto adopted = b.step1_all_states();
  ASSERT_EQ(adopted.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_DOUBLE_EQ(adopted[i].theta, records[i].theta);
    EXPECT_DOUBLE_EQ(adopted[i].vm, records[i].vm);
  }
}

TEST_F(LocalEstimatorTest, AdoptStep1RejectsBadRecords) {
  LocalEstimator est(generated_.kase.network, d_, 3, {});
  // wrong subsystem's buses
  LocalEstimator other(generated_.kase.network, d_, 4, {});
  other.run_step1(meas_);
  EXPECT_THROW(est.adopt_step1(other.step1_all_states()), InvalidInput);
  // incomplete
  LocalEstimator self(generated_.kase.network, d_, 3, {});
  self.run_step1(meas_);
  auto partial = self.step1_all_states();
  partial.pop_back();
  EXPECT_THROW(est.adopt_step1(partial), InvalidInput);
}

TEST_F(LocalEstimatorTest, MissingPmuIsDiagnosed) {
  // Strip all angle measurements: subsystems without the slack bus must
  // refuse to run.
  grid::MeasurementSet no_pmu = meas_;
  no_pmu.items.erase(
      std::remove_if(no_pmu.items.begin(), no_pmu.items.end(),
                     [](const grid::Measurement& m) {
                       return m.type == grid::MeasType::kVAngle;
                     }),
      no_pmu.items.end());
  // subsystem 8 does not contain the global slack (bus 0 is in subsystem 0)
  LocalEstimator est(generated_.kase.network, d_, 8, {});
  EXPECT_THROW(est.run_step1(no_pmu), InvalidInput);
  // subsystem 0 hosts the slack and still works
  LocalEstimator est0(generated_.kase.network, d_, 0, {});
  EXPECT_TRUE(est0.run_step1(no_pmu).converged);
}

TEST_F(LocalEstimatorTest, RobustModeBoundsLocalBadData) {
  // Corrupt one flow measurement inside subsystem 2 and compare the
  // exported boundary states: Huber keeps them close to truth, plain WLS
  // drags them off — gross local errors must not poison the neighbours.
  grid::MeasurementSet bad = meas_;
  const decomp::SubsystemModel local =
      decomp::extract_local(generated_.kase.network, d_, 2);
  std::size_t victim = SIZE_MAX;
  for (std::size_t i = 0; i < bad.items.size(); ++i) {
    const grid::Measurement& m = bad.items[i];
    if (m.type == grid::MeasType::kPFlow &&
        local.local_branch_of_global.count(static_cast<std::size_t>(m.branch)) >
            0) {
      victim = i;
      break;
    }
  }
  ASSERT_NE(victim, SIZE_MAX);
  bad.items[victim].value += 1.0;

  const auto boundary_error = [&](const LocalEstimatorOptions& opts) {
    LocalEstimator est(generated_.kase.network, d_, 2, opts);
    EXPECT_TRUE(est.run_step1(bad).converged);
    double err = 0.0;
    for (const BusStateRecord& rec : est.step1_boundary_states()) {
      const auto bi = static_cast<std::size_t>(rec.bus);
      err += std::abs(rec.vm - pf_.state.vm[bi]) +
             std::abs(rec.theta - pf_.state.theta[bi]);
    }
    return err;
  };
  LocalEstimatorOptions plain;
  LocalEstimatorOptions robust;
  robust.robust = true;
  EXPECT_LT(boundary_error(robust), boundary_error(plain));
}

TEST_F(LocalEstimatorTest, WarmStartConvergesInFewerIterations) {
  LocalEstimator cold(generated_.kase.network, d_, 3, {});
  const LocalSolveInfo cold_info = cold.run_step1(meas_);
  ASSERT_TRUE(cold_info.converged);
  EXPECT_FALSE(cold_info.warm_start);
  ASSERT_GT(cold_info.gauss_newton_iterations, 1);

  // Warm-start a fresh estimator from the cold solution: same measurements,
  // so the first iterate is already (nearly) the fixed point.
  LocalEstimator warm(generated_.kase.network, d_, 3, {});
  warm.set_warm_start(cold.step1_all_states());
  const LocalSolveInfo warm_info = warm.run_step1(meas_);
  EXPECT_TRUE(warm_info.converged);
  EXPECT_TRUE(warm_info.warm_start);
  EXPECT_LT(warm_info.gauss_newton_iterations,
            cold_info.gauss_newton_iterations);

  const auto cold_states = cold.step1_all_states();
  const auto warm_states = warm.step1_all_states();
  ASSERT_EQ(warm_states.size(), cold_states.size());
  for (std::size_t i = 0; i < cold_states.size(); ++i) {
    EXPECT_NEAR(warm_states[i].vm, cold_states[i].vm, 1e-6);
    EXPECT_NEAR(warm_states[i].theta, cold_states[i].theta, 1e-6);
  }
}

TEST_F(LocalEstimatorTest, WarmStartIsOneShot) {
  LocalEstimator cold(generated_.kase.network, d_, 3, {});
  const LocalSolveInfo cold_info = cold.run_step1(meas_);

  LocalEstimator est(generated_.kase.network, d_, 3, {});
  est.set_warm_start(cold.step1_all_states());
  EXPECT_TRUE(est.run_step1(meas_).warm_start);
  // The seed was consumed: the next cycle runs cold again, identical to a
  // never-warmed estimator.
  const LocalSolveInfo second = est.run_step1(meas_);
  EXPECT_FALSE(second.warm_start);
  EXPECT_EQ(second.gauss_newton_iterations,
            cold_info.gauss_newton_iterations);
}

TEST_F(LocalEstimatorTest, CheckpointRoundTripPreservesWarmStartExactly) {
  // serialize → restore → re-solve: the decoded checkpoint must drive the
  // identical Gauss-Newton trajectory as the in-memory records.
  LocalEstimator source(generated_.kase.network, d_, 3, {});
  source.run_step1(meas_);
  EstimatorCheckpoint ckpt;
  ckpt.subsystem = 3;
  ckpt.cycle = 1;
  ckpt.reuse_gain = true;
  ckpt.step1_states = source.final_states();
  ckpt.boundary_states = source.current_boundary_states();
  const EstimatorCheckpoint decoded =
      decode_checkpoint(encode_checkpoint(ckpt));

  LocalEstimator from_memory(generated_.kase.network, d_, 3, {});
  from_memory.set_warm_start(ckpt.step1_states);
  LocalEstimator from_wire(generated_.kase.network, d_, 3, {});
  from_wire.set_warm_start(decoded.step1_states);

  const LocalSolveInfo a = from_memory.run_step1(meas_);
  const LocalSolveInfo b = from_wire.run_step1(meas_);
  EXPECT_TRUE(a.converged);
  EXPECT_TRUE(b.converged);
  EXPECT_EQ(a.gauss_newton_iterations, b.gauss_newton_iterations);
  const auto sa = from_memory.step1_all_states();
  const auto sb = from_wire.step1_all_states();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa[i].theta, sb[i].theta);
    EXPECT_DOUBLE_EQ(sa[i].vm, sb[i].vm);
  }
}

TEST_F(LocalEstimatorTest, WarmStartRejectsForeignOrPartialRecords) {
  LocalEstimator other(generated_.kase.network, d_, 4, {});
  other.run_step1(meas_);
  LocalEstimator est(generated_.kase.network, d_, 3, {});
  EXPECT_THROW(est.set_warm_start(other.step1_all_states()), InvalidInput);

  LocalEstimator self(generated_.kase.network, d_, 3, {});
  self.run_step1(meas_);
  auto partial = self.step1_all_states();
  partial.pop_back();
  EXPECT_THROW(est.set_warm_start(partial), InvalidInput);
}

TEST_F(LocalEstimatorTest, FinalStatesFallBackToStep1) {
  LocalEstimator est(generated_.kase.network, d_, 5, {});
  est.run_step1(meas_);
  const auto finals = est.final_states();
  const auto step1 = est.step1_all_states();
  ASSERT_EQ(finals.size(), step1.size());
  for (std::size_t i = 0; i < finals.size(); ++i) {
    EXPECT_DOUBLE_EQ(finals[i].vm, step1[i].vm);
  }
}

}  // namespace
}  // namespace gridse::core
