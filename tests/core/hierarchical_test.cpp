#include "core/hierarchical.hpp"

#include <gtest/gtest.h>


#include "analysis/debug_sync.hpp"
#include "decomp/sensitivity.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/synthetic.hpp"
#include "runtime/inproc_comm.hpp"
#include "util/rng.hpp"

namespace gridse::core {
namespace {

class HierarchicalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    generated_ = io::ieee118_dse();
    d_ = decomp::decompose(generated_.kase.network,
                           generated_.subsystem_of_bus);
    decomp::analyze_sensitivity(generated_.kase.network, d_, {});
    pf_ = grid::solve_power_flow(generated_.kase.network);
    grid::MeasurementPlan plan;
    for (const decomp::Subsystem& s : d_.subsystems) {
      plan.pmu_buses.push_back(s.buses.front());
    }
    grid::MeasurementGenerator gen(generated_.kase.network, plan);
    Rng rng(77);
    meas_ = gen.generate(pf_.state, rng);
    assignment_ = {0, 0, 0, 1, 1, 1, 2, 2, 2};
  }

  io::GeneratedCase generated_;
  decomp::Decomposition d_;
  grid::PowerFlowResult pf_;
  grid::MeasurementSet meas_;
  std::vector<graph::PartId> assignment_;
};

TEST_F(HierarchicalTest, ConvergesAndMatchesTruth) {
  HierarchicalDriver driver(generated_.kase.network, d_, {});
  runtime::InprocWorld world(3);
  analysis::Mutex mutex{"hierarchical_test::mutex"};
  std::vector<HierarchicalResult> results(3);
  world.run([&](runtime::Communicator& c) {
    HierarchicalResult r = driver.run(c, meas_, assignment_);
    analysis::LockGuard lock(mutex);
    results[static_cast<std::size_t>(c.rank())] = std::move(r);
  });
  for (const HierarchicalResult& r : results) {
    EXPECT_TRUE(r.all_converged);
    EXPECT_LT(grid::max_vm_error(r.state, pf_.state), 0.02);
  }
}

TEST_F(HierarchicalTest, CoordinatorBroadcastsIdenticalState) {
  HierarchicalDriver driver(generated_.kase.network, d_, {});
  runtime::InprocWorld world(3);
  analysis::Mutex mutex{"hierarchical_test::mutex"};
  std::vector<grid::GridState> states(3);
  world.run([&](runtime::Communicator& c) {
    const HierarchicalResult r = driver.run(c, meas_, assignment_);
    analysis::LockGuard lock(mutex);
    states[static_cast<std::size_t>(c.rank())] = r.state;
  });
  for (int r = 1; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(
        grid::max_vm_error(states[0], states[static_cast<std::size_t>(r)]),
        0.0);
  }
}

TEST_F(HierarchicalTest, CoordinationRefinesStepOne) {
  // The coordinator's pass (with tie-line telemetry) must not be worse than
  // the raw assembly of local solutions.
  HierarchicalDriver driver(generated_.kase.network, d_, {});
  runtime::InprocWorld world(3);
  analysis::Mutex mutex{"hierarchical_test::mutex"};
  grid::GridState refined;
  world.run([&](runtime::Communicator& c) {
    const HierarchicalResult r = driver.run(c, meas_, assignment_);
    if (c.rank() == 0) {
      analysis::LockGuard lock(mutex);
      refined = r.state;
    }
  });
  // Compare against a pure Step-1 assembly (DSE driver without Step 2 would
  // give that; approximate it by running local estimators directly).
  double assembled_err = 0.0;
  for (int s = 0; s < d_.num_subsystems(); ++s) {
    LocalEstimator est(generated_.kase.network, d_, s, {});
    est.run_step1(meas_);
    for (const BusStateRecord& rec : est.step1_all_states()) {
      assembled_err = std::max(
          assembled_err,
          std::abs(rec.vm -
                   pf_.state.vm[static_cast<std::size_t>(rec.bus)]));
    }
  }
  EXPECT_LE(grid::max_vm_error(refined, pf_.state), assembled_err * 1.5);
}

TEST_F(HierarchicalTest, SingleRankWorks) {
  HierarchicalDriver driver(generated_.kase.network, d_, {});
  runtime::InprocWorld world(1);
  const std::vector<graph::PartId> all_zero(9, 0);
  world.run([&](runtime::Communicator& c) {
    const HierarchicalResult r = driver.run(c, meas_, all_zero);
    EXPECT_TRUE(r.all_converged);
  });
}

}  // namespace
}  // namespace gridse::core
