#include "core/plan_registry.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace gridse::core {
namespace {

sparse::Csr random_spd(sparse::Index n, Rng& rng) {
  std::vector<sparse::Triplet<double>> t;
  for (sparse::Index i = 0; i < n; ++i) {
    for (sparse::Index j = 0; j <= i; ++j) {
      if (i == j || rng.bernoulli(0.3)) {
        const double v = (i == j) ? rng.uniform(2.0, 4.0) + n * 0.2
                                  : rng.uniform(-0.5, 0.5);
        t.push_back({i, j, v});
        if (i != j) t.push_back({j, i, v});
      }
    }
  }
  return sparse::Csr::from_triplets(n, n, std::move(t));
}

TEST(PlanRegistry, CacheForIsStablePerSubsystem) {
  PlanRegistry registry;
  const auto c0 = registry.cache_for(0);
  const auto c1 = registry.cache_for(1);
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c1, nullptr);
  EXPECT_NE(c0.get(), c1.get());
  EXPECT_EQ(registry.cache_for(0).get(), c0.get());
  EXPECT_EQ(registry.stats().subsystems, 2u);
}

TEST(PlanRegistry, InvalidateDropsOnlyThatSubsystemsPlans) {
  Rng rng(71);
  const sparse::Csr a = random_spd(15, rng);
  PlanRegistry registry;
  const auto plan0 = registry.cache_for(0)->plan_for(a);
  const auto plan1 = registry.cache_for(1)->plan_for(a);

  registry.invalidate(0);
  // Subsystem 0 re-analyzes; subsystem 1 still hits its cached plan.
  EXPECT_NE(registry.cache_for(0)->plan_for(a).get(), plan0.get());
  EXPECT_EQ(registry.cache_for(1)->plan_for(a).get(), plan1.get());
  const auto stats = registry.stats();
  EXPECT_EQ(stats.invalidations, 1u);
}

TEST(PlanRegistry, InvalidateUnknownSubsystemIsANoOp) {
  PlanRegistry registry;
  registry.invalidate(42);
  EXPECT_EQ(registry.stats().subsystems, 0u);
  EXPECT_EQ(registry.stats().invalidations, 0u);
}

TEST(PlanRegistry, InvalidateAllForcesReanalysisEverywhere) {
  Rng rng(72);
  const sparse::Csr a = random_spd(10, rng);
  PlanRegistry registry;
  const auto p0 = registry.cache_for(0)->plan_for(a);
  const auto p1 = registry.cache_for(1)->plan_for(a);
  registry.invalidate_all();
  EXPECT_NE(registry.cache_for(0)->plan_for(a).get(), p0.get());
  EXPECT_NE(registry.cache_for(1)->plan_for(a).get(), p1.get());
  // Caches survive invalidation (only their contents are dropped).
  EXPECT_EQ(registry.stats().subsystems, 2u);
}

TEST(PlanRegistry, ConcurrentLookupsAreSafe) {
  // The driver's worker pool hits the registry from every thread hosting a
  // subsystem; under TSan this verifies the locking.
  PlanRegistry registry;
  Rng seed_rng(73);
  const sparse::Csr a = random_spd(20, seed_rng);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry, &a, t] {
      for (int i = 0; i < 50; ++i) {
        const auto cache = registry.cache_for((t + i) % 6);
        (void)cache->plan_for(a);
        if (i % 10 == 0) registry.invalidate(t % 6);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.stats().subsystems, 6u);
}

}  // namespace
}  // namespace gridse::core
