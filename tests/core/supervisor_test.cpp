#include "core/supervisor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "util/error.hpp"

namespace gridse::core {
namespace {

using runtime::RankState;

EstimatorCheckpoint make_ckpt(int subsystem, std::int64_t cycle) {
  EstimatorCheckpoint ckpt;
  ckpt.subsystem = subsystem;
  ckpt.cycle = cycle;
  ckpt.reuse_gain = true;
  ckpt.step1_states = {{subsystem, 0.1 * cycle, 1.0}};
  ckpt.boundary_states = {{subsystem, 0.1 * cycle, 1.0}};
  return ckpt;
}

TEST(CheckpointStore, NewestWinsPerSubsystem) {
  CheckpointStore store;
  store.store(make_ckpt(2, 1));
  store.store(make_ckpt(2, 3));
  store.store(make_ckpt(2, 2));  // stale: must not replace cycle 3
  store.store(make_ckpt(5, 1));
  ASSERT_EQ(store.size(), 2u);
  ASSERT_TRUE(store.latest(2).has_value());
  EXPECT_EQ(store.latest(2)->cycle, 3);
  EXPECT_EQ(store.latest(5)->cycle, 1);
  EXPECT_FALSE(store.latest(9).has_value());
  const auto snap = store.snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.at(2).cycle, 3);
}

TEST(CheckpointStore, IgnoresInvalidSubsystem) {
  CheckpointStore store;
  store.store(make_ckpt(-1, 4));
  EXPECT_EQ(store.size(), 0u);
}

TEST(CheckpointStore, SpillsToDiskAndReloads) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "gridse_ckpt_spill")
          .string();
  std::filesystem::remove_all(dir);
  {
    CheckpointStore store(dir);
    store.store(make_ckpt(0, 2));
    store.store(make_ckpt(3, 7));
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(dir) / "ckpt_s3.bin"));
  }
  CheckpointStore reloaded(dir);
  EXPECT_EQ(reloaded.load_spilled(), 2u);
  ASSERT_TRUE(reloaded.latest(3).has_value());
  EXPECT_EQ(reloaded.latest(3)->cycle, 7);
  EXPECT_EQ(reloaded.latest(0)->cycle, 2);
  std::filesystem::remove_all(dir);
}

TEST(Supervisor, HealthyLifeCycleKeepsAllParticipants) {
  Supervisor sup(3, runtime::RecoveryConfig{});
  EXPECT_EQ(sup.begin_cycle(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sup.begin_cycle(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sup.remaps(), 0);
  EXPECT_EQ(sup.rejoins(), 0);
  EXPECT_EQ(sup.state_of(1), RankState::kAlive);
}

TEST(Supervisor, KillRemapRejoinStateMachine) {
  runtime::RecoveryConfig config;
  config.rejoin_epoch = 1;
  Supervisor sup(3, config);
  ASSERT_EQ(sup.begin_cycle(), (std::vector<int>{0, 1, 2}));

  sup.kill_cluster(1);
  EXPECT_EQ(sup.state_of(1), RankState::kDead);
  EXPECT_EQ(sup.remaps(), 1);
  EXPECT_EQ(sup.begin_cycle(), (std::vector<int>{0, 2}));

  // announce_rejoin on a live cluster is a no-op; on the dead one it parks
  // the cluster in rejoining until the next epoch.
  sup.announce_rejoin(0);
  EXPECT_EQ(sup.state_of(0), RankState::kAlive);
  sup.announce_rejoin(1);
  EXPECT_EQ(sup.state_of(1), RankState::kRejoining);

  EXPECT_EQ(sup.begin_cycle(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sup.state_of(1), RankState::kAlive);
  EXPECT_EQ(sup.rejoins(), 1);
}

TEST(Supervisor, RejoinEpochDelaysReadmission) {
  runtime::RecoveryConfig config;
  config.rejoin_epoch = 2;
  Supervisor sup(2, config);
  (void)sup.begin_cycle();  // epoch 1
  sup.kill_cluster(1);
  sup.announce_rejoin(1);   // ready at epoch 3
  EXPECT_EQ(sup.begin_cycle(), (std::vector<int>{0}));       // epoch 2
  EXPECT_EQ(sup.begin_cycle(), (std::vector<int>{0, 1}));    // epoch 3
}

TEST(Supervisor, EveryClusterDeadThrows) {
  Supervisor sup(2, runtime::RecoveryConfig{});
  sup.kill_cluster(0);
  sup.kill_cluster(1);
  EXPECT_THROW((void)sup.begin_cycle(), InternalError);
}

TEST(Supervisor, ProjectAssignmentCompactsSurvivors) {
  Supervisor sup(3, runtime::RecoveryConfig{});
  sup.kill_cluster(1);
  const std::vector<int> participants = sup.begin_cycle();
  ASSERT_EQ(participants, (std::vector<int>{0, 2}));
  // Subsystems on clusters 0 and 2 keep their (compacted) hosts; the two
  // orphans of cluster 1 migrate to the least-loaded survivor.
  const std::vector<graph::PartId> cluster_assignment{0, 1, 2, 2, 1, 0};
  std::vector<int> migrated;
  const auto compact =
      sup.project_assignment(cluster_assignment, participants, &migrated);
  ASSERT_EQ(compact.size(), cluster_assignment.size());
  EXPECT_EQ(compact[0], 0);
  EXPECT_EQ(compact[2], 1);
  EXPECT_EQ(compact[3], 1);
  EXPECT_EQ(compact[5], 0);
  EXPECT_EQ(migrated, (std::vector<int>{1, 4}));
  for (const graph::PartId c : compact) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, static_cast<graph::PartId>(participants.size()));
  }
  // Balance: 6 subsystems over 2 survivors, greedy => 3 each.
  const auto count = [&](graph::PartId p) {
    return std::count(compact.begin(), compact.end(), p);
  };
  EXPECT_EQ(count(0), 3);
  EXPECT_EQ(count(1), 3);
}

TEST(Supervisor, AbsorbConfirmsHeartbeatDeaths) {
  Supervisor sup(3, runtime::RecoveryConfig{});
  const std::vector<int> participants = sup.begin_cycle();
  DseRecoveryResult recovery;
  recovery.enabled = true;
  recovery.membership.states = {RankState::kAlive, RankState::kSuspect,
                                RankState::kDead};
  recovery.checkpoints.push_back(make_ckpt(4, 0));
  sup.absorb(recovery, participants);
  EXPECT_EQ(sup.state_of(0), RankState::kAlive);
  EXPECT_EQ(sup.state_of(1), RankState::kAlive);  // suspect is not dead
  EXPECT_EQ(sup.state_of(2), RankState::kDead);
  EXPECT_EQ(sup.remaps(), 1);
  ASSERT_TRUE(sup.checkpoints().latest(4).has_value());
  EXPECT_EQ(sup.plan_restore().size(), 1u);
}

TEST(Supervisor, AbsorbMapsCompactRanksToClusters) {
  // After cluster 1 died, rank 1 of the shrunken world is cluster 2: a
  // heartbeat death of rank 1 must condemn cluster 2, not cluster 1.
  Supervisor sup(3, runtime::RecoveryConfig{});
  sup.kill_cluster(1);
  const std::vector<int> participants = sup.begin_cycle();
  ASSERT_EQ(participants, (std::vector<int>{0, 2}));
  DseRecoveryResult recovery;
  recovery.enabled = true;
  recovery.membership.states = {RankState::kAlive, RankState::kDead};
  sup.absorb(recovery, participants);
  EXPECT_EQ(sup.state_of(2), RankState::kDead);
}

}  // namespace
}  // namespace gridse::core
