#include "io/case_format.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "io/case14.hpp"
#include "util/error.hpp"

namespace gridse::io {
namespace {

TEST(CaseFormat, ParsesMinimalCase) {
  const Case c = parse_case(R"(
case tiny
basemva 100
bus 1 slack 0 0 0 0 1.0
bus 2 pq 50 10 0 0 1.0
branch 1 2 0.01 0.1 0.02
end
)");
  EXPECT_EQ(c.name, "tiny");
  EXPECT_EQ(c.network.num_buses(), 2);
  EXPECT_EQ(c.network.num_branches(), 1u);
  EXPECT_DOUBLE_EQ(c.network.bus(1).p_load, 0.5);
  EXPECT_DOUBLE_EQ(c.network.bus(1).q_load, 0.1);
}

TEST(CaseFormat, CommentsAndBlankLinesIgnored) {
  const Case c = parse_case(R"(
# leading comment
case commented   # trailing comment

basemva 100
bus 1 slack 0 0 0 0 1.0
bus 2 pq 1 0 0 0 1.0   # bus comment
branch 1 2 0 0.1 0
end
)");
  EXPECT_EQ(c.network.num_buses(), 2);
}

TEST(CaseFormat, GenAccumulatesOnBus) {
  const Case c = parse_case(R"(
case gens
basemva 100
bus 1 slack 0 0 0 0 1.0
bus 2 pv 10 0 0 0 1.02
gen 2 30 5
gen 2 20 5
branch 1 2 0 0.1 0
end
)");
  EXPECT_DOUBLE_EQ(c.network.bus(1).p_gen, 0.5);
  EXPECT_DOUBLE_EQ(c.network.bus(1).q_gen, 0.1);
}

TEST(CaseFormat, TapDefaultsAndZeroMeansOne) {
  const Case c = parse_case(R"(
case taps
basemva 100
bus 1 slack 0 0 0 0 1.0
bus 2 pq 1 0 0 0 1.0
bus 3 pq 1 0 0 0 1.0
branch 1 2 0 0.1 0
branch 2 3 0 0.1 0 0
branch 1 3 0 0.1 0 0.95
end
)");
  EXPECT_DOUBLE_EQ(c.network.branch(0).tap, 1.0);
  EXPECT_DOUBLE_EQ(c.network.branch(1).tap, 1.0);
  EXPECT_DOUBLE_EQ(c.network.branch(2).tap, 0.95);
}

TEST(CaseFormat, PhaseShiftParsedInDegrees) {
  const Case c = parse_case(R"(
case shift
basemva 100
bus 1 slack 0 0 0 0 1.0
bus 2 pq 1 0 0 0 1.0
branch 1 2 0 0.1 0 1.0 30
end
)");
  EXPECT_NEAR(c.network.branch(0).phase_shift, 0.5235988, 1e-6);
}

TEST(CaseFormat, ErrorsCarryLineNumbers) {
  try {
    parse_case("case x\nbasemva 100\nbus 1 slack 0 0 0 zero 1.0\nend\n");
    FAIL() << "expected InvalidInput";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(CaseFormat, RejectsMalformedInput) {
  EXPECT_THROW(parse_case("bus 1 slack 0 0 0 0 1.0\n"), InvalidInput);  // no end
  EXPECT_THROW(parse_case("case x\nend\nmore\n"), InvalidInput);
  EXPECT_THROW(parse_case("frob 1 2\nend\n"), InvalidInput);
  EXPECT_THROW(parse_case("case x\nbasemva 0\nend\n"), InvalidInput);
  EXPECT_THROW(parse_case("case x\nbus 1 superbus 0 0 0 0 1\nend\n"),
               InvalidInput);
  // branch to unknown bus
  EXPECT_THROW(parse_case(R"(
case x
bus 1 slack 0 0 0 0 1.0
bus 2 pq 1 0 0 0 1.0
branch 1 9 0 0.1 0
end
)"),
               InvalidInput);
}

TEST(CaseFormat, RejectsDisconnectedNetwork) {
  EXPECT_THROW(parse_case(R"(
case x
basemva 100
bus 1 slack 0 0 0 0 1.0
bus 2 pq 1 0 0 0 1.0
bus 3 pq 1 0 0 0 1.0
branch 1 2 0 0.1 0
end
)"),
               InvalidInput);
}

TEST(CaseFormat, SerializeParseRoundTrip) {
  const Case original = ieee14();
  const Case round = parse_case(serialize_case(original));
  ASSERT_EQ(round.network.num_buses(), original.network.num_buses());
  ASSERT_EQ(round.network.num_branches(), original.network.num_branches());
  for (grid::BusIndex i = 0; i < original.network.num_buses(); ++i) {
    const grid::Bus& a = original.network.bus(i);
    const grid::Bus& b = round.network.bus(i);
    EXPECT_EQ(a.external_id, b.external_id);
    EXPECT_EQ(a.type, b.type);
    EXPECT_NEAR(a.p_load, b.p_load, 1e-9);
    EXPECT_NEAR(a.bs, b.bs, 1e-9);
    EXPECT_NEAR(a.p_gen, b.p_gen, 1e-9);
  }
  for (std::size_t i = 0; i < original.network.num_branches(); ++i) {
    const grid::Branch& a = original.network.branch(i);
    const grid::Branch& b = round.network.branch(i);
    EXPECT_NEAR(a.r, b.r, 1e-9);
    EXPECT_NEAR(a.x, b.x, 1e-9);
    EXPECT_NEAR(a.b_charging, b.b_charging, 1e-9);
    EXPECT_NEAR(a.tap, b.tap, 1e-9);
  }
}

TEST(CaseFormat, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "gridse_case14.txt";
  const Case original = ieee14();
  save_case_file(original, path.string());
  const Case loaded = load_case_file(path.string());
  EXPECT_EQ(loaded.network.num_buses(), original.network.num_buses());
  std::filesystem::remove(path);
}

TEST(CaseFormat, MissingFileThrows) {
  EXPECT_THROW(load_case_file("/nonexistent/path/case.txt"), InvalidInput);
}

TEST(Ieee14, IsTheStandardSystem) {
  const Case c = ieee14();
  EXPECT_EQ(c.name, "ieee14");
  EXPECT_EQ(c.network.num_buses(), 14);
  EXPECT_EQ(c.network.num_branches(), 20u);
  EXPECT_EQ(c.network.slack_bus(), c.network.index_of(1));
  c.network.validate();
}

}  // namespace
}  // namespace gridse::io
