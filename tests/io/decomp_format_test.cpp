#include "io/decomp_format.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "decomp/decomposition.hpp"
#include "io/case14.hpp"
#include "io/synthetic.hpp"
#include "util/error.hpp"

namespace gridse::io {
namespace {

TEST(DecompFormat, ParsesMinimal) {
  const Case c = ieee14();
  std::string text = "decomposition halves\n";
  for (int b = 1; b <= 14; ++b) {
    text += "bus " + std::to_string(b) + " " + (b <= 7 ? "0" : "1") + "\n";
  }
  text += "end\n";
  const auto membership = parse_decomposition(text, c.network);
  ASSERT_EQ(membership.size(), 14u);
  EXPECT_EQ(membership[static_cast<std::size_t>(c.network.index_of(1))], 0);
  EXPECT_EQ(membership[static_cast<std::size_t>(c.network.index_of(14))], 1);
}

TEST(DecompFormat, RoundTripsIeee118Decomposition) {
  const GeneratedCase g = ieee118_dse();
  const std::string text = serialize_decomposition(
      g.kase.network, g.subsystem_of_bus, "ieee118_9way");
  const auto back = parse_decomposition(text, g.kase.network);
  EXPECT_EQ(back, g.subsystem_of_bus);
  // and it still decomposes cleanly
  const decomp::Decomposition d = decomp::decompose(g.kase.network, back);
  EXPECT_EQ(d.num_subsystems(), 9);
}

TEST(DecompFormat, FileRoundTrip) {
  const GeneratedCase g = ieee118_dse();
  const auto path =
      std::filesystem::temp_directory_path() / "gridse_decomp_test.txt";
  save_decomposition_file(path.string(), g.kase.network, g.subsystem_of_bus);
  const auto back = load_decomposition_file(path.string(), g.kase.network);
  EXPECT_EQ(back, g.subsystem_of_bus);
  std::filesystem::remove(path);
}

TEST(DecompFormat, RejectsMalformedInput) {
  const Case c = ieee14();
  // missing end
  EXPECT_THROW(parse_decomposition("bus 1 0\n", c.network), InvalidInput);
  // unknown bus
  EXPECT_THROW(parse_decomposition("bus 99 0\nend\n", c.network),
               InvalidInput);
  // double assignment
  EXPECT_THROW(parse_decomposition("bus 1 0\nbus 1 1\nend\n", c.network),
               InvalidInput);
  // negative subsystem
  EXPECT_THROW(parse_decomposition("bus 1 -2\nend\n", c.network),
               InvalidInput);
  // bad token
  EXPECT_THROW(parse_decomposition("zone 1 0\nend\n", c.network),
               InvalidInput);
  // incomplete coverage
  EXPECT_THROW(parse_decomposition("bus 1 0\nend\n", c.network), InvalidInput);
}

TEST(DecompFormat, MissingFileThrows) {
  const Case c = ieee14();
  EXPECT_THROW(load_decomposition_file("/no/such/file", c.network),
               InvalidInput);
}

}  // namespace
}  // namespace gridse::io
