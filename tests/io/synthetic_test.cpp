#include "io/synthetic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "grid/powerflow.hpp"
#include "util/error.hpp"

namespace gridse::io {
namespace {

TEST(Ieee118Dse, MatchesPaperDecompositionStructure) {
  const GeneratedCase g = ieee118_dse();
  EXPECT_EQ(g.kase.network.num_buses(), 118);
  EXPECT_EQ(g.num_subsystems(), 9);
  // Table I bus counts
  std::vector<int> counts(9, 0);
  for (const int s : g.subsystem_of_bus) ++counts[static_cast<std::size_t>(s)];
  EXPECT_EQ(counts, (std::vector<int>{14, 13, 13, 13, 13, 12, 14, 13, 13}));
  // Figure 3 edges
  EXPECT_EQ(g.decomposition_edges.size(), 12u);
}

TEST(Ieee118Dse, DeterministicPerSeed) {
  const GeneratedCase a = ieee118_dse(7);
  const GeneratedCase b = ieee118_dse(7);
  ASSERT_EQ(a.kase.network.num_branches(), b.kase.network.num_branches());
  for (std::size_t i = 0; i < a.kase.network.num_branches(); ++i) {
    EXPECT_DOUBLE_EQ(a.kase.network.branch(i).x, b.kase.network.branch(i).x);
  }
  const GeneratedCase c = ieee118_dse(8);
  bool any_differs = false;
  for (std::size_t i = 0;
       i < std::min(a.kase.network.num_branches(), c.kase.network.num_branches());
       ++i) {
    any_differs |= a.kase.network.branch(i).x != c.kase.network.branch(i).x;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Synthetic, TieLinesOnlyBetweenDeclaredNeighbors) {
  const GeneratedCase g = ieee118_dse();
  std::set<std::pair<int, int>> allowed;
  for (const auto& [a, b] : g.decomposition_edges) {
    allowed.insert(std::minmax(a, b));
  }
  for (std::size_t bi = 0; bi < g.kase.network.num_branches(); ++bi) {
    const grid::Branch& br = g.kase.network.branch(bi);
    const int sa = g.subsystem_of_bus[static_cast<std::size_t>(br.from)];
    const int sb = g.subsystem_of_bus[static_cast<std::size_t>(br.to)];
    if (sa != sb) {
      EXPECT_TRUE(allowed.count(std::minmax(sa, sb)) > 0)
          << "tie between " << sa << " and " << sb << " not in Fig. 3";
    }
  }
}

TEST(Synthetic, MeshSpecShape) {
  const SyntheticSpec spec = make_mesh_spec(3, 4, 10);
  EXPECT_EQ(spec.subsystem_sizes.size(), 12u);
  // 3x4 mesh: 3*3 horizontal + 2*4 vertical = 17 edges
  EXPECT_EQ(spec.decomposition_edges.size(), 17u);
  const GeneratedCase g = generate_synthetic(spec);
  EXPECT_EQ(g.kase.network.num_buses(), 120);
  g.kase.network.validate();
}

TEST(Synthetic, RingSpecShape) {
  const SyntheticSpec spec = make_ring_spec(8, 6, 3);
  EXPECT_EQ(spec.subsystem_sizes.size(), 8u);
  EXPECT_EQ(spec.decomposition_edges.size(), 8u + 3u);
  const GeneratedCase g = generate_synthetic(spec);
  g.kase.network.validate();
}

class SyntheticPowerFlowSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SyntheticPowerFlowSweep, GeneratedCasesSolve) {
  const auto [m, buses] = GetParam();
  const SyntheticSpec spec = make_ring_spec(m, buses, m / 3);
  const GeneratedCase g = generate_synthetic(spec);
  const grid::PowerFlowResult pf = grid::solve_power_flow(g.kase.network);
  EXPECT_TRUE(pf.converged) << "m=" << m << " buses=" << buses;
  for (const double v : pf.state.vm) {
    EXPECT_GT(v, 0.75);
    EXPECT_LT(v, 1.2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SyntheticPowerFlowSweep,
                         ::testing::Combine(::testing::Values(3, 6, 12),
                                            ::testing::Values(8, 14, 25)),
                         [](const auto& param_info) {
                           return "m" + std::to_string(std::get<0>(param_info.param)) +
                                  "_b" + std::to_string(std::get<1>(param_info.param));
                         });

TEST(Wecc37, MatchesThePapersFutureWorkScenario) {
  const GeneratedCase g = wecc37();
  EXPECT_EQ(g.num_subsystems(), 37);  // "This system has 37 balancing
                                      //  authorities" (paper §VI)
  g.kase.network.validate();
  EXPECT_EQ(g.kase.name, "wecc37");
  // Uneven subsystem sizes in the 8..24 range.
  std::vector<int> counts(37, 0);
  for (const int s : g.subsystem_of_bus) ++counts[static_cast<std::size_t>(s)];
  int smallest = 1000;
  int largest = 0;
  for (const int c : counts) {
    smallest = std::min(smallest, c);
    largest = std::max(largest, c);
  }
  EXPECT_GE(smallest, 8);
  EXPECT_LE(largest, 24);
  EXPECT_GT(largest, smallest);  // uneven by construction
  const grid::PowerFlowResult pf = grid::solve_power_flow(g.kase.network);
  EXPECT_TRUE(pf.converged);
}

TEST(Wecc37, DeterministicPerSeed) {
  const GeneratedCase a = wecc37(5);
  const GeneratedCase b = wecc37(5);
  EXPECT_EQ(a.kase.network.num_buses(), b.kase.network.num_buses());
  EXPECT_EQ(a.kase.network.num_branches(), b.kase.network.num_branches());
}

TEST(Synthetic, RejectsBadSpecs) {
  SyntheticSpec empty;
  EXPECT_THROW(generate_synthetic(empty), InvalidInput);

  SyntheticSpec tiny;
  tiny.subsystem_sizes = {1};
  EXPECT_THROW(generate_synthetic(tiny), InvalidInput);

  SyntheticSpec bad_edge;
  bad_edge.subsystem_sizes = {5, 5};
  bad_edge.decomposition_edges = {{0, 7}};
  EXPECT_THROW(generate_synthetic(bad_edge), InvalidInput);

  EXPECT_THROW(make_mesh_spec(0, 2, 5), InvalidInput);
  EXPECT_THROW(make_ring_spec(2, 5, 0), InvalidInput);
}

TEST(Synthetic, SubsystemMembershipMatchesSpecSizes) {
  const SyntheticSpec spec = make_mesh_spec(2, 2, 7);
  const GeneratedCase g = generate_synthetic(spec);
  std::vector<int> counts(4, 0);
  for (const int s : g.subsystem_of_bus) ++counts[static_cast<std::size_t>(s)];
  EXPECT_EQ(counts, (std::vector<int>{7, 7, 7, 7}));
}

}  // namespace
}  // namespace gridse::io
