#include "io/matpower.hpp"

#include <gtest/gtest.h>

#include "grid/powerflow.hpp"
#include "io/case14.hpp"
#include "util/error.hpp"

namespace gridse::io {
namespace {

/// The standard WSCC 9-bus case in MATPOWER format (public data).
const char* kCase9 = R"(
function mpc = case9
mpc.version = '2';
mpc.baseMVA = 100;

%% bus data
%	bus_i	type	Pd	Qd	Gs	Bs	area	Vm	Va	baseKV	zone	Vmax	Vmin
mpc.bus = [
	1	3	0	0	0	0	1	1	0	345	1	1.1	0.9;
	2	2	0	0	0	0	1	1	0	345	1	1.1	0.9;
	3	2	0	0	0	0	1	1	0	345	1	1.1	0.9;
	4	1	0	0	0	0	1	1	0	345	1	1.1	0.9;
	5	1	90	30	0	0	1	1	0	345	1	1.1	0.9;
	6	1	0	0	0	0	1	1	0	345	1	1.1	0.9;
	7	1	100	35	0	0	1	1	0	345	1	1.1	0.9;
	8	1	0	0	0	0	1	1	0	345	1	1.1	0.9;
	9	1	125	50	0	0	1	1	0	345	1	1.1	0.9;
];

%% generator data
mpc.gen = [
	1	72.3	27.03	300	-300	1.04	100	1	250	10;
	2	163	6.54	300	-300	1.025	100	1	300	10;
	3	85	-10.95	300	-300	1.025	100	1	270	10;
];

%% branch data
mpc.branch = [
	1	4	0	0.0576	0	250	250	250	0	0	1	-360	360;
	4	5	0.017	0.092	0.158	250	250	250	0	0	1	-360	360;
	5	6	0.039	0.17	0.358	150	150	150	0	0	1	-360	360;
	3	6	0	0.0586	0	300	300	300	0	0	1	-360	360;
	6	7	0.0119	0.1008	0.209	150	150	150	0	0	1	-360	360;
	7	8	0.0085	0.072	0.149	250	250	250	0	0	1	-360	360;
	8	2	0	0.0625	0	250	250	250	0	0	1	-360	360;
	8	9	0.032	0.161	0.306	250	250	250	0	0	1	-360	360;
	9	4	0.01	0.085	0.176	250	250	250	0	0	1	-360	360;
];
)";

TEST(Matpower, ParsesCase9) {
  const Case c = parse_matpower(kCase9);
  EXPECT_EQ(c.name, "case9");
  EXPECT_DOUBLE_EQ(c.base_mva, 100.0);
  EXPECT_EQ(c.network.num_buses(), 9);
  EXPECT_EQ(c.network.num_branches(), 9u);
  EXPECT_EQ(c.network.slack_bus(), c.network.index_of(1));
  // gen VG overrides slack/PV setpoints
  EXPECT_DOUBLE_EQ(c.network.bus(c.network.index_of(2)).v_setpoint, 1.025);
  // RATE_A becomes a p.u. rating
  EXPECT_DOUBLE_EQ(c.network.branch(0).rating, 2.5);
  // loads in per unit
  EXPECT_DOUBLE_EQ(c.network.bus(c.network.index_of(5)).p_load, 0.9);
}

TEST(Matpower, Case9PowerFlowIsPhysicallyConsistent) {
  const Case c = parse_matpower(kCase9);
  const grid::PowerFlowResult pf = grid::solve_power_flow(c.network);
  ASSERT_TRUE(pf.converged);
  // PV/slack buses hold their generator setpoints.
  EXPECT_DOUBLE_EQ(pf.state.vm[static_cast<std::size_t>(c.network.index_of(1))],
                   1.04);
  EXPECT_DOUBLE_EQ(pf.state.vm[static_cast<std::size_t>(c.network.index_of(2))],
                   1.025);
  // All voltages inside the case's 0.9..1.1 limits, comfortably.
  for (const double v : pf.state.vm) {
    EXPECT_GT(v, 0.95);
    EXPECT_LT(v, 1.06);
  }
  // The heaviest load (125 MW at bus 9) pulls the lowest voltage.
  double vmin = 2.0;
  grid::BusIndex argmin = -1;
  for (grid::BusIndex b = 0; b < c.network.num_buses(); ++b) {
    if (pf.state.vm[static_cast<std::size_t>(b)] < vmin) {
      vmin = pf.state.vm[static_cast<std::size_t>(b)];
      argmin = b;
    }
  }
  EXPECT_EQ(argmin, c.network.index_of(9));
  // System losses: generation 72.3+163+85 = 320.3 MW vs 315 MW load; the
  // slack re-balances, so recompute losses from the solved injections.
  const auto ybus = grid::build_ybus(c.network);
  const auto [p, q] = grid::bus_injections(ybus, pf.state);
  double loss = 0.0;
  for (const double pi : p) loss += pi;
  EXPECT_GT(loss, 0.0);
  EXPECT_LT(loss, 0.10);  // well under 10 MW on a 315 MW system
}

TEST(Matpower, OutOfServiceElementsDropped) {
  std::string text = kCase9;
  // branch 5-6 out of service (column 11 = 0)
  const auto pos = text.find("5	6	0.039	0.17	0.358	150	150	150	0	0	1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("5	6	0.039	0.17	0.358	150	150	150	0	0	1").size(),
               "5	6	0.039	0.17	0.358	150	150	150	0	0	0");
  const Case c = parse_matpower(text);
  EXPECT_EQ(c.network.num_branches(), 8u);
}

TEST(Matpower, OutOfServiceGeneratorIgnored) {
  std::string text = kCase9;
  const auto pos = text.find("3	85	-10.95	300	-300	1.025	100	1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("3	85	-10.95	300	-300	1.025	100	1").size(),
               "3	85	-10.95	300	-300	1.025	100	0");
  const Case c = parse_matpower(text);
  EXPECT_DOUBLE_EQ(c.network.bus(c.network.index_of(3)).p_gen, 0.0);
}

TEST(Matpower, CommentsAndCommasTolerated) {
  const Case c = parse_matpower(R"(
mpc.baseMVA = 100; % the base
mpc.bus = [
  1, 3, 0, 0, 0, 0, 1, 1.0, 0, 100, 1, 1.1, 0.9;  % slack
  2, 1, 10, 2, 0, 0, 1, 1.0, 0, 100, 1, 1.1, 0.9;
];
mpc.gen = [ 1 20 0 99 -99 1.02 100 1 99 0; ];
mpc.branch = [ 1 2 0.01 0.1 0.02 0 0 0 0 0 1 -360 360; ];
)");
  EXPECT_EQ(c.network.num_buses(), 2);
  EXPECT_DOUBLE_EQ(c.network.bus(0).v_setpoint, 1.02);
  EXPECT_DOUBLE_EQ(c.network.branch(0).rating, 0.0);  // RATE_A 0 = unlimited
}

TEST(Matpower, RejectsMalformedInput) {
  EXPECT_THROW(parse_matpower("mpc.bus = [1 3];"), InvalidInput);  // no baseMVA
  EXPECT_THROW(parse_matpower("mpc.baseMVA = 0;\nmpc.bus = [];\n"
                              "mpc.branch = [];"),
               InvalidInput);
  EXPECT_THROW(parse_matpower("mpc.baseMVA = 100;"), InvalidInput);  // no bus
  // isolated bus type 4
  EXPECT_THROW(parse_matpower(R"(
mpc.baseMVA = 100;
mpc.bus = [ 1 4 0 0 0 0 1 1 0 100 1 1.1 0.9; ];
mpc.branch = [];
)"),
               InvalidInput);
  // non-numeric garbage in a matrix
  EXPECT_THROW(parse_matpower(R"(
mpc.baseMVA = 100;
mpc.bus = [ 1 three 0 0 0 0 1 1 0 100 1 1.1 0.9; ];
mpc.branch = [];
)"),
               InvalidInput);
}

TEST(Matpower, MissingFileThrows) {
  EXPECT_THROW(load_matpower_file("/no/such/case.m"), InvalidInput);
}

}  // namespace
}  // namespace gridse::io
