// Golden-fingerprint tests for the hierarchical interconnection generator:
// the 10k tier's exact shape (bus/branch/measurement counts, degree
// histogram) is pinned so any change to the generator's sampling order,
// topology recipe, or measurement plan shows up as a diff here instead of
// as silently shifted bench baselines. Plus structural checks on the
// tier presets and the per-edge tie-line override.
#include "io/synthetic.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "grid/meas_generator.hpp"
#include "util/error.hpp"

namespace gridse::io {
namespace {

TEST(HierarchicalGolden, Tier10kFingerprint) {
  const GeneratedCase gc = interconnection10k();
  const grid::Network& net = gc.kase.network;
  EXPECT_EQ(net.num_buses(), 9490);
  EXPECT_EQ(net.num_branches(), 14793u);
  EXPECT_EQ(gc.num_subsystems(), 32);
  EXPECT_EQ(gc.decomposition_edges.size(), 52u);
  EXPECT_EQ(gc.kase.name, "hier_r4_a8_n9490");

  // Degree histogram, pinned exactly: a resampled topology cannot match it
  // by accident.
  std::map<int, int> hist;
  for (grid::BusIndex b = 0; b < net.num_buses(); ++b) {
    ++hist[static_cast<int>(net.branches_at(b).size())];
  }
  const std::map<int, int> expected = {
      {1, 1573}, {2, 2427}, {3, 2285}, {4, 1483}, {5, 809},
      {6, 471},  {7, 232},  {8, 98},   {9, 65},   {10, 26},
      {11, 11},  {12, 5},   {13, 3},   {14, 2},
  };
  EXPECT_EQ(hist, expected);

  // Measurement skeleton sizes at full and reduced SCADA flow coverage.
  grid::MeasurementPlan plan;
  const grid::GridState flat(net.num_buses());
  EXPECT_EQ(grid::MeasurementGenerator(net, plan)
                .generate_noiseless(flat)
                .items.size(),
            87642u);
  plan.flow_coverage = 0.6;
  EXPECT_EQ(grid::MeasurementGenerator(net, plan)
                .generate_noiseless(flat)
                .items.size(),
            64174u);
}

TEST(HierarchicalGolden, TierPresetsLandNearTargets) {
  const GeneratedCase g10 = interconnection10k();
  EXPECT_NEAR(g10.kase.network.num_buses(), 10000, 1500);
  const GeneratedCase g30 = interconnection30k();
  EXPECT_NEAR(g30.kase.network.num_buses(), 30000, 4500);
  EXPECT_EQ(g30.num_subsystems(), 60);
  // Validate (connectivity, slack, impedances) without paying for a power
  // flow; the 100k tier is covered by bench_partitioner_scaling.
  g30.kase.network.validate();
}

TEST(HierarchicalGolden, RegionOfSubsystemIsRegionMajor) {
  HierarchicalSpec h;
  h.regions = 3;
  h.areas_per_region = 4;
  h.buses_per_area = 20;
  const GeneratedCase gc = generate_hierarchical(h);
  ASSERT_EQ(gc.region_of_subsystem.size(), 12u);
  for (int s = 0; s < 12; ++s) {
    EXPECT_EQ(gc.region_of_subsystem[static_cast<std::size_t>(s)], s / 4);
  }
  // Every area must host at least one bus of its own subsystem id.
  std::set<int> seen(gc.subsystem_of_bus.begin(), gc.subsystem_of_bus.end());
  EXPECT_EQ(seen.size(), 12u);
}

TEST(HierarchicalGolden, InterRegionCorridorsCarryMoreTies) {
  HierarchicalSpec h;
  h.regions = 3;
  h.areas_per_region = 4;
  h.buses_per_area = 20;
  h.tie_lines_intra = 2;
  h.tie_lines_inter = 5;
  const SyntheticSpec spec = make_hierarchical_spec(h);
  ASSERT_EQ(spec.tie_lines_by_edge.size(), spec.decomposition_edges.size());
  int intra = 0;
  int inter = 0;
  for (std::size_t e = 0; e < spec.decomposition_edges.size(); ++e) {
    const auto& [a, b] = spec.decomposition_edges[e];
    const bool same_region = a / h.areas_per_region == b / h.areas_per_region;
    EXPECT_EQ(spec.tie_lines_by_edge[e], same_region ? 2 : 5);
    (same_region ? intra : inter) += 1;
  }
  EXPECT_GT(intra, 0);
  EXPECT_GT(inter, 0);
}

TEST(HierarchicalGolden, TieLinesByEdgeIsValidated) {
  SyntheticSpec spec;
  spec.subsystem_sizes = {6, 6};
  spec.decomposition_edges = {{0, 1}};
  spec.tie_lines_by_edge = {2, 2};  // wrong length
  EXPECT_THROW(generate_synthetic(spec), InvalidInput);
  spec.tie_lines_by_edge = {0};  // a decomposition edge needs >= 1 tie
  EXPECT_THROW(generate_synthetic(spec), InvalidInput);
  spec.tie_lines_by_edge = {3};
  const GeneratedCase gc = generate_synthetic(spec);
  EXPECT_EQ(gc.decomposition_edges.size(), 1u);
}

TEST(HierarchicalGolden, SameSeedSameCaseDifferentSeedDifferentCase) {
  const GeneratedCase a = interconnection10k(123);
  const GeneratedCase b = interconnection10k(123);
  EXPECT_EQ(a.kase.network.num_buses(), b.kase.network.num_buses());
  EXPECT_EQ(a.subsystem_of_bus, b.subsystem_of_bus);
  const GeneratedCase c = interconnection10k(124);
  EXPECT_NE(a.subsystem_of_bus, c.subsystem_of_bus);
}

}  // namespace
}  // namespace gridse::io
