#include "sparse/vector_ops.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace gridse::sparse {
namespace {

TEST(VectorOps, Dot) {
  const Vec a{1, 2, 3};
  const Vec b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(VectorOps, DotSizeMismatchThrows) {
  const Vec a{1, 2};
  const Vec b{1};
  EXPECT_THROW(dot(a, b), InternalError);
}

TEST(VectorOps, Norm2) {
  const Vec a{3, 4};
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm2(Vec{}), 0.0);
}

TEST(VectorOps, NormInf) {
  const Vec a{-7, 3, 5};
  EXPECT_DOUBLE_EQ(norm_inf(a), 7.0);
}

TEST(VectorOps, Axpy) {
  const Vec x{1, 2};
  Vec y{10, 20};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (Vec{12, 24}));
}

TEST(VectorOps, Scale) {
  Vec x{1, -2, 3};
  scale(-2.0, x);
  EXPECT_EQ(x, (Vec{-2, 4, -6}));
}

TEST(VectorOps, CopyAndZero) {
  const Vec x{1, 2, 3};
  Vec y(3);
  copy(x, y);
  EXPECT_EQ(y, x);
  set_zero(y);
  EXPECT_EQ(y, (Vec{0, 0, 0}));
}

TEST(VectorOps, Subtract) {
  EXPECT_EQ(subtract(Vec{5, 7}, Vec{2, 3}), (Vec{3, 4}));
}

}  // namespace
}  // namespace gridse::sparse
