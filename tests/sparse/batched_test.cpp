#include "sparse/batched.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sparse/ldlt.hpp"
#include "util/rng.hpp"

namespace gridse::sparse {
namespace {

Csr random_spd(Index n, Rng& rng, double density = 0.25) {
  std::vector<Triplet<double>> t;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j <= i; ++j) {
      if (i == j || rng.bernoulli(density)) {
        const double v = (i == j) ? rng.uniform(2.0, 4.0) + n * 0.2
                                  : rng.uniform(-0.5, 0.5);
        t.push_back({i, j, v});
        if (i != j) t.push_back({j, i, v});
      }
    }
  }
  return Csr::from_triplets(n, n, std::move(t));
}

std::shared_ptr<const SymbolicPlan> plan_of(const Csr& a) {
  return std::make_shared<const SymbolicPlan>(SymbolicPlan::analyze(a));
}

TEST(BatchedLdlt, HeterogeneousLanesMatchSequentialSolves) {
  Rng rng(31);
  // Deliberately different sizes and densities per lane.
  const std::vector<Csr> mats = {random_spd(8, rng, 0.5),
                                 random_spd(40, rng, 0.15),
                                 random_spd(23, rng, 0.3)};
  BatchedLdlt batched;
  std::vector<std::shared_ptr<const SymbolicPlan>> plans;
  std::vector<const Csr*> ptrs;
  for (const Csr& m : mats) {
    plans.push_back(plan_of(m));
    ptrs.push_back(&m);
  }
  batched.set_lanes(plans);
  ASSERT_EQ(batched.lanes(), mats.size());
  batched.factorize(ptrs);

  for (std::size_t lane = 0; lane < mats.size(); ++lane) {
    const auto n = static_cast<std::size_t>(mats[lane].rows());
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.uniform(-2, 2);
    std::vector<double> b(n);
    mats[lane].multiply(x_true, b);

    std::vector<double> x(n);
    batched.solve_lane(lane, b, x);

    SparseLdlt ref;
    ref.factorize(mats[lane]);
    const auto x_ref = ref.solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_ref[i], 1e-10) << "lane " << lane;
      EXPECT_NEAR(x[i], x_true[i], 1e-8) << "lane " << lane;
    }
  }
}

TEST(BatchedLdlt, NullLaneKeepsPreviousFactor) {
  Rng rng(32);
  const Csr a0 = random_spd(12, rng);
  const Csr a1 = random_spd(12, rng);
  BatchedLdlt batched;
  batched.set_lanes({plan_of(a0), plan_of(a1)});
  batched.factorize(std::vector<const Csr*>{&a0, &a1});

  std::vector<double> b(12);
  for (auto& v : b) v = rng.uniform(-1, 1);
  std::vector<double> x_before(12);
  batched.solve_lane(0, b, x_before);

  // Sweep with lane 0 inactive: its factor must be untouched even though
  // lane 1 refactors.
  batched.factorize(std::vector<const Csr*>{nullptr, &a1});
  std::vector<double> x_after(12);
  batched.solve_lane(0, b, x_after);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_DOUBLE_EQ(x_before[i], x_after[i]);
  }
}

TEST(BatchedLdlt, RepeatedSetLanesWithSamePlansIsStable) {
  Rng rng(33);
  const Csr a = random_spd(20, rng);
  const auto plan = plan_of(a);
  BatchedLdlt batched;
  batched.set_lanes({plan});
  batched.factorize(std::vector<const Csr*>{&a});
  const std::size_t nnz = batched.factor_nnz();

  std::vector<double> b(20);
  for (auto& v : b) v = rng.uniform(-1, 1);
  std::vector<double> x_before(20);
  batched.solve_lane(0, b, x_before);

  // Same plan pointer: the arenas — including the current factor — survive.
  batched.set_lanes({plan});
  EXPECT_EQ(batched.factor_nnz(), nnz);
  std::vector<double> x_after(20);
  batched.solve_lane(0, b, x_after);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_DOUBLE_EQ(x_before[i], x_after[i]);
  }
}

TEST(BatchedLdlt, LaneCountMismatchThrows) {
  Rng rng(34);
  const Csr a = random_spd(5, rng);
  BatchedLdlt batched;
  batched.set_lanes({plan_of(a)});
  EXPECT_THROW(
      batched.factorize(std::vector<const Csr*>{&a, &a}), InternalError);
}

}  // namespace
}  // namespace gridse::sparse
