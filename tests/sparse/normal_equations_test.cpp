#include "sparse/normal_equations.hpp"

#include <gtest/gtest.h>

#include "sparse/dense.hpp"
#include "util/rng.hpp"

namespace gridse::sparse {
namespace {

Csr random_tall(Index rows, Index cols, Rng& rng) {
  std::vector<Triplet<double>> t;
  for (Index r = 0; r < rows; ++r) {
    // a few entries per row, like a measurement Jacobian
    const int k = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < k; ++i) {
      t.push_back({r, static_cast<Index>(rng.uniform_int(0, cols - 1)),
                   rng.uniform(-2, 2)});
    }
  }
  return Csr::from_triplets(rows, cols, std::move(t));
}

TEST(NormalEquations, MatchesDenseHtWH) {
  Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    const Index m = static_cast<Index>(rng.uniform_int(5, 40));
    const Index n = static_cast<Index>(rng.uniform_int(2, 10));
    const Csr h = random_tall(m, n, rng);
    std::vector<double> w(static_cast<std::size_t>(m));
    for (auto& v : w) v = rng.uniform(0.5, 10.0);

    const Csr g = normal_matrix(h, w);
    ASSERT_EQ(g.rows(), n);
    ASSERT_EQ(g.cols(), n);

    const auto hd = h.to_dense();
    for (Index i = 0; i < n; ++i) {
      for (Index j = 0; j < n; ++j) {
        double want = 0.0;
        for (Index r = 0; r < m; ++r) {
          want += w[static_cast<std::size_t>(r)] *
                  hd[static_cast<std::size_t>(r) * n + i] *
                  hd[static_cast<std::size_t>(r) * n + j];
        }
        EXPECT_NEAR(g.value_at(i, j), want, 1e-10);
      }
    }
  }
}

TEST(NormalEquations, GainMatrixIsSymmetric) {
  Rng rng(19);
  const Csr h = random_tall(30, 8, rng);
  std::vector<double> w(30, 2.0);
  const Csr g = normal_matrix(h, w);
  for (Index i = 0; i < 8; ++i) {
    for (Index j = 0; j < 8; ++j) {
      EXPECT_NEAR(g.value_at(i, j), g.value_at(j, i), 1e-12);
    }
  }
}

TEST(NormalEquations, RhsMatchesDense) {
  Rng rng(23);
  const Csr h = random_tall(20, 6, rng);
  std::vector<double> w(20);
  std::vector<double> r(20);
  for (auto& v : w) v = rng.uniform(0.5, 4.0);
  for (auto& v : r) v = rng.uniform(-1, 1);
  const auto rhs = normal_rhs(h, w, r);
  const auto hd = h.to_dense();
  for (Index c = 0; c < 6; ++c) {
    double want = 0.0;
    for (Index row = 0; row < 20; ++row) {
      want += hd[static_cast<std::size_t>(row) * 6 + c] *
              w[static_cast<std::size_t>(row)] * r[static_cast<std::size_t>(row)];
    }
    EXPECT_NEAR(rhs[static_cast<std::size_t>(c)], want, 1e-10);
  }
}

TEST(NormalEquations, WeightSizeMismatchThrows) {
  Rng rng(29);
  const Csr h = random_tall(10, 4, rng);
  std::vector<double> w(9, 1.0);
  EXPECT_THROW(normal_matrix(h, w), InternalError);
}

TEST(NormalEquations, AddDiagonal) {
  const Csr g = Csr::from_triplets(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}});
  const Csr g2 = add_diagonal(g, 0.5);
  EXPECT_DOUBLE_EQ(g2.value_at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(g2.value_at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g2.value_at(1, 1), 0.5);  // structurally absent before
}

}  // namespace
}  // namespace gridse::sparse
