#include "sparse/symbolic_plan.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sparse/ldlt.hpp"
#include "sparse/preconditioner.hpp"
#include "util/rng.hpp"

namespace gridse::sparse {
namespace {

Csr random_spd(Index n, Rng& rng, double density = 0.2) {
  std::vector<Triplet<double>> t;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j <= i; ++j) {
      if (i == j || rng.bernoulli(density)) {
        const double v = (i == j) ? rng.uniform(2.0, 4.0) + n * 0.2
                                  : rng.uniform(-0.5, 0.5);
        t.push_back({i, j, v});
        if (i != j) t.push_back({j, i, v});
      }
    }
  }
  return Csr::from_triplets(n, n, std::move(t));
}

/// Same pattern as `a`, different values.
Csr revalue(const Csr& a, Rng& rng) {
  std::vector<Triplet<double>> t;
  for (Index r = 0; r < a.rows(); ++r) {
    const auto [b, e] = a.row_range(r);
    for (Index k = b; k < e; ++k) {
      const Index c = a.col_idx()[static_cast<std::size_t>(k)];
      if (c > r) continue;
      const double v = (r == c) ? rng.uniform(3.0, 6.0) + a.rows() * 0.2
                                : rng.uniform(-0.4, 0.4);
      t.push_back({r, c, v});
      if (r != c) t.push_back({c, r, v});
    }
  }
  return Csr::from_triplets(a.rows(), a.cols(), std::move(t));
}

TEST(PatternFingerprint, SamePatternDifferentValuesMatch) {
  Rng rng(11);
  const Csr a = random_spd(30, rng);
  const Csr b = revalue(a, rng);
  EXPECT_EQ(fingerprint_pattern(a), fingerprint_pattern(b));
}

TEST(PatternFingerprint, PatternChangeBreaksMatch) {
  Rng rng(12);
  const Csr a = random_spd(20, rng);
  // Add one off-diagonal entry the original does not have.
  std::vector<Triplet<double>> t;
  for (Index r = 0; r < a.rows(); ++r) {
    const auto [b, e] = a.row_range(r);
    for (Index k = b; k < e; ++k) {
      t.push_back({r, a.col_idx()[static_cast<std::size_t>(k)],
                   a.values()[static_cast<std::size_t>(k)]});
    }
  }
  Index hole_i = -1;
  Index hole_j = -1;
  for (Index i = 0; i < a.rows() && hole_i < 0; ++i) {
    for (Index j = 0; j < a.rows(); ++j) {
      if (i != j && a.value_at(i, j) == 0.0) {
        hole_i = i;
        hole_j = j;
        break;
      }
    }
  }
  ASSERT_GE(hole_i, 0);
  t.push_back({hole_i, hole_j, 0.25});
  t.push_back({hole_j, hole_i, 0.25});
  const Csr grown = Csr::from_triplets(a.rows(), a.cols(), std::move(t));
  EXPECT_NE(fingerprint_pattern(a), fingerprint_pattern(grown));

  const SymbolicPlan plan = SymbolicPlan::analyze(a);
  EXPECT_TRUE(plan.matches(a));
  EXPECT_FALSE(plan.matches(grown));
}

TEST(SymbolicPlan, PlanDrivenLdltMatchesFromScratch) {
  Rng rng(21);
  const Csr a = random_spd(60, rng);
  std::vector<double> x_true(60);
  for (auto& v : x_true) v = rng.uniform(-2, 2);
  std::vector<double> b(60);
  a.multiply(x_true, b);

  SparseLdlt scratch;
  scratch.factorize(a);
  const auto x_ref = scratch.solve(b);

  const auto plan = std::make_shared<const SymbolicPlan>(
      SymbolicPlan::analyze(a, /*use_ordering=*/true));
  SparseLdlt planned;
  planned.factorize(a, plan);
  const auto x = planned.solve(b);
  ASSERT_EQ(x.size(), x_ref.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], x_ref[i], 1e-10);
    EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(SymbolicPlan, RefactorizationReusesPlanAcrossValueChanges) {
  // The Gauss–Newton inner loop: same pattern, new values every iteration.
  Rng rng(22);
  const Csr a = random_spd(40, rng);
  const auto plan = std::make_shared<const SymbolicPlan>(
      SymbolicPlan::analyze(a));
  SparseLdlt planned;
  for (int iter = 0; iter < 4; ++iter) {
    const Csr b = revalue(a, rng);
    ASSERT_TRUE(plan->matches(b));
    planned.factorize(b, plan);

    std::vector<double> x_true(40);
    for (auto& v : x_true) v = rng.uniform(-1, 1);
    std::vector<double> rhs(40);
    b.multiply(x_true, rhs);
    const auto x = planned.solve(rhs);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-8) << "iter " << iter;
    }
  }
}

TEST(SymbolicPlan, UnorderedPlanUsesIdentityPermutation) {
  Rng rng(23);
  const Csr a = random_spd(15, rng);
  const SymbolicPlan plan = SymbolicPlan::analyze(a, /*use_ordering=*/false);
  EXPECT_FALSE(plan.ordered());
  for (Index i = 0; i < a.rows(); ++i) {
    EXPECT_EQ(plan.perm()[static_cast<std::size_t>(i)], i);
  }
}

TEST(SymbolicPlan, Ic0FacetMatchesPlainPreconditioner) {
  Rng rng(24);
  const Csr a = random_spd(50, rng);
  const SymbolicPlan plan = SymbolicPlan::analyze(a, /*use_ordering=*/false);

  const Ic0Preconditioner plain(a);
  const Ic0Preconditioner planned(a, plan);
  std::vector<double> r(50);
  for (auto& v : r) v = rng.uniform(-1, 1);
  std::vector<double> z1(50);
  std::vector<double> z2(50);
  plain.apply(r, z1);
  planned.apply(r, z2);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(z1[i], z2[i], 1e-12);
  }
}

TEST(SymbolicPlan, ValueMapGathersPermutedValues) {
  Rng rng(25);
  const Csr a = random_spd(20, rng);
  const SymbolicPlan plan = SymbolicPlan::analyze(a);
  const auto n = static_cast<std::size_t>(a.rows());
  ASSERT_EQ(plan.permuted_row_ptr().size(), n + 1);
  // B = P A Pᵀ entry-by-entry through the map.
  for (std::size_t bi = 0; bi < n; ++bi) {
    const auto begin = static_cast<std::size_t>(plan.permuted_row_ptr()[bi]);
    const auto end = static_cast<std::size_t>(plan.permuted_row_ptr()[bi + 1]);
    for (std::size_t p = begin; p < end; ++p) {
      const auto bj = static_cast<std::size_t>(plan.permuted_col_idx()[p]);
      const Index oi = plan.perm()[bi];
      const Index oj = plan.perm()[bj];
      const double via_map =
          a.values()[static_cast<std::size_t>(plan.value_map()[p])];
      EXPECT_DOUBLE_EQ(via_map, a.value_at(oi, oj));
    }
  }
}

TEST(SymbolicPlan, ZeroPivotThrowsInNumericKernel) {
  // Pattern factors fine; values make the second pivot exactly zero.
  const Csr a = Csr::from_triplets(2, 2, {{0, 0, 1.0}, {1, 1, 0.0}});
  const auto plan = std::make_shared<const SymbolicPlan>(
      SymbolicPlan::analyze(a, /*use_ordering=*/false));
  SparseLdlt planned;
  EXPECT_THROW(planned.factorize(a, plan), ConvergenceFailure);
}

}  // namespace
}  // namespace gridse::sparse
