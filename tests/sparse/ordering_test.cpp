#include "sparse/ordering.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace gridse::sparse {
namespace {

Csr path_graph_matrix(Index n) {
  std::vector<Triplet<double>> t;
  for (Index i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0});
    if (i + 1 < n) {
      t.push_back({i, i + 1, -1.0});
      t.push_back({i + 1, i, -1.0});
    }
  }
  return Csr::from_triplets(n, n, std::move(t));
}

int bandwidth(const Csr& a) {
  int bw = 0;
  for (Index r = 0; r < a.rows(); ++r) {
    const auto [b, e] = a.row_range(r);
    for (Index k = b; k < e; ++k) {
      bw = std::max(bw,
                    std::abs(r - a.col_idx()[static_cast<std::size_t>(k)]));
    }
  }
  return bw;
}

TEST(Rcm, ProducesValidPermutation) {
  Rng rng(3);
  std::vector<Triplet<double>> t;
  const Index n = 25;
  for (Index i = 0; i < n; ++i) t.push_back({i, i, 1.0});
  for (int e = 0; e < 60; ++e) {
    const auto i = static_cast<Index>(rng.uniform_int(0, n - 1));
    const auto j = static_cast<Index>(rng.uniform_int(0, n - 1));
    if (i == j) continue;
    t.push_back({i, j, 1.0});
    t.push_back({j, i, 1.0});
  }
  const Csr a = Csr::from_triplets(n, n, std::move(t));
  const auto perm = reverse_cuthill_mckee(a);
  ASSERT_EQ(perm.size(), static_cast<std::size_t>(n));
  std::set<Index> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), n - 1);
}

TEST(Rcm, RecoversBandOnShuffledPath) {
  // Take a path graph (bandwidth 1), shuffle it, and check RCM restores a
  // small bandwidth.
  const Index n = 50;
  const Csr path = path_graph_matrix(n);
  Rng rng(7);
  std::vector<Index> shuffle_perm(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) shuffle_perm[static_cast<std::size_t>(i)] = i;
  rng.shuffle(shuffle_perm);
  const Csr shuffled = permute_symmetric(path, shuffle_perm);
  EXPECT_GT(bandwidth(shuffled), 5);

  const auto rcm = reverse_cuthill_mckee(shuffled);
  const Csr restored = permute_symmetric(shuffled, rcm);
  EXPECT_LE(bandwidth(restored), 2);
}

TEST(Rcm, HandlesDisconnectedComponents) {
  // two disjoint triangles
  std::vector<Triplet<double>> t;
  const auto add_edge = [&t](Index i, Index j) {
    t.push_back({i, j, 1.0});
    t.push_back({j, i, 1.0});
  };
  for (Index i = 0; i < 6; ++i) t.push_back({i, i, 1.0});
  add_edge(0, 1);
  add_edge(1, 2);
  add_edge(0, 2);
  add_edge(3, 4);
  add_edge(4, 5);
  add_edge(3, 5);
  const Csr a = Csr::from_triplets(6, 6, std::move(t));
  const auto perm = reverse_cuthill_mckee(a);
  std::set<Index> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rcm, IsDeterministicAcrossCalls) {
  // SymbolicPlan fingerprints assume the ordering is a pure function of the
  // pattern: repeated calls must be bit-identical, including on graphs full
  // of equal-degree ties (ties break on node index per the contract).
  Rng rng(11);
  std::vector<Triplet<double>> t;
  const Index n = 40;
  for (Index i = 0; i < n; ++i) t.push_back({i, i, 1.0});
  for (int e = 0; e < 80; ++e) {
    const auto i = static_cast<Index>(rng.uniform_int(0, n - 1));
    const auto j = static_cast<Index>(rng.uniform_int(0, n - 1));
    if (i == j) continue;
    t.push_back({i, j, 1.0});
    t.push_back({j, i, 1.0});
  }
  const Csr a = Csr::from_triplets(n, n, std::move(t));
  const auto first = reverse_cuthill_mckee(a);
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_EQ(reverse_cuthill_mckee(a), first);
  }

  // A 2x2 grid is all equal-degree ties; the documented index tie-break
  // pins the exact permutation, not just some valid RCM ordering.
  std::vector<Triplet<double>> g;
  for (Index i = 0; i < 4; ++i) g.push_back({i, i, 1.0});
  const auto add_edge = [&g](Index i, Index j) {
    g.push_back({i, j, 1.0});
    g.push_back({j, i, 1.0});
  };
  add_edge(0, 1);
  add_edge(0, 2);
  add_edge(1, 3);
  add_edge(2, 3);
  const Csr square = Csr::from_triplets(4, 4, std::move(g));
  // BFS from node 0 (lowest index), neighbours in index order, reversed.
  EXPECT_EQ(reverse_cuthill_mckee(square), (std::vector<Index>{3, 2, 1, 0}));
}

TEST(Permutation, InvertRoundTrips) {
  const std::vector<Index> perm{2, 0, 3, 1};
  const auto inv = invert_permutation(perm);
  EXPECT_EQ(inv, (std::vector<Index>{1, 3, 0, 2}));
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inv[static_cast<std::size_t>(perm[i])], static_cast<Index>(i));
  }
}

TEST(Permutation, SymmetricPermutePreservesValues) {
  const Csr a = path_graph_matrix(5);
  const std::vector<Index> perm{4, 3, 2, 1, 0};
  const Csr b = permute_symmetric(a, perm);
  // B[new_i][new_j] = A[perm[new_i]][perm[new_j]]
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(
          b.value_at(i, j),
          a.value_at(perm[static_cast<std::size_t>(i)],
                     perm[static_cast<std::size_t>(j)]));
    }
  }
}

}  // namespace
}  // namespace gridse::sparse
