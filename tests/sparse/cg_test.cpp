#include "sparse/cg.hpp"

#include <gtest/gtest.h>

#include "sparse/normal_equations.hpp"
#include "sparse/vector_ops.hpp"
#include "util/rng.hpp"

namespace gridse::sparse {
namespace {

/// Random sparse SPD matrix: G = AᵀA + n·I from a sparse rectangular A.
Csr random_spd(Index n, Rng& rng) {
  std::vector<Triplet<double>> t;
  const Index m = n * 3;
  for (Index r = 0; r < m; ++r) {
    const int k = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < k; ++i) {
      t.push_back({r, static_cast<Index>(rng.uniform_int(0, n - 1)),
                   rng.uniform(-1, 1)});
    }
  }
  const Csr a = Csr::from_triplets(m, n, std::move(t));
  std::vector<double> w(static_cast<std::size_t>(m), 1.0);
  return add_diagonal(normal_matrix(a, w), 0.5);
}

class PcgAcrossPreconditioners
    : public ::testing::TestWithParam<PreconditionerKind> {};

TEST_P(PcgAcrossPreconditioners, SolvesRandomSpdSystems) {
  Rng rng(101);
  for (const Index n : {1, 2, 5, 20, 60}) {
    const Csr g = random_spd(n, rng);
    std::vector<double> x_true(static_cast<std::size_t>(n));
    for (auto& v : x_true) v = rng.uniform(-2, 2);
    std::vector<double> b(static_cast<std::size_t>(n));
    g.multiply(x_true, b);

    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    const auto precond = make_preconditioner(GetParam(), g);
    CgOptions opts;
    opts.tolerance = 1e-12;
    opts.max_iterations = 10 * n + 10;
    const CgReport report = pcg(g, b, x, *precond, opts);
    EXPECT_TRUE(report.converged) << "n=" << n;
    for (Index i = 0; i < n; ++i) {
      EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                  x_true[static_cast<std::size_t>(i)], 1e-6)
          << "n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PcgAcrossPreconditioners,
                         ::testing::Values(PreconditionerKind::kNone,
                                           PreconditionerKind::kJacobi,
                                           PreconditionerKind::kSsor,
                                           PreconditionerKind::kIc0),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case PreconditionerKind::kNone:
                               return "none";
                             case PreconditionerKind::kJacobi:
                               return "jacobi";
                             case PreconditionerKind::kSsor:
                               return "ssor";
                             case PreconditionerKind::kIc0:
                               return "ic0";
                           }
                           return "unknown";
                         });

TEST(Pcg, ZeroRhsGivesZeroSolution) {
  Rng rng(7);
  const Csr g = random_spd(8, rng);
  std::vector<double> b(8, 0.0);
  std::vector<double> x(8, 5.0);  // nonzero initial guess
  const CgReport report = cg(g, b, x);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.iterations, 0);
  for (const double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Pcg, WarmStartConvergesFaster) {
  Rng rng(11);
  const Csr g = random_spd(40, rng);
  std::vector<double> x_true(40);
  for (auto& v : x_true) v = rng.uniform(-2, 2);
  std::vector<double> b(40);
  g.multiply(x_true, b);

  const JacobiPreconditioner jac(g);
  std::vector<double> cold(40, 0.0);
  const auto cold_rep = pcg(g, b, cold, jac);

  std::vector<double> warm = x_true;
  for (auto& v : warm) v += 1e-6;  // near the solution
  const auto warm_rep = pcg(g, b, warm, jac);
  EXPECT_LT(warm_rep.iterations, cold_rep.iterations);
}

TEST(Pcg, IterationCapReportsNotConverged) {
  Rng rng(13);
  const Csr g = random_spd(50, rng);
  std::vector<double> b(50, 1.0);
  std::vector<double> x(50, 0.0);
  CgOptions opts;
  opts.tolerance = 1e-14;
  opts.max_iterations = 2;
  const CgReport report = cg(g, b, x, opts);
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.iterations, 2);
  EXPECT_GT(report.relative_residual, 0.0);
}

TEST(Pcg, IndefiniteMatrixThrows) {
  // [[1, 2], [2, 1]] has a negative eigenvalue; pᵀAp goes nonpositive.
  const Csr a = Csr::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 2.0}, {1, 1, 1.0}});
  std::vector<double> b{1.0, -1.0};
  std::vector<double> x(2, 0.0);
  EXPECT_THROW(cg(a, b, x), InternalError);
}

TEST(Pcg, PreconditioningReducesIterationsOnIllConditioned) {
  // Diagonal matrix with a wide spread: Jacobi solves it in O(1) iterations.
  std::vector<Triplet<double>> t;
  const Index n = 64;
  for (Index i = 0; i < n; ++i) {
    t.push_back({i, i, std::pow(10.0, static_cast<double>(i % 5))});
  }
  const Csr g = Csr::from_triplets(n, n, std::move(t));
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);

  std::vector<double> x0(static_cast<std::size_t>(n), 0.0);
  const auto plain = cg(g, b, x0);
  std::vector<double> x1(static_cast<std::size_t>(n), 0.0);
  const JacobiPreconditioner jac(g);
  const auto pre = pcg(g, b, x1, jac);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
}

}  // namespace
}  // namespace gridse::sparse
