#include "sparse/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace gridse::sparse {
namespace {

DenseMatrix random_spd(std::size_t n, Rng& rng) {
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-1, 1);
    }
  }
  DenseMatrix spd = a.transpose().multiply(a);
  for (std::size_t i = 0; i < n; ++i) {
    spd(i, i) += static_cast<double>(n);  // safely positive definite
  }
  return spd;
}

TEST(Dense, MultiplyVector) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  std::vector<double> x{1, 1, 1};
  std::vector<double> y(2);
  a.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Dense, MatrixMultiplyAndTranspose) {
  Rng rng(3);
  DenseMatrix a(4, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      a(i, j) = rng.uniform(-1, 1);
    }
  }
  const DenseMatrix ata = a.transpose().multiply(a);
  EXPECT_EQ(ata.rows(), 3u);
  EXPECT_EQ(ata.cols(), 3u);
  // symmetry
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(ata(i, j), ata(j, i), 1e-14);
    }
  }
}

TEST(Dense, CholeskySolveRecoversSolution) {
  Rng rng(5);
  for (const std::size_t n : {1u, 2u, 5u, 20u, 50u}) {
    const DenseMatrix a = random_spd(n, rng);
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.uniform(-2, 2);
    std::vector<double> b(n);
    a.multiply(x_true, b);
    const auto x = a.solve_spd(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-9) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Dense, CholeskyRejectsIndefinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_THROW(a.solve_spd(std::vector<double>{1, 1}), ConvergenceFailure);
}

TEST(Dense, LuSolveGeneralMatrix) {
  Rng rng(7);
  for (const std::size_t n : {1u, 3u, 10u, 40u}) {
    DenseMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        a(i, j) = rng.uniform(-1, 1);
      }
      a(i, i) += 3.0;  // diagonally dominant: well-conditioned, nonsymmetric
    }
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.uniform(-2, 2);
    std::vector<double> b(n);
    a.multiply(x_true, b);
    const auto x = a.solve_lu(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-9);
    }
  }
}

TEST(Dense, LuSolveNeedsPivoting) {
  // Zero on the diagonal: fails without partial pivoting.
  DenseMatrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const auto x = a.solve_lu(std::vector<double>{3, 4});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Dense, LuRejectsSingular) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(a.solve_lu(std::vector<double>{1, 1}), ConvergenceFailure);
}

TEST(Dense, ConditionEstimateIdentityIsOne) {
  DenseMatrix id(5, 5);
  for (std::size_t i = 0; i < 5; ++i) id(i, i) = 1.0;
  EXPECT_NEAR(id.condition_estimate_spd(), 1.0, 1e-6);
}

TEST(Dense, ConditionEstimateDiagonal) {
  DenseMatrix d(3, 3);
  d(0, 0) = 100.0;
  d(1, 1) = 10.0;
  d(2, 2) = 1.0;
  EXPECT_NEAR(d.condition_estimate_spd(), 100.0, 1.0);
}

}  // namespace
}  // namespace gridse::sparse
