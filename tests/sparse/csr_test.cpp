#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace gridse::sparse {
namespace {

Csr random_sparse(Index rows, Index cols, double density, Rng& rng) {
  std::vector<Triplet<double>> t;
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) {
        t.push_back({r, c, rng.uniform(-2.0, 2.0)});
      }
    }
  }
  return Csr::from_triplets(rows, cols, std::move(t));
}

TEST(Csr, FromTripletsSumsDuplicates) {
  const Csr m = Csr::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 0, 2.5}, {1, 1, -1.0}, {0, 1, 4.0}});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.value_at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.value_at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.value_at(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.value_at(1, 0), 0.0);
}

TEST(Csr, OutOfRangeTripletThrows) {
  EXPECT_THROW(Csr::from_triplets(2, 2, {{2, 0, 1.0}}), InternalError);
  EXPECT_THROW(Csr::from_triplets(2, 2, {{0, -1, 1.0}}), InternalError);
}

TEST(Csr, EmptyMatrix) {
  const Csr m = Csr::from_triplets(3, 4, {});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 0u);
  std::vector<double> x(4, 1.0);
  std::vector<double> y(3, 99.0);
  m.multiply(x, y);
  for (const double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Csr, IdentityMultiplyIsIdentity) {
  const Csr id = Csr::identity(5);
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y(5);
  id.multiply(x, y);
  EXPECT_EQ(x, y);
}

TEST(Csr, MultiplyMatchesDenseReference) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Index rows = static_cast<Index>(rng.uniform_int(1, 20));
    const Index cols = static_cast<Index>(rng.uniform_int(1, 20));
    const Csr m = random_sparse(rows, cols, 0.3, rng);
    const auto dense = m.to_dense();
    std::vector<double> x(static_cast<std::size_t>(cols));
    for (auto& v : x) v = rng.uniform(-1, 1);
    std::vector<double> y(static_cast<std::size_t>(rows));
    m.multiply(x, y);
    for (Index r = 0; r < rows; ++r) {
      double want = 0.0;
      for (Index c = 0; c < cols; ++c) {
        want += dense[static_cast<std::size_t>(r) * cols + c] *
                x[static_cast<std::size_t>(c)];
      }
      EXPECT_NEAR(y[static_cast<std::size_t>(r)], want, 1e-12);
    }
  }
}

TEST(Csr, MultiplyTransposeMatchesExplicitTranspose) {
  Rng rng(37);
  const Csr m = random_sparse(15, 9, 0.35, rng);
  const Csr mt = m.transpose();
  std::vector<double> x(15);
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> y1(9);
  std::vector<double> y2(9);
  m.multiply_transpose(x, y1);
  mt.multiply(x, y2);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(y1[i], y2[i], 1e-12);
  }
}

TEST(Csr, TransposeTwiceIsIdentity) {
  Rng rng(41);
  const Csr m = random_sparse(12, 7, 0.4, rng);
  const Csr mtt = m.transpose().transpose();
  EXPECT_EQ(m.to_dense(), mtt.to_dense());
}

TEST(Csr, DiagonalExtraction) {
  const Csr m =
      Csr::from_triplets(3, 3, {{0, 0, 1.0}, {1, 2, 5.0}, {2, 2, 3.0}});
  const auto d = m.diagonal();
  EXPECT_EQ(d, (std::vector<double>{1.0, 0.0, 3.0}));
}

TEST(Csr, RowRangeAndColumnSorted) {
  Rng rng(43);
  const Csr m = random_sparse(10, 10, 0.5, rng);
  for (Index r = 0; r < 10; ++r) {
    const auto [b, e] = m.row_range(r);
    for (Index k = b; k + 1 < e; ++k) {
      EXPECT_LT(m.col_idx()[static_cast<std::size_t>(k)],
                m.col_idx()[static_cast<std::size_t>(k + 1)]);
    }
  }
}

TEST(CsrComplex, ComplexMultiply) {
  using C = std::complex<double>;
  const CsrComplex m = CsrComplex::from_triplets(
      2, 2, {{0, 0, C(1, 1)}, {0, 1, C(0, -1)}, {1, 1, C(2, 0)}});
  std::vector<C> x{C(1, 0), C(0, 1)};
  std::vector<C> y(2);
  m.multiply(x, y);
  EXPECT_NEAR(std::abs(y[0] - (C(1, 1) * C(1, 0) + C(0, -1) * C(0, 1))), 0.0,
              1e-15);
  EXPECT_NEAR(std::abs(y[1] - C(0, 2)), 0.0, 1e-15);
}

}  // namespace
}  // namespace gridse::sparse
