#include "sparse/ldlt.hpp"

#include <gtest/gtest.h>

#include "sparse/normal_equations.hpp"
#include "util/rng.hpp"

namespace gridse::sparse {
namespace {

Csr random_spd(Index n, Rng& rng, double density = 0.2) {
  std::vector<Triplet<double>> t;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j <= i; ++j) {
      if (i == j || rng.bernoulli(density)) {
        const double v = (i == j) ? rng.uniform(2.0, 4.0) + n * 0.2
                                  : rng.uniform(-0.5, 0.5);
        t.push_back({i, j, v});
        if (i != j) t.push_back({j, i, v});
      }
    }
  }
  return Csr::from_triplets(n, n, std::move(t));
}

class LdltSizes : public ::testing::TestWithParam<int> {};

TEST_P(LdltSizes, SolvesRandomSpdWithAndWithoutRcm) {
  const Index n = GetParam();
  Rng rng(1000 + n);
  const Csr a = random_spd(n, rng);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.uniform(-2, 2);
  std::vector<double> b(static_cast<std::size_t>(n));
  a.multiply(x_true, b);

  for (const bool use_rcm : {false, true}) {
    SparseLdlt ldlt;
    ldlt.factorize(a, use_rcm);
    const auto x = ldlt.solve(b);
    for (Index i = 0; i < n; ++i) {
      EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                  x_true[static_cast<std::size_t>(i)], 1e-8)
          << "rcm=" << use_rcm;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LdltSizes,
                         ::testing::Values(1, 2, 3, 8, 25, 80, 200));

TEST(Ldlt, SolveBeforeFactorizeThrows) {
  SparseLdlt ldlt;
  EXPECT_THROW(ldlt.solve(std::vector<double>{1.0}), InternalError);
}

TEST(Ldlt, SingularMatrixThrows) {
  // second row/column identically zero -> zero pivot
  const Csr a = Csr::from_triplets(2, 2, {{0, 0, 1.0}});
  SparseLdlt ldlt;
  EXPECT_THROW(ldlt.factorize(a), ConvergenceFailure);
}

TEST(Ldlt, IndefiniteButFactorizableMatrix) {
  // LDLᵀ (unlike Cholesky) handles negative pivots as long as none is zero.
  const Csr a =
      Csr::from_triplets(2, 2, {{0, 0, 1.0}, {1, 1, -2.0}});
  SparseLdlt ldlt;
  ldlt.factorize(a);
  const auto x = ldlt.solve(std::vector<double>{2.0, 4.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
}

TEST(Ldlt, RepeatedSolvesReuseFactor) {
  Rng rng(55);
  const Csr a = random_spd(30, rng);
  SparseLdlt ldlt;
  ldlt.factorize(a);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x_true(30);
    for (auto& v : x_true) v = rng.uniform(-1, 1);
    std::vector<double> b(30);
    a.multiply(x_true, b);
    const auto x = ldlt.solve(b);
    for (int i = 0; i < 30; ++i) {
      EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                  x_true[static_cast<std::size_t>(i)], 1e-8);
    }
  }
}

TEST(Ldlt, RcmReducesOrKeepsFillOnBandedMatrix) {
  // An arrowhead matrix reordered by RCM drops fill dramatically; at minimum
  // RCM must never produce an invalid factorization.
  const Index n = 40;
  std::vector<Triplet<double>> t;
  for (Index i = 0; i < n; ++i) {
    t.push_back({i, i, 10.0});
    if (i > 0) {
      t.push_back({0, i, 1.0});
      t.push_back({i, 0, 1.0});
    }
  }
  const Csr a = Csr::from_triplets(n, n, std::move(t));
  SparseLdlt plain;
  plain.factorize(a, /*use_rcm=*/false);
  SparseLdlt rcm;
  rcm.factorize(a, /*use_rcm=*/true);
  EXPECT_LE(rcm.factor_nnz(), plain.factor_nnz());

  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  const auto x1 = plain.solve(b);
  const auto x2 = rcm.solve(b);
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(x1[static_cast<std::size_t>(i)], x2[static_cast<std::size_t>(i)],
                1e-10);
  }
}

}  // namespace
}  // namespace gridse::sparse
