#include "sparse/preconditioner.hpp"

#include <gtest/gtest.h>

#include "sparse/dense.hpp"
#include "sparse/normal_equations.hpp"
#include "util/rng.hpp"

namespace gridse::sparse {
namespace {

Csr tridiagonal_spd(Index n) {
  std::vector<Triplet<double>> t;
  for (Index i = 0; i < n; ++i) {
    t.push_back({i, i, 4.0});
    if (i + 1 < n) {
      t.push_back({i, i + 1, -1.0});
      t.push_back({i + 1, i, -1.0});
    }
  }
  return Csr::from_triplets(n, n, std::move(t));
}

TEST(Jacobi, AppliesInverseDiagonal) {
  const Csr a = Csr::from_triplets(2, 2, {{0, 0, 2.0}, {1, 1, 4.0}});
  const JacobiPreconditioner m(a);
  std::vector<double> r{2.0, 4.0};
  std::vector<double> z(2);
  m.apply(r, z);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 1.0);
}

TEST(Jacobi, ZeroDiagonalRejected) {
  const Csr a = Csr::from_triplets(2, 2, {{0, 0, 1.0}, {0, 1, 1.0}});
  EXPECT_THROW(JacobiPreconditioner{a}, InternalError);
}

TEST(Identity, PassesThrough) {
  const IdentityPreconditioner m;
  std::vector<double> r{1.0, -2.0, 3.0};
  std::vector<double> z(3);
  m.apply(r, z);
  EXPECT_EQ(z, r);
}

TEST(Ic0, ExactOnTridiagonal) {
  // A tridiagonal SPD matrix has no fill-in, so IC(0) equals the exact
  // Cholesky factor and M⁻¹A = I: applying M⁻¹ to A·x returns x.
  const Index n = 30;
  const Csr a = tridiagonal_spd(n);
  const Ic0Preconditioner m(a);
  EXPECT_DOUBLE_EQ(m.shift(), 0.0);
  Rng rng(3);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> ax(static_cast<std::size_t>(n));
  a.multiply(x, ax);
  std::vector<double> z(static_cast<std::size_t>(n));
  m.apply(ax, z);
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(z[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i)],
                1e-10);
  }
}

TEST(Ic0, SsorAndIc0AreSymmetricOperators) {
  // A symmetric preconditioner must satisfy uᵀ M⁻¹ v == vᵀ M⁻¹ u — required
  // for PCG correctness.
  const Csr a = tridiagonal_spd(12);
  Rng rng(9);
  std::vector<double> u(12);
  std::vector<double> v(12);
  for (auto& x : u) x = rng.uniform(-1, 1);
  for (auto& x : v) x = rng.uniform(-1, 1);
  for (const auto kind :
       {PreconditionerKind::kSsor, PreconditionerKind::kIc0}) {
    const auto m = make_preconditioner(kind, a);
    std::vector<double> mu(12);
    std::vector<double> mv(12);
    m->apply(u, mu);
    m->apply(v, mv);
    double uv = 0.0;
    double vu = 0.0;
    for (int i = 0; i < 12; ++i) {
      uv += u[static_cast<std::size_t>(i)] * mv[static_cast<std::size_t>(i)];
      vu += v[static_cast<std::size_t>(i)] * mu[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(uv, vu, 1e-10) << m->name();
  }
}

TEST(Ic0, ShiftRecoversFromBreakdown) {
  // Nearly singular SPD matrix: plain IC(0) can break down; the shifted
  // retry must still produce a usable factor.
  std::vector<Triplet<double>> t{{0, 0, 1.0},    {0, 1, 1.0 - 1e-13},
                                 {1, 0, 1.0 - 1e-13}, {1, 1, 1.0}};
  const Csr a = Csr::from_triplets(2, 2, std::move(t));
  const Ic0Preconditioner m(a);
  std::vector<double> r{1.0, 1.0};
  std::vector<double> z(2);
  m.apply(r, z);
  EXPECT_TRUE(std::isfinite(z[0]) && std::isfinite(z[1]));
}

TEST(Factory, ParsesNames) {
  EXPECT_EQ(parse_preconditioner("none"), PreconditionerKind::kNone);
  EXPECT_EQ(parse_preconditioner("jacobi"), PreconditionerKind::kJacobi);
  EXPECT_EQ(parse_preconditioner("ssor"), PreconditionerKind::kSsor);
  EXPECT_EQ(parse_preconditioner("ic0"), PreconditionerKind::kIc0);
  EXPECT_THROW(parse_preconditioner("cholesky"), InvalidInput);
}

TEST(Factory, NamesRoundTrip) {
  const Csr a = tridiagonal_spd(4);
  EXPECT_EQ(make_preconditioner(PreconditionerKind::kNone, a)->name(), "none");
  EXPECT_EQ(make_preconditioner(PreconditionerKind::kJacobi, a)->name(),
            "jacobi");
  EXPECT_EQ(make_preconditioner(PreconditionerKind::kSsor, a)->name(), "ssor");
  EXPECT_EQ(make_preconditioner(PreconditionerKind::kIc0, a)->name(), "ic0");
}

TEST(Ssor, RejectsBadOmega) {
  const Csr a = tridiagonal_spd(4);
  EXPECT_THROW(SsorPreconditioner(a, 0.0), InternalError);
  EXPECT_THROW(SsorPreconditioner(a, 2.0), InternalError);
}

}  // namespace
}  // namespace gridse::sparse
