#include "sparse/schur.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sparse/ldlt.hpp"
#include "util/rng.hpp"

namespace gridse::sparse {
namespace {

Csr random_spd(Index n, Rng& rng, double density = 0.3) {
  std::vector<Triplet<double>> t;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j <= i; ++j) {
      if (i == j || rng.bernoulli(density)) {
        const double v = (i == j) ? rng.uniform(2.0, 4.0) + n * 0.2
                                  : rng.uniform(-0.5, 0.5);
        t.push_back({i, j, v});
        if (i != j) t.push_back({j, i, v});
      }
    }
  }
  return Csr::from_triplets(n, n, std::move(t));
}

/// Dense reference: S = G_BB − G_BI G_II⁻¹ G_IB built block-by-block.
DenseMatrix dense_schur(const Csr& g, std::span<const Index> boundary) {
  std::vector<Index> interior;
  for (Index i = 0; i < g.rows(); ++i) {
    if (!std::binary_search(boundary.begin(), boundary.end(), i)) {
      interior.push_back(i);
    }
  }
  const std::size_t nb = boundary.size();
  const std::size_t ni = interior.size();
  DenseMatrix gbb(nb, nb);
  DenseMatrix gbi(nb, ni);
  DenseMatrix gii(ni, ni);
  for (std::size_t r = 0; r < nb; ++r) {
    for (std::size_t c = 0; c < nb; ++c) {
      gbb(r, c) = g.value_at(boundary[r], boundary[c]);
    }
    for (std::size_t c = 0; c < ni; ++c) {
      gbi(r, c) = g.value_at(boundary[r], interior[c]);
    }
  }
  for (std::size_t r = 0; r < ni; ++r) {
    for (std::size_t c = 0; c < ni; ++c) {
      gii(r, c) = g.value_at(interior[r], interior[c]);
    }
  }
  // X = G_II⁻¹ G_IB, column by column.
  DenseMatrix x(ni, nb);
  for (std::size_t c = 0; c < nb; ++c) {
    std::vector<double> col(ni);
    for (std::size_t r = 0; r < ni; ++r) col[r] = gbi(c, r);  // G_IB = G_BIᵀ
    const auto sol = gii.solve_spd(col);
    for (std::size_t r = 0; r < ni; ++r) x(r, c) = sol[r];
  }
  DenseMatrix s(nb, nb);
  for (std::size_t r = 0; r < nb; ++r) {
    for (std::size_t c = 0; c < nb; ++c) {
      double acc = gbb(r, c);
      for (std::size_t k = 0; k < ni; ++k) acc -= gbi(r, k) * x(k, c);
      s(r, c) = acc;
    }
  }
  return s;
}

TEST(Schur, MatchesDenseReference) {
  Rng rng(41);
  const Csr g = random_spd(18, rng);
  const std::vector<Index> boundary = {2, 7, 11, 17};
  const SchurSystem sys = schur_condense(g, {}, boundary);
  ASSERT_EQ(sys.boundary, boundary);
  ASSERT_EQ(sys.s.rows(), boundary.size());
  EXPECT_TRUE(sys.rhs.empty());

  const DenseMatrix ref = dense_schur(g, boundary);
  for (std::size_t r = 0; r < boundary.size(); ++r) {
    for (std::size_t c = 0; c < boundary.size(); ++c) {
      EXPECT_NEAR(sys.s(r, c), ref(r, c), 1e-9) << r << "," << c;
    }
  }
}

TEST(Schur, CondensedSolveEqualsBoundaryBlockOfFullSolve) {
  Rng rng(42);
  const Csr g = random_spd(25, rng);
  const std::vector<Index> boundary = {0, 4, 9, 13, 24};
  std::vector<double> rhs(25);
  for (auto& v : rhs) v = rng.uniform(-1, 1);

  SparseLdlt full;
  full.factorize(g);
  const auto x_full = full.solve(rhs);

  const SchurSystem sys = schur_condense(g, rhs, boundary);
  ASSERT_EQ(sys.rhs.size(), boundary.size());
  const auto x_b = sys.s.solve_spd(sys.rhs);
  for (std::size_t k = 0; k < boundary.size(); ++k) {
    EXPECT_NEAR(x_b[k], x_full[static_cast<std::size_t>(boundary[k])], 1e-8);
  }
}

TEST(Schur, MarginalSigmasMatchDenseInverse) {
  Rng rng(43);
  const Csr g = random_spd(14, rng);
  const std::vector<Index> boundary = {1, 6, 12};
  const SchurSystem sys = schur_condense(g, {}, boundary);
  const auto sigmas = schur_marginal_sigmas(sys);
  ASSERT_EQ(sigmas.size(), boundary.size());

  // diag(S⁻¹) column by column through the dense solver.
  for (std::size_t k = 0; k < boundary.size(); ++k) {
    std::vector<double> e(boundary.size(), 0.0);
    e[k] = 1.0;
    const auto col = sys.s.solve_spd(e);
    EXPECT_NEAR(sigmas[k], std::sqrt(col[k]), 1e-10);
    EXPECT_GT(sigmas[k], 0.0);
  }
}

TEST(Schur, AllBoundaryDegeneratesToIdentityCondensation) {
  // With no interior, S is just G itself.
  Rng rng(44);
  const Csr g = random_spd(6, rng);
  const std::vector<Index> boundary = {0, 1, 2, 3, 4, 5};
  std::vector<double> rhs(6, 1.0);
  const SchurSystem sys = schur_condense(g, rhs, boundary);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_NEAR(sys.s(r, c),
                  g.value_at(static_cast<Index>(r), static_cast<Index>(c)),
                  1e-12);
    }
    EXPECT_DOUBLE_EQ(sys.rhs[r], 1.0);
  }
}

TEST(Schur, RegularizationRescuesSingularInterior) {
  // Interior variable 1 fully decoupled with a zero diagonal: the plain
  // condensation cannot factor G_II, the regularized one can.
  const Csr g = Csr::from_triplets(
      3, 3, {{0, 0, 2.0}, {2, 2, 2.0}, {0, 2, -1.0}, {2, 0, -1.0},
             {1, 1, 0.0}});
  const std::vector<Index> boundary = {0, 2};
  EXPECT_THROW(schur_condense(g, {}, boundary), ConvergenceFailure);
  const SchurSystem sys = schur_condense(g, {}, boundary, 1e-8);
  EXPECT_NEAR(sys.s(0, 0), 2.0, 1e-9);
  EXPECT_NEAR(sys.s(0, 1), -1.0, 1e-9);
}

}  // namespace
}  // namespace gridse::sparse
