// Distributed-tracing layer tests: ring-buffer overflow semantics, trace
// context propagation across the inproc and TCP transports, and a golden
// end-to-end check that an ieee118 run produces a valid Perfetto document
// (GRIDSE_OBS=ON) or exactly nothing (GRIDSE_OBS=OFF).

#include "obs/trace/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include "core/architecture.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace/collector.hpp"
#include "obs/trace/event_log.hpp"
#include "runtime/inproc_comm.hpp"
#include "runtime/tcp_comm.hpp"

namespace gridse::obs::trace {
namespace {

std::uint64_t registry_counter(const std::string& name) {
  const auto snap = MetricsRegistry::global().snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

TEST(TraceBufferTest, OverflowDropsOldestAndCountsDrops) {
  MetricsRegistry::global().reset();
  Tracer& tracer = Tracer::global();
  tracer.reset(/*capacity=*/8);

  for (int i = 0; i < 20; ++i) {
    TraceRecord rec;
    rec.name = "test.record";
    rec.kind = RecordKind::kSpan;
    rec.span_id = static_cast<std::uint64_t>(i) + 1;
    tracer.buffer().push(rec);
  }
  EXPECT_EQ(tracer.buffer().total_pushed(), 20u);
  EXPECT_EQ(tracer.buffer().dropped(), 12u);
  EXPECT_EQ(registry_counter("trace.dropped"), 12u);

  const std::vector<TraceRecord> kept = tracer.buffer().drain();
  ASSERT_EQ(kept.size(), 8u);
  // Drop-oldest: the survivors are the last 8 pushed, oldest first.
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].span_id, 13u + i);
  }
  tracer.reset();
}

#if GRIDSE_OBS

struct SendConsumePair {
  TraceRecord send;
  TraceRecord consume;
};

/// Run a 2-rank world where rank 0 sends one tagged message from inside a
/// named span and rank 1 receives it; return the send/consume records.
template <typename World>
SendConsumePair run_send_recv(World& world, std::atomic<std::uint64_t>& scope) {
  world.run([&](runtime::Communicator& comm) {
    if (comm.rank() == 0) {
      OBS_SPAN("trace_test.scope");
      scope.store(ScopedSpan::current_id());
      comm.send(1, 5, {1, 2, 3});
    } else {
      (void)comm.recv(0, 5);
    }
  });
  SendConsumePair pair;
  bool have_send = false;
  bool have_consume = false;
  for (const TraceRecord& rec : Tracer::global().buffer().drain()) {
    if (rec.kind == RecordKind::kSend) {
      EXPECT_FALSE(have_send) << "expected exactly one send record";
      pair.send = rec;
      have_send = true;
    } else if (rec.kind == RecordKind::kConsume) {
      EXPECT_FALSE(have_consume) << "expected exactly one consume record";
      pair.consume = rec;
      have_consume = true;
    }
  }
  EXPECT_TRUE(have_send);
  EXPECT_TRUE(have_consume);
  return pair;
}

TEST(TracePropagationTest, InprocConsumeParentIsSenderSpan) {
  Tracer::global().reset();
  std::atomic<std::uint64_t> scope{0};
  runtime::InprocWorld world(2);
  const SendConsumePair pair = run_send_recv(world, scope);

  EXPECT_EQ(pair.send.parent_id, scope.load());  // nested in the test span
  EXPECT_EQ(pair.consume.parent_id, pair.send.span_id);
  EXPECT_EQ(pair.consume.flow_id, pair.send.flow_id);
  EXPECT_EQ(pair.send.rank, 0);
  EXPECT_EQ(pair.consume.rank, 1);
  EXPECT_GT(pair.consume.clock, pair.send.clock);  // Lamport order
}

TEST(TracePropagationTest, TcpConsumeParentIsSenderSpanAcrossTheWire) {
  Tracer::global().reset();
  std::atomic<std::uint64_t> scope{0};
  runtime::TcpWorld world(2);
  const SendConsumePair pair = run_send_recv(world, scope);

  EXPECT_EQ(pair.send.parent_id, scope.load());
  EXPECT_EQ(pair.consume.parent_id, pair.send.span_id);
  EXPECT_EQ(pair.consume.flow_id, pair.send.flow_id);
  EXPECT_EQ(pair.send.rank, 0);
  EXPECT_EQ(pair.consume.rank, 1);
  EXPECT_GT(pair.consume.clock, pair.send.clock);
}

TEST(TracePropagationTest, DisabledTracerPutsNothingOnTheWire) {
  Tracer::global().reset();
  Tracer::global().set_enabled(false);
  std::atomic<std::uint64_t> scope{0};
  runtime::TcpWorld world(2);
  world.run([&](runtime::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, {1, 2, 3});
    } else {
      (void)comm.recv(0, 5);
    }
  });
  (void)scope;
  EXPECT_TRUE(Tracer::global().buffer().drain().empty());
  Tracer::global().set_enabled(true);
}

#endif  // GRIDSE_OBS

/// Golden end-to-end run: 2 clusters of ieee118 through the full system.
/// Under GRIDSE_OBS=ON the flush must produce per-rank files that merge
/// into a valid Perfetto document with flow events and DSE phases; under
/// OFF the same run must produce exactly nothing.
TEST(TraceGoldenTest, Ieee118TwoClusterRun) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "gridse_trace_golden_test";
  std::filesystem::remove_all(dir);
  Tracer::global().reset();
  EventLog::global().reset();

  {
    core::SystemConfig cfg;
    cfg.mapping.num_clusters = 2;
    cfg.transport = core::Transport::kInproc;
    cfg.trace_dir = dir.string();
    core::DseSystem sys(io::ieee118_dse(), cfg);
    const core::CycleReport rep = sys.run_cycle(0.0);
    EXPECT_TRUE(rep.dse.all_converged);
  }  // ~DseSystem flushes the trace

#if GRIDSE_OBS
  std::vector<RankTrace> ranks;
  for (int r = 0; r < 2; ++r) {
    const std::filesystem::path file =
        dir / ("trace_rank_" + std::to_string(r) + ".jsonl");
    ASSERT_TRUE(std::filesystem::exists(file)) << file;
    ranks.push_back(load_rank_trace(file.string()));
    EXPECT_EQ(ranks.back().rank, r);
    EXPECT_FALSE(ranks.back().records.empty());
  }
  const std::string merged = merge_to_chrome_json(ranks);
  EXPECT_TRUE(validate_chrome_trace(merged).empty());
  // Structural goldens: flow start + finish events and the DSE phases.
  EXPECT_NE(merged.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(merged.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(merged.find("\"phase\":\"Step1\""), std::string::npos);
  EXPECT_NE(merged.find("\"phase\":\"Step2\""), std::string::npos);
  EXPECT_NE(merged.find("\"phase\":\"Exchange\""), std::string::npos);
  EXPECT_NE(merged.find("\"phase\":\"Combine\""), std::string::npos);
  const std::string summary = critical_path_summary(ranks);
  EXPECT_NE(summary.find("Step1"), std::string::npos);
  EXPECT_NE(summary.find("slowest rank"), std::string::npos);
#else
  // The OFF build must write no files at all — not empty ones.
  EXPECT_FALSE(std::filesystem::exists(dir));
  const FlushStats stats = write_trace_files(dir.string());
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.events, 0u);
  EXPECT_TRUE(stats.files.empty());
  // Merging nothing yields the exact empty golden document, still valid.
  const std::string merged = merge_to_chrome_json({});
  EXPECT_EQ(merged,
            "{\n\"displayTimeUnit\":\"ms\",\n"
            "\"otherData\":{\"schema\":\"gridse-perfetto/1\"},\n"
            "\"traceEvents\":[\n]}\n");
  EXPECT_TRUE(validate_chrome_trace(merged).empty());
#endif
  std::filesystem::remove_all(dir);
}

TEST(EventLogTest, DropsOldestWhenFullAndCountsDrops) {
  MetricsRegistry::global().reset();
  Tracer::global().reset();
  EventLog& log = EventLog::global();
  log.reset(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    log.emit("test.event", event_attr("i", i));
  }
  // Direct API calls work in both GRIDSE_OBS modes (only the macro call
  // sites compile out), so this is mode-independent.
  const std::vector<Event> kept = log.drain();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
  EXPECT_EQ(registry_counter("trace.events.dropped"), 6u);
  ASSERT_EQ(kept.back().attrs.size(), 1u);
  EXPECT_STREQ(kept.back().attrs.front().key, "i");
  EXPECT_EQ(kept.back().attrs.front().value, "9");
  log.reset();
}

}  // namespace
}  // namespace gridse::obs::trace
