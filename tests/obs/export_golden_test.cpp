// Golden-file test for the JSON exporter: the schema is consumed by the CI
// bench-smoke merge script and external dashboards, so its exact shape is a
// contract. A failure here means a deliberate schema change — update the
// golden string AND docs/OBSERVABILITY.md together.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace gridse::obs {
namespace {

TEST(ExportGolden, EmptyRegistry) {
  const MetricsRegistry reg;
  EXPECT_EQ(reg.to_json(),
            "{\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {},\n"
            "  \"spans\": {}\n"
            "}");
}

TEST(ExportGolden, PopulatedRegistry) {
  MetricsRegistry reg;
  reg.counter("dse.messages").add(3);
  Gauge& depth = reg.gauge("mailbox.depth");
  depth.set(2.0);
  depth.set(5.0);
  depth.set(1.0);
  Histogram& iters = reg.histogram("iters", HistogramSpec::counts());
  iters.observe(1.0);
  iters.observe(3.0);
  iters.observe(3.0);
  reg.record_span("dse.step1", "dse.run", 0.5);

  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"dse.messages\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"mailbox.depth\": {\"value\": 1, \"max\": 5}\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"iters\": {\"count\":3,\"sum\":7,\"min\":1,\"max\":3,"
      "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":4,\"count\":2}]}\n"
      "  },\n"
      "  \"spans\": {\n"
      "    \"dse.step1\": {\"parent\": \"dse.run\", \"count\": 1, "
      "\"total_seconds\": 0.5, \"latency\": {\"count\":1,\"sum\":0.5,"
      "\"min\":0.5,\"max\":0.5,\"buckets\":[{\"le\":0.524288,\"count\":1}]}}\n"
      "  }\n"
      "}";
  EXPECT_EQ(reg.to_json(), expected);
}

TEST(ExportGolden, EscapesMetricNames) {
  MetricsRegistry reg;
  reg.counter("weird\"name\\with\ncontrol").add(1);
  EXPECT_EQ(reg.to_json(),
            "{\n"
            "  \"counters\": {\n"
            "    \"weird\\\"name\\\\with\\ncontrol\": 1\n"
            "  },\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {},\n"
            "  \"spans\": {}\n"
            "}");
}

TEST(ExportGolden, IndentShiftsNestedLines) {
  MetricsRegistry reg;
  reg.counter("c").add(1);
  const std::string json = snapshot_to_json(reg.snapshot(), 2);
  EXPECT_EQ(json,
            "{\n"
            "    \"counters\": {\n"
            "      \"c\": 1\n"
            "    },\n"
            "    \"gauges\": {},\n"
            "    \"histograms\": {},\n"
            "    \"spans\": {}\n"
            "  }");
}

}  // namespace
}  // namespace gridse::obs
