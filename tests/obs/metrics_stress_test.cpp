// Concurrency stress for the metrics layer: many threads hammering the same
// counters, histograms, and spans must lose no updates and trip no data
// races. Run under the tsan preset, this is the layer's race detector.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace gridse::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kIterations = 10'000;

TEST(MetricsStress, ConcurrentCountersLoseNoUpdates) {
  MetricsRegistry reg;
  const std::vector<std::string> names = {"a", "b", "c", "d"};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &names] {
      for (int i = 0; i < kIterations; ++i) {
        // Mix registry lookups with cached-handle updates, like real call
        // sites (static-cached macros vs dynamic per-endpoint names).
        reg.counter(names[static_cast<std::size_t>(i) % names.size()]).add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  std::uint64_t total = 0;
  for (const auto& [name, value] : reg.snapshot().counters) {
    total += value;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIterations);
}

TEST(MetricsStress, ConcurrentHistogramObservations) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("stress", HistogramSpec::counts());
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kIterations; ++i) {
        h.observe(static_cast<double>(i % 16) + 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIterations);
  // Every thread observed the same 1..16 cycle.
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 16.0);
  std::uint64_t bucket_total = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    bucket_total += h.bucket_count(b);
  }
  EXPECT_EQ(bucket_total, h.count());
}

TEST(MetricsStress, ConcurrentSpansAndSnapshots) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kIterations / 10; ++i) {
        ScopedSpan outer("stress.outer", &reg);
        ScopedSpan inner("stress.inner", &reg);
      }
      EXPECT_EQ(ScopedSpan::depth(), 0);  // span stack is per-thread
    });
  }
  // Snapshot while writers are live: must be internally consistent, not
  // torn (counts only grow; parents never flip once set).
  for (int i = 0; i < 50; ++i) {
    const Snapshot snap = reg.snapshot();
    const auto it = snap.spans.find("stress.inner");
    if (it != snap.spans.end() && it->second.count > 0) {
      EXPECT_EQ(it->second.parent, "stress.outer");
    }
  }
  for (auto& t : threads) t.join();
  const Snapshot snap = reg.snapshot();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * (kIterations / 10);
  EXPECT_EQ(snap.spans.at("stress.outer").count, expected);
  EXPECT_EQ(snap.spans.at("stress.inner").count, expected);
  EXPECT_EQ(snap.spans.at("stress.inner").parent, "stress.outer");
  EXPECT_EQ(snap.spans.at("stress.inner").latency.count, expected);
}

TEST(MetricsStress, ConcurrentGaugeMaxIsMonotonic) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("depth");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < kIterations; ++i) {
        g.set(static_cast<double>((t * kIterations + i) % 100));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.max(), 99.0);
  EXPECT_GE(g.value(), 0.0);
  EXPECT_LE(g.value(), 99.0);
}

}  // namespace
}  // namespace gridse::obs
