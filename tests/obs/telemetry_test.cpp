#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace/json_mini.hpp"

namespace gridse::obs {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir;
}

/// Parse every non-empty line of a JSONL file.
std::vector<jsonm::Value> read_jsonl(const fs::path& file) {
  std::ifstream in(file);
  EXPECT_TRUE(in.is_open()) << file;
  std::vector<jsonm::Value> records;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      records.push_back(jsonm::parse(line));
    }
  }
  return records;
}

std::vector<jsonm::Value> cycle_records(const std::vector<jsonm::Value>& all) {
  std::vector<jsonm::Value> cycles;
  for (const jsonm::Value& r : all) {
    const jsonm::Value* kind = r.find("kind");
    if (kind != nullptr && kind->text == "cycle") {
      cycles.push_back(r);
    }
  }
  return cycles;
}

/// The tentpole invariant: per-cycle deltas sum back to the end-of-run
/// aggregate exactly, even with 8 writer threads racing the sampler at
/// every cycle boundary. A snapshot that tore (read counter A before a
/// writer's update, counter B after) would break the per-name totals.
TEST(TelemetryTest, CycleDeltasSumToAggregateUnderContention) {
  const fs::path dir = fresh_dir("gridse_telemetry_delta_test");
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;

  std::vector<jsonm::Value> records;
  {
    TelemetryOptions options;
    options.dir = dir.string();
    TelemetrySampler sampler(options, registry);

    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&registry, t] {
        Counter& shared = registry.counter("x.shared");
        Counter& mine = registry.counter("x.thread_" + std::to_string(t));
        Histogram& hist = registry.histogram("x.lat");
        for (int i = 0; i < kOpsPerThread; ++i) {
          shared.add(1);
          mine.add(3);
          hist.observe(1e-5 * ((i % 7) + 1));
        }
      });
    }
    // Cycle boundaries race the writers on purpose.
    for (int cycle = 0; cycle < 20; ++cycle) {
      CycleStamp stamp;
      stamp.cycle = cycle;
      stamp.participants = {0, 1};
      sampler.on_cycle_end(stamp);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (std::thread& w : writers) {
      w.join();
    }
    CycleStamp last;
    last.cycle = 20;
    last.participants = {0, 1};
    sampler.on_cycle_end(last);
    EXPECT_EQ(sampler.cycles_recorded(), 21u);
    records = read_jsonl(dir / "timeseries.jsonl");
  }

  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.front().find("schema")->text, "gridse-timeseries/1");
  const std::vector<jsonm::Value> cycles = cycle_records(records);
  ASSERT_EQ(cycles.size(), 21u);

  std::map<std::string, std::uint64_t> counter_sums;
  std::uint64_t hist_count = 0;
  double hist_sum = 0.0;
  std::map<std::string, std::uint64_t> bucket_sums;  // bound text -> count
  for (const jsonm::Value& rec : cycles) {
    if (const jsonm::Value* counters = rec.find("counters");
        counters != nullptr) {
      for (const auto& [name, delta] : counters->object) {
        counter_sums[name] += delta.as_u64();
      }
    }
    const jsonm::Value* hists = rec.find("histograms");
    if (hists == nullptr) continue;
    const jsonm::Value* lat = hists->find("x.lat");
    if (lat == nullptr) continue;
    hist_count += lat->find("count")->as_u64();
    hist_sum += lat->find("sum")->number;
    for (const jsonm::Value& pair : lat->find("buckets")->array) {
      bucket_sums[pair.array.at(0).text] += pair.array.at(1).as_u64();
    }
  }

  const Snapshot final_snap = registry.snapshot();
  for (const auto& [name, value] : final_snap.counters) {
    EXPECT_EQ(counter_sums[name], value) << name;
  }
  const HistogramSnapshot& lat = final_snap.histograms.at("x.lat");
  EXPECT_EQ(hist_count, lat.count);
  EXPECT_EQ(hist_count,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_NEAR(hist_sum, lat.sum, 1e-9 * lat.sum);
  std::uint64_t final_bucket_total = 0;
  for (const auto& [bound, count] : lat.buckets) {
    (void)bound;
    final_bucket_total += count;
  }
  std::uint64_t delta_bucket_total = 0;
  for (const auto& [bound, count] : bucket_sums) {
    (void)bound;
    delta_bucket_total += count;
  }
  EXPECT_EQ(delta_bucket_total, final_bucket_total);
}

/// The flight ring is bounded: with flight_ring = 4 and ten cycles, the
/// post-mortem carries exactly the last four cycle records.
TEST(TelemetryTest, FlightRingKeepsLastNOnOverflow) {
  const fs::path dir = fresh_dir("gridse_telemetry_ring_test");
  MetricsRegistry registry;
  TelemetryOptions options;
  options.dir = dir.string();
  options.flight_ring = 4;
  TelemetrySampler sampler(options, registry);

  for (int cycle = 0; cycle < 10; ++cycle) {
    registry.counter("x.cycles").add(1);
    CycleStamp stamp;
    stamp.cycle = cycle;
    stamp.participants = {0};
    sampler.on_cycle_end(stamp);
  }
  sampler.note_trigger("cluster_dead", 2, 9);
  sampler.flush_pending_flights();
  EXPECT_EQ(sampler.flights_written(), 1u);

  const fs::path flight = dir / "flight-9.json";
  ASSERT_TRUE(fs::exists(flight)) << flight;
  std::ifstream in(flight);
  std::string doc((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  const jsonm::Value parsed = jsonm::parse(doc);
  EXPECT_EQ(parsed.find("schema")->text, "gridse-flight/1");
  EXPECT_EQ(parsed.find("cycle")->as_u64(), 9u);
  ASSERT_EQ(parsed.find("dead_clusters")->array.size(), 1u);
  EXPECT_EQ(parsed.find("dead_clusters")->array[0].as_u64(), 2u);
  const jsonm::Value* ring = parsed.find("ring");
  ASSERT_NE(ring, nullptr);
  ASSERT_EQ(ring->array.size(), 4u);
  for (std::size_t i = 0; i < ring->array.size(); ++i) {
    EXPECT_EQ(ring->array[i].find("cycle")->as_u64(), 6u + i);
  }
  const jsonm::Value* triggers = parsed.find("triggers");
  ASSERT_EQ(triggers->array.size(), 1u);
  EXPECT_EQ(triggers->array[0].find("kind")->text, "cluster_dead");
}

/// A trigger noted on the final cycle still produces its flight file: the
/// destructor force-flushes pending triggers.
TEST(TelemetryTest, DestructorFlushesPendingFlight) {
  const fs::path dir = fresh_dir("gridse_telemetry_dtor_test");
  MetricsRegistry registry;
  {
    TelemetryOptions options;
    options.dir = dir.string();
    TelemetrySampler sampler(options, registry);
    for (int cycle = 0; cycle < 3; ++cycle) {
      CycleStamp stamp;
      stamp.cycle = cycle;
      sampler.on_cycle_end(stamp);
    }
    sampler.note_trigger("degraded_combine", -1, 2);
  }
  EXPECT_TRUE(fs::exists(dir / "flight-2.json"));
}

/// Wall-clock interval samples measure progress inside a cycle without
/// advancing the delta baseline, so the cycle-records-sum-to-aggregate
/// invariant survives a background sampler.
TEST(TelemetryTest, IntervalSamplesDoNotAdvanceBaseline) {
  const fs::path dir = fresh_dir("gridse_telemetry_interval_test");
  MetricsRegistry registry;
  std::vector<jsonm::Value> records;
  {
    TelemetryOptions options;
    options.dir = dir.string();
    options.sample_period = std::chrono::milliseconds(5);
    TelemetrySampler sampler(options, registry);
    for (int cycle = 0; cycle < 2; ++cycle) {
      registry.counter("x.work").add(10);
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
      CycleStamp stamp;
      stamp.cycle = cycle;
      sampler.on_cycle_end(stamp);
    }
    records = read_jsonl(dir / "timeseries.jsonl");
  }
  std::size_t intervals = 0;
  std::uint64_t cycle_sum = 0;
  for (const jsonm::Value& rec : records) {
    const jsonm::Value* kind = rec.find("kind");
    if (kind == nullptr) continue;  // header
    if (kind->text == "interval") {
      ++intervals;
      continue;
    }
    const jsonm::Value* counters = rec.find("counters");
    if (const jsonm::Value* v = counters ? counters->find("x.work") : nullptr;
        v != nullptr) {
      cycle_sum += v->as_u64();
    }
  }
  EXPECT_GE(intervals, 1u);  // 60 ms of 5 ms periods: at least one fired
  EXPECT_EQ(cycle_sum, registry.counter("x.work").value());
}

/// Structural golden of the Prometheus exposition: every instrument kind
/// renders with sanitized names, and histogram buckets are cumulative.
TEST(TelemetryTest, ExpositionTextCoversEveryKind) {
  MetricsRegistry registry;
  registry.counter("exchange.retries").add(4);
  registry.gauge("runtime.mailbox.depth").set(7.0);
  Histogram& hist =
      registry.histogram("dse.step1.subsystem_seconds");
  hist.observe(0.5e-6);
  hist.observe(3e-6);
  registry.record_span("dse.step1", "dse.run", 0.25);

  const std::string text = exposition_text(registry.snapshot());
  EXPECT_NE(text.find("# TYPE gridse_exchange_retries counter"),
            std::string::npos);
  EXPECT_NE(text.find("gridse_exchange_retries 4"), std::string::npos);
  EXPECT_NE(text.find("gridse_runtime_mailbox_depth 7"), std::string::npos);
  EXPECT_NE(text.find("gridse_runtime_mailbox_depth_max 7"),
            std::string::npos);
  // Cumulative buckets: the 3 µs observation's bucket also counts the
  // 0.5 µs one, and +Inf counts everything.
  EXPECT_NE(text.find("gridse_dse_step1_subsystem_seconds_bucket"
                      "{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("gridse_dse_step1_subsystem_seconds_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("gridse_span_dse_step1_total_seconds 0.25"),
            std::string::npos);
}

}  // namespace
}  // namespace gridse::obs
