#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/obs.hpp"
#include "obs/span.hpp"

namespace gridse::obs {
namespace {

TEST(Counter, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, TracksLastValueAndMax) {
  Gauge g;
  g.set(2.0);
  g.set(5.0);
  g.set(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  EXPECT_DOUBLE_EQ(g.max(), 5.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.max(), 0.0);
}

TEST(Histogram, EmptyHistogramIsAllZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);  // +inf sentinel maps back to 0
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, CountsSpecBucketsSmallIntegers) {
  Histogram h(HistogramSpec::counts());
  h.observe(1.0);  // bucket 0: ≤ 1
  h.observe(3.0);  // bucket 2: (2, 4]
  h.observe(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 7.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_NEAR(h.mean(), 7.0 / 3.0, 1e-12);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_bound(0), 1.0);
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_bound(2), 4.0);
}

TEST(Histogram, OverflowLandsInLastBucket) {
  Histogram h(HistogramSpec::counts());
  h.observe(1e30);
  EXPECT_EQ(h.bucket_count(Histogram::kNumBuckets - 1), 1u);
  EXPECT_TRUE(std::isinf(h.bucket_bound(Histogram::kNumBuckets - 1)));
}

TEST(Histogram, ResetRestoresEmptyState) {
  Histogram h;
  h.observe(0.5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  h.observe(0.25);  // min tracking survives a reset
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
}

TEST(MetricsRegistry, ReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = reg.histogram("h");
  Histogram& h2 = reg.histogram("h", HistogramSpec::counts());
  EXPECT_EQ(&h1, &h2);  // first registration wins; spec is not re-applied
  EXPECT_DOUBLE_EQ(h1.spec().first_bound, HistogramSpec::latency().first_bound);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("events");
  c.add(7);
  reg.gauge("depth").set(3.0);
  reg.histogram("lat").observe(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // the cached reference still works
  c.add(1);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("events"), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("depth"), 0.0);
  EXPECT_EQ(snap.histograms.at("lat").count, 0u);
}

TEST(MetricsRegistry, SnapshotDropsEmptyBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("iters", HistogramSpec::counts());
  h.observe(1.0);
  h.observe(8.0);
  const HistogramSnapshot snap = reg.snapshot().histograms.at("iters");
  ASSERT_EQ(snap.buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.buckets[0].first, 1.0);
  EXPECT_EQ(snap.buckets[0].second, 1u);
  EXPECT_DOUBLE_EQ(snap.buckets[1].first, 8.0);
  EXPECT_EQ(snap.buckets[1].second, 1u);
}

TEST(ScopedSpan, NestsAndRecordsParent) {
  MetricsRegistry reg;
  EXPECT_EQ(ScopedSpan::current_name(), nullptr);
  EXPECT_EQ(ScopedSpan::depth(), 0);
  {
    ScopedSpan outer("outer", &reg);
    EXPECT_STREQ(ScopedSpan::current_name(), "outer");
    EXPECT_EQ(ScopedSpan::depth(), 1);
    {
      ScopedSpan inner("inner", &reg);
      EXPECT_STREQ(ScopedSpan::current_name(), "inner");
      EXPECT_EQ(ScopedSpan::depth(), 2);
    }
    EXPECT_STREQ(ScopedSpan::current_name(), "outer");
    EXPECT_EQ(ScopedSpan::depth(), 1);
  }
  EXPECT_EQ(ScopedSpan::current_name(), nullptr);
  EXPECT_EQ(ScopedSpan::depth(), 0);

  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.spans.at("outer").parent, "");
  EXPECT_EQ(snap.spans.at("outer").count, 1u);
  EXPECT_GE(snap.spans.at("outer").total_seconds, 0.0);
  EXPECT_EQ(snap.spans.at("inner").parent, "outer");
  EXPECT_EQ(snap.spans.at("inner").count, 1u);
}

TEST(ScopedSpan, SiblingsShareTheSameParent) {
  MetricsRegistry reg;
  {
    ScopedSpan outer("run", &reg);
    { ScopedSpan a("a", &reg); }
    { ScopedSpan b("b", &reg); }
    { ScopedSpan a_again("a", &reg); }
  }
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.spans.at("a").parent, "run");
  EXPECT_EQ(snap.spans.at("a").count, 2u);
  EXPECT_EQ(snap.spans.at("b").parent, "run");
}

TEST(ObsMacros, EnabledFlagMatchesBuildDefine) {
  EXPECT_EQ(kEnabled, GRIDSE_OBS != 0);
}

#if GRIDSE_OBS

TEST(ObsMacros, WriteThroughToGlobalRegistry) {
  MetricsRegistry::global().counter("test.macro.counter").reset();
  int evals = 0;
  OBS_COUNTER_ADD("test.macro.counter", (++evals, 2));
  OBS_COUNTER_ADD("test.macro.counter", 3);
  EXPECT_EQ(evals, 1);  // arguments evaluate exactly once when live
  EXPECT_EQ(MetricsRegistry::global().counter("test.macro.counter").value(),
            5u);

  OBS_GAUGE_SET("test.macro.gauge", 4);
  EXPECT_DOUBLE_EQ(MetricsRegistry::global().gauge("test.macro.gauge").value(),
                   4.0);

  OBS_COUNTS_OBSERVE("test.macro.hist", 3);
  EXPECT_GE(MetricsRegistry::global().histogram("test.macro.hist").count(),
            1u);

  {
    OBS_SPAN("test.macro.span");
    EXPECT_STREQ(ScopedSpan::current_name(), "test.macro.span");
  }
  EXPECT_GE(
      MetricsRegistry::global().snapshot().spans.at("test.macro.span").count,
      1u);
}

#else  // !GRIDSE_OBS

TEST(ObsMacros, OffModeNeverEvaluatesArguments) {
  int evals = 0;
  OBS_COUNTER_ADD("test.macro.counter", ++evals);
  OBS_GAUGE_SET("test.macro.gauge", ++evals);
  OBS_HISTOGRAM_OBSERVE("test.macro.hist", ++evals);
  OBS_COUNTS_OBSERVE("test.macro.hist2", ++evals);
  EXPECT_EQ(evals, 0);
  {
    OBS_SPAN("test.macro.span");
    EXPECT_EQ(ScopedSpan::depth(), 0);  // no span object is created
  }
  // Nothing reached the global registry.
  const Snapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.count("test.macro.counter"), 0u);
  EXPECT_EQ(snap.spans.count("test.macro.span"), 0u);
}

#endif  // GRIDSE_OBS

}  // namespace
}  // namespace gridse::obs
