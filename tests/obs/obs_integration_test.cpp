// End-to-end check that a real DSE run populates the observability layer
// with the values the report tool publishes: step phase spans, solver
// iteration histograms, transport counters. In a GRIDSE_OBS=OFF build the
// same run must leave the global registry untouched — that is the "near
// no-op" guarantee the release preset relies on.
#include <gtest/gtest.h>

#include "core/architecture.hpp"
#include "io/synthetic.hpp"
#include "obs/metrics.hpp"

namespace gridse {
namespace {

obs::Snapshot run_ieee118_and_snapshot() {
  obs::MetricsRegistry::global().reset();
  core::SystemConfig config;
  config.mapping.num_clusters = 3;
  config.transport = core::Transport::kInproc;
  core::DseSystem system(io::ieee118_dse(2012), config);
  const core::CycleReport rep = system.run_cycle(0.0);
  EXPECT_TRUE(rep.dse.all_converged);
  return obs::MetricsRegistry::global().snapshot();
}

#if GRIDSE_OBS

TEST(ObsIntegration, DseRunPopulatesPhaseSpans) {
  const obs::Snapshot snap = run_ieee118_and_snapshot();
  for (const char* name : {"dse.run", "dse.step1", "dse.step2", "dse.combine",
                           "dse.exchange.pseudo"}) {
    ASSERT_TRUE(snap.spans.contains(name)) << name;
    EXPECT_GT(snap.spans.at(name).count, 0u) << name;
    EXPECT_GT(snap.spans.at(name).total_seconds, 0.0) << name;
  }
  // Phase spans attribute to the cycle span; one span per rank (3 clusters).
  EXPECT_EQ(snap.spans.at("dse.step1").parent, "dse.run");
  EXPECT_EQ(snap.spans.at("dse.step1").count, 3u);
}

TEST(ObsIntegration, DseRunPopulatesSolverHistograms) {
  const obs::Snapshot snap = run_ieee118_and_snapshot();
  ASSERT_TRUE(snap.histograms.contains("wls.pcg.iterations"));
  const obs::HistogramSnapshot& pcg = snap.histograms.at("wls.pcg.iterations");
  EXPECT_GT(pcg.count, 0u);
  EXPECT_GE(pcg.min, 1.0);
  ASSERT_TRUE(snap.counters.contains("wls.solves"));
  EXPECT_GT(snap.counters.at("wls.solves"), 0u);
  ASSERT_TRUE(snap.histograms.contains("dse.step1.subsystem_seconds"));
  EXPECT_GT(snap.histograms.at("dse.step1.subsystem_seconds").count, 0u);
}

TEST(ObsIntegration, DseRunCountsExchangeTraffic) {
  const obs::Snapshot snap = run_ieee118_and_snapshot();
  ASSERT_TRUE(snap.counters.contains("dse.combine.messages"));
  EXPECT_GT(snap.counters.at("dse.combine.messages"), 0u);
  ASSERT_TRUE(snap.counters.contains("dse.combine.bytes"));
  EXPECT_GT(snap.counters.at("dse.combine.bytes"), 0u);
  // The worker pools and mailboxes ran, so the runtime metrics exist too.
  EXPECT_TRUE(snap.histograms.contains("runtime.pool.queue_seconds"));
  EXPECT_TRUE(snap.gauges.contains("runtime.mailbox.depth"));
}

#else  // !GRIDSE_OBS

TEST(ObsIntegration, OffBuildLeavesRegistryEmpty) {
  const obs::Snapshot snap = run_ieee118_and_snapshot();
  EXPECT_TRUE(snap.spans.empty());
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

#endif  // GRIDSE_OBS

}  // namespace
}  // namespace gridse
