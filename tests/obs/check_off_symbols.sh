#!/usr/bin/env bash
# In a GRIDSE_OBS=OFF build the instrumented libraries must carry no
# reference to the observability layer at all — the macros expand to
# unevaluated sizeof, so even an undefined symbol against
# gridse::obs::MetricsRegistry in libgridse_core.a means the compile-out
# leaked. (The report tool still links obs on purpose; only the hot-path
# archives passed in here are checked.)
#
# Usage: check_off_symbols.sh <archive>...
set -euo pipefail

status=0
for archive in "$@"; do
  if symbols=$(nm -C "${archive}" 2>/dev/null | grep "gridse::obs::"); then
    echo "FAIL: ${archive} references the obs layer in an OBS=OFF build:" >&2
    echo "${symbols}" | head -20 >&2
    status=1
  else
    echo "ok: ${archive} is free of gridse::obs symbols"
  fi
  # The telemetry sampler has out-of-line symbols in libgridse_obs, so the
  # generic gridse::obs:: grep above covers it — but check by name anyway:
  # a future rename of the obs namespace must not silently unguard the
  # per-cycle sampler in hot-path archives.
  if symbols=$(nm -C "${archive}" 2>/dev/null \
      | grep -E "TelemetrySampler|exposition_text"); then
    echo "FAIL: ${archive} references telemetry in an OBS=OFF build:" >&2
    echo "${symbols}" | head -20 >&2
    status=1
  else
    echo "ok: ${archive} is free of telemetry symbols"
  fi
done
exit "${status}"
