#!/usr/bin/env bash
# In a GRIDSE_OBS=OFF build the instrumented libraries must carry no
# reference to the observability layer at all — the macros expand to
# unevaluated sizeof, so even an undefined symbol against
# gridse::obs::MetricsRegistry in libgridse_core.a means the compile-out
# leaked. (The report tool still links obs on purpose; only the hot-path
# archives passed in here are checked.)
#
# Usage: check_off_symbols.sh <archive>...
set -euo pipefail

status=0
for archive in "$@"; do
  if symbols=$(nm -C "${archive}" 2>/dev/null | grep "gridse::obs::"); then
    echo "FAIL: ${archive} references the obs layer in an OBS=OFF build:" >&2
    echo "${symbols}" | head -20 >&2
    status=1
  else
    echo "ok: ${archive} is free of gridse::obs symbols"
  fi
done
exit "${status}"
